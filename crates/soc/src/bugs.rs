//! The bug-insertion methodology: Tables III and IV.
//!
//! Bugs "get triggered at asynchronous reset events and deliver specific
//! payloads leading to eventual violation of the basic security properties
//! of the SoC designs in terms of integrity, confidentiality, and
//! availability" (Section V-B). Insertion is a source-level choice made at
//! generation time — the red team edits the RTL; the blue-team tool never
//! reads this module.

use std::fmt;

/// The violation classes of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationType {
    /// Uncleared plaintext/keys in crypto registers (confidentiality).
    InformationLeakage,
    /// Address-range check lost after reset (integrity).
    DataIntegrity,
    /// Privilege mode stuck/undefined after reset (availability).
    PrivilegeMode,
}

impl ViolationType {
    /// Table III trigger-condition text.
    #[must_use]
    pub fn trigger(&self) -> &'static str {
        match self {
            ViolationType::InformationLeakage => "Async. reset at crypto engine",
            ViolationType::DataIntegrity => "Async. reset at memory module",
            ViolationType::PrivilegeMode => "Async. reset at processor core",
        }
    }

    /// Table III payload text.
    #[must_use]
    pub fn payload(&self) -> &'static str {
        match self {
            ViolationType::InformationLeakage => {
                "Uncleared values of plain text and crypto keys at internal registers"
            }
            ViolationType::DataIntegrity => {
                "Failure of address range check for subsequent read/write requests"
            }
            ViolationType::PrivilegeMode => {
                "Processor privilege mode stuck at current state of operation"
            }
        }
    }

    /// Table III impact text.
    #[must_use]
    pub fn impact(&self) -> &'static str {
        match self {
            ViolationType::InformationLeakage => {
                "Leakage of secret asset: unencrypted plain text retrievable via \
                 cipher text port (confidentiality)"
            }
            ViolationType::DataIntegrity => {
                "Unauthorized read/write access to secure memory regions \
                 (integrity and confidentiality)"
            }
            ViolationType::PrivilegeMode => {
                "Failure to switch between privilege modes (availability)"
            }
        }
    }
}

impl fmt::Display for ViolationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationType::InformationLeakage => "Information Leakage",
            ViolationType::DataIntegrity => "Loss of Data Integrity",
            ViolationType::PrivilegeMode => "Unavailability of Privilege Modes",
        })
    }
}

/// One inserted bug: a violation class at a named IP.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BugInstance {
    /// Violation class.
    pub violation: ViolationType,
    /// Target IP (generator module name: `md5`, `aes192`, `sram_sp`,
    /// `wb_fabric`, `rv32i_core`, ...).
    pub ip: String,
    /// `true` for the AutoSoC Variant #2 SHA256 implicit-governor
    /// construct (Section V-C) — undetectable by the Explicit analysis.
    pub implicit: bool,
}

impl BugInstance {
    /// Explicit bug constructor.
    #[must_use]
    pub fn new(violation: ViolationType, ip: &str) -> BugInstance {
        BugInstance {
            violation,
            ip: ip.to_owned(),
            implicit: false,
        }
    }

    /// Implicit-governor bug constructor.
    #[must_use]
    pub fn implicit(violation: ViolationType, ip: &str) -> BugInstance {
        BugInstance {
            violation,
            ip: ip.to_owned(),
            implicit: true,
        }
    }
}

/// Which benchmark SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocModel {
    /// The mobile/IoT SoC.
    ClusterSoc,
    /// The automotive SoC.
    AutoSoc,
}

impl SocModel {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SocModel::ClusterSoc => "ClusterSoC",
            SocModel::AutoSoc => "AutoSoC",
        }
    }

    /// Top module name.
    #[must_use]
    pub fn top_module(self) -> &'static str {
        match self {
            SocModel::ClusterSoc => "cluster_soc",
            SocModel::AutoSoc => "auto_soc",
        }
    }
}

/// A bug-seeded SoC variant (one row set of Table IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantSpec {
    /// Which SoC.
    pub soc: SocModel,
    /// Variant number (1-based, as in the paper).
    pub number: u32,
    /// Inserted bugs.
    pub bugs: Vec<BugInstance>,
}

impl VariantSpec {
    /// Display name, e.g. `AutoSoC Variant #2`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{} Variant #{}", self.soc.name(), self.number)
    }

    /// Bugs of a given class.
    pub fn bugs_of(&self, v: ViolationType) -> impl Iterator<Item = &BugInstance> {
        self.bugs.iter().filter(move |b| b.violation == v)
    }

    /// Whether `ip` carries a bug of class `v`.
    #[must_use]
    pub fn has_bug(&self, v: ViolationType, ip: &str) -> bool {
        self.bugs.iter().any(|b| b.violation == v && b.ip == ip)
    }

    /// The bug instance at `ip` of class `v`, if any.
    #[must_use]
    pub fn bug_at(&self, v: ViolationType, ip: &str) -> Option<&BugInstance> {
        self.bugs.iter().find(|b| b.violation == v && b.ip == ip)
    }
}

/// The five seeded variants of Table IV.
///
/// Note on a paper-internal inconsistency: Table IV lists the AutoSoC
/// Variant #2 information-leakage bug at AES192, while the Section V-C
/// narrative places the *missed* leakage bug in the SHA256 core of the
/// same variant. We reconcile by including both: the AES192 bug uses the
/// explicit construct (detected), the SHA256 bug uses the implicit
/// clock-composed construct (missed by the Explicit analysis) — which
/// reproduces the paper's "all bugs except one" outcome verbatim.
#[must_use]
pub fn variants() -> Vec<VariantSpec> {
    use ViolationType::{DataIntegrity, InformationLeakage, PrivilegeMode};
    vec![
        VariantSpec {
            soc: SocModel::ClusterSoc,
            number: 1,
            bugs: vec![
                BugInstance::new(InformationLeakage, "md5"),
                BugInstance::new(InformationLeakage, "aes192"),
                BugInstance::new(DataIntegrity, "sram_sp"),
            ],
        },
        VariantSpec {
            soc: SocModel::ClusterSoc,
            number: 2,
            bugs: vec![
                BugInstance::new(DataIntegrity, "sram_sp"),
                BugInstance::new(PrivilegeMode, "rv32i_core"),
            ],
        },
        VariantSpec {
            soc: SocModel::ClusterSoc,
            number: 3,
            bugs: vec![
                BugInstance::new(InformationLeakage, "aes192"),
                BugInstance::new(InformationLeakage, "sha256"),
                BugInstance::new(DataIntegrity, "wb_fabric"),
                BugInstance::new(PrivilegeMode, "rv32e_core"),
            ],
        },
        VariantSpec {
            soc: SocModel::AutoSoc,
            number: 1,
            bugs: vec![
                BugInstance::new(InformationLeakage, "md5"),
                BugInstance::new(InformationLeakage, "sha256"),
                BugInstance::new(DataIntegrity, "sram_sp"),
                BugInstance::new(PrivilegeMode, "rv32ic_core"),
                BugInstance::new(PrivilegeMode, "rv32im_core"),
            ],
        },
        VariantSpec {
            soc: SocModel::AutoSoc,
            number: 2,
            bugs: vec![
                BugInstance::new(InformationLeakage, "aes192"),
                BugInstance::implicit(InformationLeakage, "sha256"),
                BugInstance::new(PrivilegeMode, "rv32im_core"),
            ],
        },
    ]
}

/// Looks up a variant by SoC and number.
#[must_use]
pub fn variant(soc: SocModel, number: u32) -> Option<VariantSpec> {
    variants()
        .into_iter()
        .find(|v| v.soc == soc && v.number == number)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_shape() {
        let vs = variants();
        assert_eq!(vs.len(), 5);
        assert_eq!(
            vs.iter().filter(|v| v.soc == SocModel::ClusterSoc).count(),
            3
        );
        assert_eq!(vs.iter().filter(|v| v.soc == SocModel::AutoSoc).count(), 2);
        // Every variant has at least one bug; numbering is 1-based.
        for v in &vs {
            assert!(!v.bugs.is_empty());
            assert!(v.number >= 1);
        }
    }

    #[test]
    fn autosoc_v2_carries_the_implicit_sha_bug() {
        let v = variant(SocModel::AutoSoc, 2).expect("variant");
        let sha = v
            .bug_at(ViolationType::InformationLeakage, "sha256")
            .expect("sha bug");
        assert!(sha.implicit);
        let aes = v
            .bug_at(ViolationType::InformationLeakage, "aes192")
            .expect("aes bug");
        assert!(!aes.implicit);
        // No other variant uses the implicit construct.
        for other in variants() {
            if other.name() != v.name() {
                assert!(other.bugs.iter().all(|b| !b.implicit));
            }
        }
    }

    #[test]
    fn cluster_v1_matches_table_iv() {
        let v = variant(SocModel::ClusterSoc, 1).expect("variant");
        assert!(v.has_bug(ViolationType::InformationLeakage, "md5"));
        assert!(v.has_bug(ViolationType::InformationLeakage, "aes192"));
        assert!(v.has_bug(ViolationType::DataIntegrity, "sram_sp"));
        assert_eq!(v.bugs_of(ViolationType::PrivilegeMode).count(), 0);
    }

    #[test]
    fn table_iii_text_nonempty() {
        for v in [
            ViolationType::InformationLeakage,
            ViolationType::DataIntegrity,
            ViolationType::PrivilegeMode,
        ] {
            assert!(!v.trigger().is_empty());
            assert!(!v.payload().is_empty());
            assert!(!v.impact().is_empty());
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn names() {
        assert_eq!(
            variant(SocModel::AutoSoc, 1).expect("v").name(),
            "AutoSoC Variant #1"
        );
        assert_eq!(SocModel::ClusterSoc.top_module(), "cluster_soc");
        assert!(variant(SocModel::ClusterSoc, 9).is_none());
    }
}
