//! **Table IV** — Security bugs inserted in the SoC variants.

use soccar_bench::render_table;
use soccar_soc::{variants, ViolationType};

fn main() {
    let vs = variants();
    let mut rows = Vec::new();
    for kind in [
        ViolationType::InformationLeakage,
        ViolationType::DataIntegrity,
        ViolationType::PrivilegeMode,
    ] {
        let mut row = vec![kind.to_string()];
        for v in &vs {
            let ips: Vec<String> = v
                .bugs_of(kind)
                .map(|b| {
                    if b.implicit {
                        format!("{}*", b.ip)
                    } else {
                        b.ip.clone()
                    }
                })
                .collect();
            row.push(if ips.is_empty() {
                "-".to_owned()
            } else {
                ips.join(", ")
            });
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Violation Type".to_owned())
        .chain(vs.iter().map(soccar_soc::VariantSpec::name))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("Table IV — Security bugs inserted in the SoC variants");
    println!("{}", render_table(&header_refs, &rows));
    println!("* = implicit clock-composed governor construct (Section V-C)");
}
