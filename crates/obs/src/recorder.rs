//! The [`Recorder`]: a thread-safe handle collecting spans and metrics.
//!
//! A `Recorder` is a cheap clone (an `Arc` under the hood, or nothing at
//! all when disabled), so it can be handed to every stage of the pipeline
//! and into worker-pool closures alike. The rules that keep the collected
//! data *deterministic* across worker counts (DESIGN.md §9):
//!
//! * **spans** are opened and closed only on the serial control path —
//!   the pipeline driver, the per-round loop — never inside a
//!   `parallel_map` task, so the span stream is identical for every
//!   `--jobs` value;
//! * **counters** and **histograms** may be bumped from worker threads:
//!   increments commute, and the sinks render them sorted by name, so the
//!   final values are job-count invariant as long as the *set* of
//!   recorded operations is (which the speculative-solve design
//!   guarantees);
//! * **gauges** carry wall-clock-derived values (utilization, busy time)
//!   and are dropped from every canonical serialization.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A field or metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::$variant(v as $cast)
            }
        })*
    };
}

value_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One recorded span: a named region of the serial control path with
/// monotonic timing, an optional parent, and key-value fields.
#[derive(Debug, Clone)]
pub struct SpanData {
    /// Dotted span name (`concolic.round`).
    pub name: String,
    /// Index of the enclosing span in the recorder's span list.
    pub parent: Option<usize>,
    /// Fields, in record order.
    pub fields: Vec<(String, Value)>,
    /// Offset from recorder creation at open.
    pub start: Duration,
    /// Wall-clock duration; `None` while the span is still open.
    pub elapsed: Option<Duration>,
}

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `k` counts samples whose bit-length is `k` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, …),
/// so merge order never changes the result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `bit-length → sample count`.
    pub buckets: BTreeMap<u32, u64>,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(64 - v.leading_zeros()).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Inclusive upper bound of bucket `bits` (`2^bits - 1`).
    #[must_use]
    pub fn bucket_upper(bits: u32) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanData>,
    stack: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    state: Mutex<State>,
}

/// An immutable copy of everything a recorder has collected, for sinks.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Spans in open order (indices are span ids).
    pub spans: Vec<SpanData>,
    /// Counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, sorted by name (wall-clock-derived; non-canonical).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, sorted by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// The tracing/metrics handle. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use soccar_obs::Recorder;
///
/// let rec = Recorder::enabled();
/// {
///     let mut span = rec.span("demo.stage");
///     span.record("items", 3u64);
///     rec.counter_add("demo.widgets", 3);
/// } // span closes (and times) on drop
/// let snap = rec.snapshot();
/// assert_eq!(snap.spans.len(), 1);
/// assert_eq!(snap.counters["demo.widgets"], 3);
/// ```
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// A recording handle.
    #[must_use]
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A no-op handle: every operation is a cheap early return, so
    /// instrumented code pays almost nothing when tracing is off.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// `true` when this handle records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, State>> {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().expect("recorder poisoned"))
    }

    /// Opens a span. The returned guard times the region even on a
    /// disabled recorder (so stage timings flow through one code path);
    /// it records into the span tree only when enabled.
    pub fn span(&self, name: &str) -> SpanGuard {
        let idx = self.inner.as_ref().map(|inner| {
            let mut st = inner.state.lock().expect("recorder poisoned");
            let idx = st.spans.len();
            let parent = st.stack.last().copied();
            st.spans.push(SpanData {
                name: name.to_owned(),
                parent,
                fields: Vec::new(),
                start: inner.start.elapsed(),
                elapsed: None,
            });
            st.stack.push(idx);
            idx
        });
        SpanGuard {
            rec: self.clone(),
            idx,
            started: Instant::now(),
            closed: false,
        }
    }

    /// Times a closure under a span, returning its result and duration.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> (R, Duration) {
        let span = self.span(name);
        let out = f();
        (out, span.close())
    }

    /// Adds to a (creating-on-first-use) counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(mut st) = self.lock() {
            *st.counters.entry(name.to_owned()).or_insert(0) += n;
        }
    }

    /// Current value of a counter (0 when absent or disabled).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock()
            .and_then(|st| st.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Sets a gauge. Gauges hold wall-clock-derived values and are
    /// excluded from canonical serializations.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(mut st) = self.lock() {
            st.gauges.insert(name.to_owned(), v);
        }
    }

    /// Records a sample into a power-of-two-bucketed histogram.
    pub fn histogram_record(&self, name: &str, v: u64) {
        if let Some(mut st) = self.lock() {
            st.histograms.entry(name.to_owned()).or_default().record(v);
        }
    }

    /// Copies out everything collected so far.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        match self.lock() {
            None => TraceSnapshot::default(),
            Some(st) => TraceSnapshot {
                spans: st.spans.clone(),
                counters: st.counters.clone(),
                gauges: st.gauges.clone(),
                histograms: st.histograms.clone(),
            },
        }
    }

    fn close_span(&self, idx: usize, elapsed: Duration, late_fields: Vec<(String, Value)>) {
        if let Some(mut st) = self.lock() {
            st.spans[idx].elapsed = Some(elapsed);
            st.spans[idx].fields.extend(late_fields);
            // Well-formed nesting pops the top; tolerate stragglers.
            if st.stack.last() == Some(&idx) {
                st.stack.pop();
            } else if let Some(pos) = st.stack.iter().position(|i| *i == idx) {
                st.stack.remove(pos);
            }
        }
    }
}

/// Guard for an open span; closes (and records the duration) on drop.
///
/// Created by [`Recorder::span`] or the [`span!`](crate::span!) macro.
#[must_use = "dropping the guard immediately records a zero-length span"]
#[derive(Debug)]
pub struct SpanGuard {
    rec: Recorder,
    idx: Option<usize>,
    started: Instant,
    closed: bool,
}

impl SpanGuard {
    /// Attaches a field to the span (no-op on a disabled recorder).
    pub fn record(&mut self, key: &str, value: impl Into<Value>) {
        if let Some(idx) = self.idx {
            if let Some(mut st) = self.rec.lock() {
                st.spans[idx].fields.push((key.to_owned(), value.into()));
            }
        }
    }

    /// Closes the span, returning its wall-clock duration. Works on
    /// disabled recorders too, which is what lets stage reports derive
    /// their timing from the span API unconditionally.
    pub fn close(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        let elapsed = self.started.elapsed();
        if !self.closed {
            self.closed = true;
            if let Some(idx) = self.idx {
                self.rec.close_span(idx, elapsed, Vec::new());
            }
        }
        elapsed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert_but_still_times() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter_add("x", 5);
        rec.gauge_set("g", 1.0);
        rec.histogram_record("h", 7);
        let span = rec.span("stage");
        std::thread::sleep(Duration::from_millis(2));
        let took = span.close();
        assert!(took >= Duration::from_millis(2));
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert_eq!(rec.counter_value("x"), 0);
    }

    #[test]
    fn spans_nest_by_open_order() {
        let rec = Recorder::enabled();
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        inner.close();
        let sibling = rec.span("sibling");
        sibling.close();
        outer.close();
        let top = rec.span("top2");
        top.close();
        let snap = rec.snapshot();
        let parents: Vec<Option<usize>> = snap.spans.iter().map(|s| s.parent).collect();
        assert_eq!(parents, vec![None, Some(0), Some(0), None]);
        assert!(snap.spans.iter().all(|s| s.elapsed.is_some()));
    }

    #[test]
    fn guard_drop_closes_the_span() {
        let rec = Recorder::enabled();
        {
            let mut g = rec.span("scoped");
            g.record("k", 1u64);
        }
        let snap = rec.snapshot();
        assert!(snap.spans[0].elapsed.is_some());
        assert_eq!(snap.spans[0].fields[0].0, "k");
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let rec = Recorder::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter_value("hits"), 400);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.buckets[&0], 1); // 0
        assert_eq!(h.buckets[&1], 1); // 1
        assert_eq!(h.buckets[&2], 2); // 2,3
        assert_eq!(h.buckets[&3], 2); // 4..7
        assert_eq!(h.buckets[&4], 1); // 8
        assert_eq!(h.buckets[&64], 1); // u64::MAX
        assert_eq!(h.sum, u64::MAX); // saturated
        assert_eq!(Histogram::bucket_upper(3), 7);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn time_helper_returns_result_and_duration() {
        let rec = Recorder::enabled();
        let (out, took) = rec.time("timed", || 42);
        assert_eq!(out, 42);
        assert!(took <= Duration::from_secs(1));
        assert_eq!(rec.snapshot().spans[0].name, "timed");
    }
}
