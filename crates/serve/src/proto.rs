//! The `soccar serve` wire protocol.
//!
//! Transport: TCP (loopback by default). Every message is a **frame** —
//! a 4-byte big-endian payload length followed by that many bytes of
//! UTF-8 JSON. A request is one frame; a response is exactly **two**
//! frames:
//!
//! 1. the **envelope** — machine-readable outcome (`ok`, `kind`,
//!    `error`, health, violation count, per-request cache stats);
//! 2. the **body** — the deliverable, verbatim (possibly empty). For
//!    `analyze` it is the canonical report JSON, byte-identical to
//!    `soccar analyze --json`; for `lint` the lint report JSON,
//!    byte-identical to `soccar lint --json`; for `status` the server
//!    status JSON.
//!
//! Carrying the body out-of-band (instead of nesting it in the envelope)
//! is what makes the byte-equality guarantee trivial to state and test:
//! clients print the body as received, no re-encoding anywhere. Requests
//! are decoded with the strict [`crate::jsonval`] reader; responses are
//! encoded with [`soccar::json`]. Full field reference in
//! `docs/SERVER.md`.

use std::io::{Read, Write};

use serde::Serialize;
use soccar::RequestStats;

use crate::jsonval::Json;

/// Upper bound on a frame payload (64 MiB) — larger lengths are treated
/// as protocol corruption, not allocation requests.
pub const MAX_FRAME: u32 = 64 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `None` on clean EOF at a
/// frame boundary (the peer closed the connection between messages).
///
/// # Errors
///
/// Propagates I/O failures; rejects lengths over [`MAX_FRAME`]; EOF in
/// the middle of a frame is [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One request to the daemon. A single flat struct covers all four
/// commands; fields irrelevant to a command are ignored by the server.
#[derive(Debug, Clone, Serialize)]
pub struct Request {
    /// `analyze`, `lint`, `status`, or `shutdown`.
    pub cmd: String,
    /// Display name of the source (diagnostics cite it).
    pub file_name: String,
    /// Verilog source text (empty when `soc` names a bundled model).
    pub source: String,
    /// Bundled evaluation SoC (`clustersoc` / `autosoc`; empty = none).
    /// Brings the model's catalog properties and symbolic inputs along,
    /// exactly like `soccar analyze --soc`.
    pub soc: String,
    /// Bug-seeded variant of the bundled SoC.
    pub variant: Option<u32>,
    /// Top module (defaults to the bundled SoC's top when `soc` is set).
    pub top: String,
    /// Security property specs, in the CLI's colon syntax.
    pub properties: Vec<String>,
    /// Additional symbolic top-level inputs.
    pub symbolic: Vec<String>,
    /// Use the refined (implicit-governor) analysis.
    pub refined: bool,
    /// Simulation horizon per round (server default when absent).
    pub cycles: Option<u64>,
    /// Max concolic rounds (server default when absent).
    pub rounds: Option<u64>,
    /// Per-flip-solve SAT conflict budget (QoS).
    pub solver_budget: Option<u64>,
    /// Degrade instead of aborting on worker panics (QoS).
    pub keep_going: bool,
    /// Wall-clock deadline per concolic round, ms (QoS; disables result
    /// caching for the request).
    pub round_deadline_ms: Option<u64>,
    /// Lint rules to disable (lint command).
    pub allow: Vec<String>,
    /// Lint rules to escalate to errors (lint command).
    pub deny: Vec<String>,
    /// Retry attempt number (0 = first try). Set by the retrying client
    /// so the server can count `server.retries`; never part of a cache
    /// key and normalized to 0 before journaling.
    pub attempt: u64,
}

impl Request {
    /// An empty request scaffold for `cmd`.
    #[must_use]
    pub fn new(cmd: &str) -> Request {
        Request {
            cmd: cmd.to_owned(),
            file_name: String::new(),
            source: String::new(),
            soc: String::new(),
            variant: None,
            top: String::new(),
            properties: Vec::new(),
            symbolic: Vec::new(),
            refined: false,
            cycles: None,
            rounds: None,
            solver_budget: None,
            keep_going: false,
            round_deadline_ms: None,
            allow: Vec::new(),
            deny: Vec::new(),
            attempt: 0,
        }
    }

    /// Serializes for the wire.
    ///
    /// # Errors
    ///
    /// Only if serialization reports a custom error (it cannot here).
    pub fn to_json(&self) -> Result<String, soccar::json::JsonError> {
        soccar::json::to_json(self)
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// On malformed JSON or a missing/unknown `cmd`.
    pub fn from_json(text: &str) -> Result<Request, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let cmd = v
            .str_field("cmd")
            .ok_or_else(|| "request missing `cmd`".to_owned())?;
        if !matches!(cmd, "analyze" | "lint" | "status" | "shutdown") {
            return Err(format!("unknown command `{cmd}`"));
        }
        let mut req = Request::new(cmd);
        req.file_name = v.str_field("file_name").unwrap_or_default().to_owned();
        req.source = v.str_field("source").unwrap_or_default().to_owned();
        req.soc = v.str_field("soc").unwrap_or_default().to_owned();
        req.variant = v.u64_field("variant").map(|n| n as u32);
        req.top = v.str_field("top").unwrap_or_default().to_owned();
        req.properties = v.str_list_field("properties");
        req.symbolic = v.str_list_field("symbolic");
        req.refined = v.bool_field("refined");
        req.cycles = v.u64_field("cycles");
        req.rounds = v.u64_field("rounds");
        req.solver_budget = v.u64_field("solver_budget");
        req.keep_going = v.bool_field("keep_going");
        req.round_deadline_ms = v.u64_field("round_deadline_ms");
        req.allow = v.str_list_field("allow");
        req.deny = v.str_list_field("deny");
        req.attempt = v.u64_field("attempt").unwrap_or(0);
        Ok(req)
    }
}

/// The first response frame: outcome metadata for every command.
#[derive(Debug, Clone, Serialize)]
pub struct Envelope {
    /// The request was served without error.
    pub ok: bool,
    /// Echo of the request command (or `error`).
    pub kind: String,
    /// Error message (empty on success).
    pub error: String,
    /// Aggregated run health: `ok` or `degraded`.
    pub health: String,
    /// Degradation reasons (empty when healthy).
    pub degraded_reasons: Vec<String>,
    /// Detected violations (analyze) or error-level findings (lint).
    pub violations: u64,
    /// What the session reused vs recomputed for this request
    /// (analyze only).
    pub stats: Option<RequestStats>,
    /// How long a shed client should wait before retrying, ms
    /// (`busy` envelopes only; 0 otherwise).
    pub retry_after_ms: u64,
}

impl Envelope {
    /// A success envelope for `kind` with healthy defaults.
    #[must_use]
    pub fn ok(kind: &str) -> Envelope {
        Envelope {
            ok: true,
            kind: kind.to_owned(),
            error: String::new(),
            health: "ok".to_owned(),
            degraded_reasons: Vec::new(),
            violations: 0,
            stats: None,
            retry_after_ms: 0,
        }
    }

    /// An error envelope.
    #[must_use]
    pub fn error(message: &str) -> Envelope {
        Envelope {
            ok: false,
            kind: "error".to_owned(),
            error: message.to_owned(),
            health: "ok".to_owned(),
            degraded_reasons: Vec::new(),
            violations: 0,
            stats: None,
            retry_after_ms: 0,
        }
    }

    /// A load-shedding envelope: admission is saturated, retry after
    /// `retry_after_ms`. Structured (`kind: "busy"`) so clients back off
    /// instead of reading it as a hard failure.
    #[must_use]
    pub fn busy(retry_after_ms: u64) -> Envelope {
        Envelope {
            ok: false,
            kind: "busy".to_owned(),
            error: "server busy: admission saturated".to_owned(),
            health: "ok".to_owned(),
            degraded_reasons: Vec::new(),
            violations: 0,
            stats: None,
            retry_after_ms,
        }
    }

    /// `true` for a load-shedding envelope — the one failure a client
    /// should always treat as retryable.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        !self.ok && self.kind == "busy"
    }

    /// Serializes for the wire.
    ///
    /// # Errors
    ///
    /// Only if serialization reports a custom error (it cannot here).
    pub fn to_json(&self) -> Result<String, soccar::json::JsonError> {
        soccar::json::to_json(self)
    }

    /// Decodes an envelope frame (the client side).
    ///
    /// # Errors
    ///
    /// On malformed JSON or a missing `ok` field.
    pub fn from_json(text: &str) -> Result<Envelope, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| "envelope missing `ok`".to_owned())?;
        Ok(Envelope {
            ok,
            kind: v.str_field("kind").unwrap_or_default().to_owned(),
            error: v.str_field("error").unwrap_or_default().to_owned(),
            health: v.str_field("health").unwrap_or("ok").to_owned(),
            degraded_reasons: v.str_list_field("degraded_reasons"),
            violations: v.u64_field("violations").unwrap_or(0),
            // The client never needs the stats breakdown; tests that do
            // parse the envelope JSON directly.
            stats: None,
            retry_after_ms: v.u64_field("retry_after_ms").unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean eof");
    }

    #[test]
    fn truncated_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // header + 2 payload bytes
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
        // EOF inside the header is also an error, not a clean close.
        let mut r = std::io::Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip_with_verilog_payload() {
        let mut req = Request::new("analyze");
        req.file_name = "t.v".into();
        req.source = "module top(input clk);\n  // \"tricky\"\\\nendmodule\n".into();
        req.top = "top".into();
        req.properties = vec!["cleared:k:ip:top.rst_n:top.u.key:8".into()];
        req.symbolic = vec!["top.magic".into()];
        req.refined = true;
        req.cycles = Some(8);
        req.rounds = Some(2);
        req.solver_budget = Some(100);
        req.keep_going = true;
        req.round_deadline_ms = Some(5000);
        let decoded = Request::from_json(&req.to_json().unwrap()).unwrap();
        assert_eq!(decoded.cmd, "analyze");
        assert_eq!(decoded.source, req.source);
        assert_eq!(decoded.properties, req.properties);
        assert_eq!(decoded.cycles, Some(8));
        assert_eq!(decoded.solver_budget, Some(100));
        assert!(decoded.refined && decoded.keep_going);
        assert_eq!(decoded.round_deadline_ms, Some(5000));
    }

    #[test]
    fn unknown_commands_are_rejected() {
        let req = Request::new("reboot");
        assert!(Request::from_json(&req.to_json().unwrap()).is_err());
        assert!(Request::from_json("{}").is_err());
        assert!(Request::from_json("not json").is_err());
    }

    #[test]
    fn envelopes_round_trip() {
        let mut env = Envelope::ok("analyze");
        env.health = "degraded".into();
        env.degraded_reasons = vec!["concolic: lost a flip".into()];
        env.violations = 3;
        let decoded = Envelope::from_json(&env.to_json().unwrap()).unwrap();
        assert!(decoded.ok);
        assert_eq!(decoded.kind, "analyze");
        assert_eq!(decoded.health, "degraded");
        assert_eq!(decoded.degraded_reasons.len(), 1);
        assert_eq!(decoded.violations, 3);
        let err = Envelope::from_json(&Envelope::error("boom").to_json().unwrap()).unwrap();
        assert!(!err.ok);
        assert_eq!(err.error, "boom");
    }

    #[test]
    fn busy_envelopes_round_trip_with_retry_hint() {
        let busy = Envelope::busy(250);
        assert!(busy.is_busy());
        let decoded = Envelope::from_json(&busy.to_json().unwrap()).unwrap();
        assert!(decoded.is_busy());
        assert_eq!(decoded.retry_after_ms, 250);
        assert!(!Envelope::ok("analyze").is_busy());
        assert!(!Envelope::error("boom").is_busy());
    }

    #[test]
    fn attempt_field_round_trips_and_defaults_to_zero() {
        let mut req = Request::new("status");
        req.attempt = 3;
        let decoded = Request::from_json(&req.to_json().unwrap()).unwrap();
        assert_eq!(decoded.attempt, 3);
        // Requests from pre-retry clients simply omit the field.
        let decoded = Request::from_json("{\"cmd\":\"status\"}").unwrap();
        assert_eq!(decoded.attempt, 0);
    }
}
