//! Four-state logic values with Verilog operator semantics.
//!
//! [`LogicVec`] is the value type used throughout the reproduction: by the
//! RTL interpreter, the waveform writer, the synthesis estimator and (for the
//! concrete half) the concolic engine. Each bit is one of `0`, `1`, `X`
//! (unknown) or `Z` (high impedance), encoded with a value plane and an XZ
//! plane exactly like classic EDA kernels:
//!
//! | `xz` | `val` | meaning |
//! |------|-------|---------|
//! | 0    | 0     | `0`     |
//! | 0    | 1     | `1`     |
//! | 1    | 0     | `X`     |
//! | 1    | 1     | `Z`     |
//!
//! Operator semantics follow IEEE 1364: bitwise operators use the
//! three-valued truth tables (`Z` inputs behave as `X`), arithmetic and
//! relational operators are fully pessimistic (any `X`/`Z` input poisons the
//! whole result), and case-equality (`===`) compares all four states.
//!
//! # Examples
//!
//! ```
//! use soccar_rtl::value::LogicVec;
//!
//! let a = LogicVec::from_u64(8, 0xA5);
//! let b = LogicVec::from_u64(8, 0x0F);
//! assert_eq!((a.and(&b)).to_u64(), Some(0x05));
//! assert_eq!(a.add(&b).to_u64(), Some(0xB4));
//!
//! let x = LogicVec::xes(8);
//! assert!(a.add(&x).is_all_x());
//! ```

use std::fmt;

/// A single four-state logic bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bit {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Bit {
    /// Returns `true` for [`Bit::X`] and [`Bit::Z`] (the "unknown" states).
    #[must_use]
    pub fn is_unknown(self) -> bool {
        matches!(self, Bit::X | Bit::Z)
    }

    /// Converts a known bit to `bool`; `X`/`Z` map to `None`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Bit::Zero => Some(false),
            Bit::One => Some(true),
            _ => None,
        }
    }

    fn planes(self) -> (bool, bool) {
        match self {
            Bit::Zero => (false, false),
            Bit::One => (false, true),
            Bit::X => (true, false),
            Bit::Z => (true, true),
        }
    }

    fn from_planes(xz: bool, val: bool) -> Bit {
        match (xz, val) {
            (false, false) => Bit::Zero,
            (false, true) => Bit::One,
            (true, false) => Bit::X,
            (true, true) => Bit::Z,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'x',
            Bit::Z => 'z',
        };
        write!(f, "{c}")
    }
}

/// A fixed-width vector of four-state logic bits.
///
/// Widths are arbitrary (not limited to 64 bits). All binary operations
/// extend the narrower operand with zeros first, mirroring the unsigned
/// expression semantics used by the synthesizable subset in this
/// reproduction, and produce a result whose width is the maximum operand
/// width (relational and reduction operators produce one bit).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: u32,
    /// Value plane, little-endian 64-bit words. Bits above `width` are zero.
    val: Vec<u64>,
    /// XZ plane, same layout.
    xz: Vec<u64>,
}

fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

impl LogicVec {
    /// Creates an all-zero vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn zeros(width: u32) -> LogicVec {
        assert!(width > 0, "LogicVec width must be non-zero");
        LogicVec {
            width,
            val: vec![0; words_for(width)],
            xz: vec![0; words_for(width)],
        }
    }

    /// Creates an all-ones vector of the given width.
    ///
    /// This is the register initialization policy of SoCCAR's Algorithm 3
    /// ("we assign all the registers with ones instead of zeros").
    #[must_use]
    pub fn ones(width: u32) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        for w in &mut v.val {
            *w = u64::MAX;
        }
        v.mask_top();
        v
    }

    /// Creates an all-`X` vector of the given width.
    #[must_use]
    pub fn xes(width: u32) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        for w in &mut v.xz {
            *w = u64::MAX;
        }
        v.mask_top();
        v
    }

    /// Creates an all-`Z` vector of the given width.
    #[must_use]
    pub fn zeds(width: u32) -> LogicVec {
        let mut v = LogicVec::xes(width);
        v.val.clone_from(&v.xz);
        v
    }

    /// Creates a vector from the low bits of `value`, zero-extended or
    /// truncated to `width`.
    #[must_use]
    pub fn from_u64(width: u32, value: u64) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        v.val[0] = value;
        v.mask_top();
        v
    }

    /// Creates a one-bit vector from a `bool`.
    #[must_use]
    pub fn from_bool(b: bool) -> LogicVec {
        LogicVec::from_u64(1, u64::from(b))
    }

    /// Creates a vector from a slice of bits, index 0 being the LSB.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn from_bits(bits: &[Bit]) -> LogicVec {
        assert!(!bits.is_empty(), "from_bits requires at least one bit");
        let mut v = LogicVec::zeros(bits.len() as u32);
        for (i, b) in bits.iter().enumerate() {
            v.set_bit(i as u32, *b);
        }
        v
    }

    /// Parses a binary string such as `"10x1"` (MSB first) into a vector.
    ///
    /// Underscores are ignored. Returns `None` on empty or invalid input.
    #[must_use]
    pub fn from_bin_str(s: &str) -> Option<LogicVec> {
        let mut bits = Vec::new();
        for c in s.chars().rev() {
            match c {
                '0' => bits.push(Bit::Zero),
                '1' => bits.push(Bit::One),
                'x' | 'X' => bits.push(Bit::X),
                'z' | 'Z' | '?' => bits.push(Bit::Z),
                '_' => {}
                _ => return None,
            }
        }
        if bits.is_empty() {
            None
        } else {
            Some(LogicVec::from_bits(&bits))
        }
    }

    /// The width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the bit at `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    #[must_use]
    pub fn bit(&self, index: u32) -> Bit {
        assert!(index < self.width, "bit index {index} out of range");
        let w = (index / 64) as usize;
        let b = index % 64;
        Bit::from_planes((self.xz[w] >> b) & 1 == 1, (self.val[w] >> b) & 1 == 1)
    }

    /// Sets the bit at `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn set_bit(&mut self, index: u32, bit: Bit) {
        assert!(index < self.width, "bit index {index} out of range");
        let w = (index / 64) as usize;
        let b = index % 64;
        let (xz, val) = bit.planes();
        self.val[w] = (self.val[w] & !(1 << b)) | (u64::from(val) << b);
        self.xz[w] = (self.xz[w] & !(1 << b)) | (u64::from(xz) << b);
    }

    /// Iterates over the bits, LSB first.
    pub fn iter_bits(&self) -> impl Iterator<Item = Bit> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }

    /// `true` if any bit is `X` or `Z`.
    #[must_use]
    pub fn has_unknown(&self) -> bool {
        self.xz.iter().any(|w| *w != 0)
    }

    /// `true` if every bit is `X`.
    #[must_use]
    pub fn is_all_x(&self) -> bool {
        self.iter_bits().all(|b| b == Bit::X)
    }

    /// `true` if every bit is `0` (no unknowns).
    #[must_use]
    pub fn is_all_zero(&self) -> bool {
        !self.has_unknown() && self.val.iter().all(|w| *w == 0)
    }

    /// `true` if every bit is `1` (no unknowns).
    #[must_use]
    pub fn is_all_ones(&self) -> bool {
        !self.has_unknown() && self.iter_bits().all(|b| b == Bit::One)
    }

    /// Converts to `u64` if the value fits in 64 bits and has no unknowns.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        if self.val.iter().skip(1).any(|w| *w != 0) {
            return None;
        }
        Some(self.val[0])
    }

    /// Verilog truthiness: `Some(true)` if any bit is `1`, `Some(false)` if
    /// all bits are `0`, `None` if neither (unknowns present, no `1`s).
    #[must_use]
    pub fn truthy(&self) -> Option<bool> {
        // A '1' bit anywhere makes the value true regardless of unknowns.
        for (v, x) in self.val.iter().zip(&self.xz) {
            if *v & !*x != 0 {
                return Some(true);
            }
        }
        if self.has_unknown() {
            None
        } else {
            Some(false)
        }
    }

    /// Zero-extends or truncates to `width`.
    #[must_use]
    pub fn resize(&self, width: u32) -> LogicVec {
        let mut out = LogicVec::zeros(width);
        let n = out.val.len().min(self.val.len());
        out.val[..n].copy_from_slice(&self.val[..n]);
        out.xz[..n].copy_from_slice(&self.xz[..n]);
        out.mask_top();
        out
    }

    /// Sign-extends or truncates to `width` (MSB of `self` is the sign).
    #[must_use]
    pub fn sign_extend(&self, width: u32) -> LogicVec {
        if width <= self.width {
            return self.resize(width);
        }
        let msb = self.bit(self.width - 1);
        let mut out = self.resize(width);
        for i in self.width..width {
            out.set_bit(i, msb);
        }
        out
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            if let Some(w) = self.val.last_mut() {
                *w &= mask;
            }
            if let Some(w) = self.xz.last_mut() {
                *w &= mask;
            }
        }
    }

    fn extended_planes(&self, width: u32) -> (Vec<u64>, Vec<u64>) {
        let n = words_for(width);
        let mut val = self.val.clone();
        let mut xz = self.xz.clone();
        val.resize(n, 0);
        xz.resize(n, 0);
        (val, xz)
    }

    /// Bitwise NOT. `X`/`Z` bits stay `X`.
    #[must_use]
    pub fn not(&self) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in 0..out.val.len() {
            out.val[i] = !self.val[i] & !self.xz[i];
            out.xz[i] = self.xz[i];
        }
        // X/Z both become X: val plane cleared where xz set.
        out.mask_top();
        out
    }

    /// Bitwise AND with IEEE 1364 three-valued semantics.
    #[must_use]
    pub fn and(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, |a, b| match (a, b) {
            (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
            (Bit::One, Bit::One) => Bit::One,
            _ => Bit::X,
        })
    }

    /// Bitwise OR with IEEE 1364 three-valued semantics.
    #[must_use]
    pub fn or(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, |a, b| match (a, b) {
            (Bit::One, _) | (_, Bit::One) => Bit::One,
            (Bit::Zero, Bit::Zero) => Bit::Zero,
            _ => Bit::X,
        })
    }

    /// Bitwise XOR with IEEE 1364 three-valued semantics.
    #[must_use]
    pub fn xor(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, |a, b| {
            if a.is_unknown() || b.is_unknown() {
                Bit::X
            } else {
                Bit::from(a != b)
            }
        })
    }

    fn bitwise(&self, other: &LogicVec, f: impl Fn(Bit, Bit) -> Bit) -> LogicVec {
        let width = self.width.max(other.width);
        let a = self.resize(width);
        let b = other.resize(width);
        let mut out = LogicVec::zeros(width);
        for i in 0..width {
            out.set_bit(i, f(a.bit(i), b.bit(i)));
        }
        out
    }

    /// Reduction AND (`&v`): one bit.
    #[must_use]
    pub fn reduce_and(&self) -> LogicVec {
        let mut acc = Bit::One;
        for b in self.iter_bits() {
            acc = match (acc, b) {
                (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
                (Bit::One, Bit::One) => Bit::One,
                _ => Bit::X,
            };
        }
        LogicVec::from_bits(&[acc])
    }

    /// Reduction OR (`|v`): one bit.
    #[must_use]
    pub fn reduce_or(&self) -> LogicVec {
        let mut acc = Bit::Zero;
        for b in self.iter_bits() {
            acc = match (acc, b) {
                (Bit::One, _) | (_, Bit::One) => Bit::One,
                (Bit::Zero, Bit::Zero) => Bit::Zero,
                _ => Bit::X,
            };
        }
        LogicVec::from_bits(&[acc])
    }

    /// Reduction XOR (`^v`): one bit.
    #[must_use]
    pub fn reduce_xor(&self) -> LogicVec {
        let mut acc = Bit::Zero;
        for b in self.iter_bits() {
            acc = if acc.is_unknown() || b.is_unknown() {
                Bit::X
            } else {
                Bit::from(acc != b)
            };
        }
        LogicVec::from_bits(&[acc])
    }

    /// Logical negation (`!v`): one bit.
    #[must_use]
    pub fn logical_not(&self) -> LogicVec {
        match self.truthy() {
            Some(b) => LogicVec::from_bool(!b),
            None => LogicVec::xes(1),
        }
    }

    /// Logical AND (`&&`): one bit.
    #[must_use]
    pub fn logical_and(&self, other: &LogicVec) -> LogicVec {
        match (self.truthy(), other.truthy()) {
            (Some(false), _) | (_, Some(false)) => LogicVec::from_bool(false),
            (Some(true), Some(true)) => LogicVec::from_bool(true),
            _ => LogicVec::xes(1),
        }
    }

    /// Logical OR (`||`): one bit.
    #[must_use]
    pub fn logical_or(&self, other: &LogicVec) -> LogicVec {
        match (self.truthy(), other.truthy()) {
            (Some(true), _) | (_, Some(true)) => LogicVec::from_bool(true),
            (Some(false), Some(false)) => LogicVec::from_bool(false),
            _ => LogicVec::xes(1),
        }
    }

    fn arith_poisoned(&self, other: &LogicVec, width: u32) -> Option<LogicVec> {
        if self.has_unknown() || other.has_unknown() {
            Some(LogicVec::xes(width))
        } else {
            None
        }
    }

    /// Addition, result width = max operand width, carry-out discarded.
    /// Any unknown input bit makes the whole result `X` (IEEE 1364).
    #[must_use]
    pub fn add(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(p) = self.arith_poisoned(other, width) {
            return p;
        }
        let (a, _) = self.extended_planes(width);
        let (b, _) = other.extended_planes(width);
        let mut out = LogicVec::zeros(width);
        let mut carry = 0u64;
        for i in 0..out.val.len() {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.val[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        out.mask_top();
        out
    }

    /// Subtraction (`self - other`), two's complement, width = max.
    #[must_use]
    pub fn sub(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(p) = self.arith_poisoned(other, width) {
            return p;
        }
        let b = other.resize(width);
        let neg = b.not2().add(&LogicVec::from_u64(width, 1));
        self.resize(width).add(&neg)
    }

    /// Two's-complement negation.
    #[must_use]
    pub fn neg(&self) -> LogicVec {
        if self.has_unknown() {
            return LogicVec::xes(self.width);
        }
        self.not2().add(&LogicVec::from_u64(self.width, 1))
    }

    /// Two-state bitwise NOT (no unknowns in `self` assumed).
    fn not2(&self) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in 0..out.val.len() {
            out.val[i] = !self.val[i];
        }
        out.mask_top();
        out
    }

    /// Multiplication, result width = max operand width (truncated).
    #[must_use]
    pub fn mul(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(p) = self.arith_poisoned(other, width) {
            return p;
        }
        let (a, _) = self.extended_planes(width);
        let (b, _) = other.extended_planes(width);
        let n = words_for(width);
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let cur = u128::from(acc[i + j]) + u128::from(a[i]) * u128::from(b[j]) + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = LogicVec::zeros(width);
        out.val.copy_from_slice(&acc);
        out.mask_top();
        out
    }

    /// Unsigned division; division by zero yields all-`X` (IEEE 1364).
    #[must_use]
    pub fn udiv(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(p) = self.arith_poisoned(other, width) {
            return p;
        }
        if other.is_all_zero() {
            return LogicVec::xes(width);
        }
        let (q, _r) = self.resize(width).udivrem(&other.resize(width));
        q
    }

    /// Unsigned remainder; modulo zero yields all-`X` (IEEE 1364).
    #[must_use]
    pub fn urem(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(p) = self.arith_poisoned(other, width) {
            return p;
        }
        if other.is_all_zero() {
            return LogicVec::xes(width);
        }
        let (_q, r) = self.resize(width).udivrem(&other.resize(width));
        r
    }

    /// Schoolbook restoring division on equal-width two-state operands.
    fn udivrem(&self, other: &LogicVec) -> (LogicVec, LogicVec) {
        let width = self.width;
        let mut quo = LogicVec::zeros(width);
        let mut rem = LogicVec::zeros(width);
        for i in (0..width).rev() {
            rem = rem.shl_const(1);
            rem.set_bit(0, self.bit(i));
            if rem.ucmp(other) != std::cmp::Ordering::Less {
                rem = rem.sub(other);
                quo.set_bit(i, Bit::One);
            }
        }
        (quo, rem)
    }

    /// Unsigned comparison of two-state values of equal width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or either value has unknowns.
    fn ucmp(&self, other: &LogicVec) -> std::cmp::Ordering {
        assert_eq!(self.width, other.width);
        assert!(!self.has_unknown() && !other.has_unknown());
        for i in (0..self.val.len()).rev() {
            match self.val[i].cmp(&other.val[i]) {
                std::cmp::Ordering::Equal => {}
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Logical shift left by a constant amount; result keeps `self`'s width.
    #[must_use]
    pub fn shl_const(&self, amount: u32) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        if amount >= self.width {
            return out;
        }
        for i in amount..self.width {
            out.set_bit(i, self.bit(i - amount));
        }
        out
    }

    /// Logical shift right by a constant amount; result keeps `self`'s width.
    #[must_use]
    pub fn lshr_const(&self, amount: u32) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        if amount >= self.width {
            return out;
        }
        for i in 0..self.width - amount {
            out.set_bit(i, self.bit(i + amount));
        }
        out
    }

    /// Arithmetic shift right by a constant amount (sign bit replicated).
    #[must_use]
    pub fn ashr_const(&self, amount: u32) -> LogicVec {
        let msb = self.bit(self.width - 1);
        let mut out = self.lshr_const(amount);
        let start = self.width.saturating_sub(amount);
        for i in start..self.width {
            out.set_bit(i, msb);
        }
        out
    }

    /// Logical shift left by a (possibly unknown) vector amount.
    #[must_use]
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(a) => self.shl_const(a.min(u64::from(self.width)) as u32),
            None => LogicVec::xes(self.width),
        }
    }

    /// Logical shift right by a (possibly unknown) vector amount.
    #[must_use]
    pub fn lshr(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(a) => self.lshr_const(a.min(u64::from(self.width)) as u32),
            None => LogicVec::xes(self.width),
        }
    }

    /// Arithmetic shift right by a (possibly unknown) vector amount.
    #[must_use]
    pub fn ashr(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(a) => self.ashr_const(a.min(u64::from(self.width)) as u32),
            None => LogicVec::xes(self.width),
        }
    }

    /// Logical equality (`==`): one bit, `X` if any input bit is unknown.
    #[must_use]
    pub fn eq_logic(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        let a = self.resize(width);
        let b = other.resize(width);
        if a.has_unknown() || b.has_unknown() {
            return LogicVec::xes(1);
        }
        LogicVec::from_bool(a.val == b.val)
    }

    /// Logical inequality (`!=`).
    #[must_use]
    pub fn ne_logic(&self, other: &LogicVec) -> LogicVec {
        self.eq_logic(other).logical_not()
    }

    /// Case equality (`===`): compares all four states, always 0 or 1.
    #[must_use]
    pub fn case_eq(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        let a = self.resize(width);
        let b = other.resize(width);
        LogicVec::from_bool(a.val == b.val && a.xz == b.xz)
    }

    /// Unsigned less-than (`<`): one bit, `X` on unknowns.
    #[must_use]
    pub fn ult(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        let a = self.resize(width);
        let b = other.resize(width);
        if a.has_unknown() || b.has_unknown() {
            return LogicVec::xes(1);
        }
        LogicVec::from_bool(a.ucmp(&b) == std::cmp::Ordering::Less)
    }

    /// Unsigned less-or-equal (`<=` as comparison).
    #[must_use]
    pub fn ule(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        let a = self.resize(width);
        let b = other.resize(width);
        if a.has_unknown() || b.has_unknown() {
            return LogicVec::xes(1);
        }
        LogicVec::from_bool(a.ucmp(&b) != std::cmp::Ordering::Greater)
    }

    /// Concatenation: `self` becomes the *high* part (Verilog `{self, low}`).
    #[must_use]
    pub fn concat(&self, low: &LogicVec) -> LogicVec {
        let width = self.width + low.width;
        let mut out = LogicVec::zeros(width);
        for i in 0..low.width {
            out.set_bit(i, low.bit(i));
        }
        for i in 0..self.width {
            out.set_bit(low.width + i, self.bit(i));
        }
        out
    }

    /// Replication: `{count{self}}`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn replicate(&self, count: u32) -> LogicVec {
        assert!(count > 0, "replication count must be non-zero");
        let mut out = self.clone();
        for _ in 1..count {
            out = out.concat(self);
        }
        out
    }

    /// Extracts bits `[lo .. lo+width)`; bits beyond `self` read as `X`
    /// (out-of-range part-selects yield `X` in Verilog).
    #[must_use]
    pub fn slice(&self, lo: u32, width: u32) -> LogicVec {
        let mut out = LogicVec::xes(width);
        for i in 0..width {
            let src = lo + i;
            if src < self.width {
                out.set_bit(i, self.bit(src));
            }
        }
        out
    }

    /// Dynamic bit-select; an unknown index yields `X` (IEEE 1364).
    #[must_use]
    pub fn select_bit(&self, index: &LogicVec) -> LogicVec {
        match index.to_u64() {
            Some(i) if i < u64::from(self.width) => LogicVec::from_bits(&[self.bit(i as u32)]),
            _ => LogicVec::xes(1),
        }
    }

    /// Counts `1` bits (unknown bits count as zero).
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.iter_bits().filter(|b| *b == Bit::One).count() as u32
    }
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.to_u64() {
            write!(f, "{}'h{:x}", self.width, v)
        } else {
            write!(f, "{self:?}")
        }
    }
}

impl fmt::LowerHex for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width.div_ceil(4)).rev() {
            let nib = self.slice(i * 4, 4.min(self.width - i * 4));
            match nib.to_u64() {
                Some(v) => write!(f, "{v:x}")?,
                None => write!(f, "{}", if nib.is_all_x() { 'x' } else { 'X' })?,
            }
        }
        Ok(())
    }
}

impl fmt::Binary for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = LogicVec::from_u64(8, 0xA5);
        assert_eq!(v.width(), 8);
        assert_eq!(v.bit(0), Bit::One);
        assert_eq!(v.bit(1), Bit::Zero);
        assert_eq!(v.bit(7), Bit::One);
        assert_eq!(v.to_u64(), Some(0xA5));
    }

    #[test]
    fn ones_and_xes() {
        assert!(LogicVec::ones(70).is_all_ones());
        assert!(LogicVec::xes(70).is_all_x());
        assert!(LogicVec::zeros(70).is_all_zero());
        assert_eq!(LogicVec::ones(70).to_u64(), None);
    }

    #[test]
    #[should_panic(expected = "width must be non-zero")]
    fn zero_width_panics() {
        let _ = LogicVec::zeros(0);
    }

    #[test]
    fn from_bin_str_roundtrip() {
        let v = LogicVec::from_bin_str("10x1_z0").expect("parse");
        assert_eq!(v.width(), 6);
        assert_eq!(v.bit(0), Bit::Zero);
        assert_eq!(v.bit(1), Bit::Z);
        assert_eq!(v.bit(2), Bit::One);
        assert_eq!(v.bit(3), Bit::X);
        assert_eq!(v.bit(5), Bit::One);
        assert_eq!(format!("{v:b}"), "10x1z0");
        assert!(LogicVec::from_bin_str("").is_none());
        assert!(LogicVec::from_bin_str("12").is_none());
    }

    #[test]
    fn bitwise_truth_tables() {
        let zero = LogicVec::zeros(1);
        let one = LogicVec::ones(1);
        let x = LogicVec::xes(1);
        let z = LogicVec::zeds(1);
        // AND: 0 dominates.
        assert!(zero.and(&x).is_all_zero());
        assert!(x.and(&zero).is_all_zero());
        assert!(one.and(&x).is_all_x());
        assert!(z.and(&one).is_all_x());
        assert!(one.and(&one).is_all_ones());
        // OR: 1 dominates.
        assert!(one.or(&x).is_all_ones());
        assert!(x.or(&one).is_all_ones());
        assert!(zero.or(&x).is_all_x());
        assert!(zero.or(&zero).is_all_zero());
        // XOR: any unknown poisons.
        assert!(one.xor(&x).is_all_x());
        assert!(one.xor(&zero).is_all_ones());
        assert!(one.xor(&one).is_all_zero());
    }

    #[test]
    fn not_maps_z_to_x() {
        let v = LogicVec::from_bin_str("01xz").expect("parse");
        assert_eq!(format!("{:b}", v.not()), "10xx");
    }

    #[test]
    fn arithmetic_known() {
        let a = LogicVec::from_u64(16, 300);
        let b = LogicVec::from_u64(16, 77);
        assert_eq!(a.add(&b).to_u64(), Some(377));
        assert_eq!(a.sub(&b).to_u64(), Some(223));
        assert_eq!(b.sub(&a).to_u64(), Some((77u64.wrapping_sub(300)) & 0xFFFF));
        assert_eq!(a.mul(&b).to_u64(), Some(300 * 77));
        assert_eq!(a.udiv(&b).to_u64(), Some(300 / 77));
        assert_eq!(a.urem(&b).to_u64(), Some(300 % 77));
    }

    #[test]
    fn arithmetic_overflow_wraps() {
        let a = LogicVec::from_u64(8, 0xFF);
        let b = LogicVec::from_u64(8, 2);
        assert_eq!(a.add(&b).to_u64(), Some(1));
        assert_eq!(a.mul(&b).to_u64(), Some(0xFE));
    }

    #[test]
    fn wide_arithmetic() {
        let a = LogicVec::ones(128);
        let one = LogicVec::from_u64(128, 1);
        assert!(a.add(&one).is_all_zero());
        let b = a.sub(&one);
        assert_eq!(b.bit(0), Bit::Zero);
        assert_eq!(b.bit(127), Bit::One);
    }

    #[test]
    fn arithmetic_poisoned_by_x() {
        let a = LogicVec::from_u64(8, 5);
        let mut b = LogicVec::from_u64(8, 3);
        b.set_bit(2, Bit::X);
        assert!(a.add(&b).is_all_x());
        assert!(a.mul(&b).is_all_x());
        assert!(a.sub(&b).is_all_x());
        assert!(b.neg().is_all_x());
    }

    #[test]
    fn division_by_zero_is_x() {
        let a = LogicVec::from_u64(8, 5);
        let z = LogicVec::zeros(8);
        assert!(a.udiv(&z).is_all_x());
        assert!(a.urem(&z).is_all_x());
    }

    #[test]
    fn shifts() {
        let a = LogicVec::from_u64(8, 0b1001_0110);
        assert_eq!(a.shl_const(2).to_u64(), Some(0b0101_1000));
        assert_eq!(a.lshr_const(2).to_u64(), Some(0b0010_0101));
        assert_eq!(a.ashr_const(2).to_u64(), Some(0b1110_0101));
        assert_eq!(a.shl(&LogicVec::from_u64(4, 9)).to_u64(), Some(0));
        assert!(a.shl(&LogicVec::xes(3)).is_all_x());
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(8, 5);
        let b = LogicVec::from_u64(8, 7);
        assert!(a.ult(&b).is_all_ones());
        assert!(b.ult(&a).is_all_zero());
        assert!(a.ule(&a).is_all_ones());
        assert!(a.eq_logic(&a).is_all_ones());
        assert!(a.ne_logic(&b).is_all_ones());
        let x = LogicVec::xes(8);
        assert!(a.eq_logic(&x).is_all_x());
        assert!(a.ult(&x).is_all_x());
    }

    #[test]
    fn comparison_mixed_width_zero_extends() {
        let a = LogicVec::from_u64(4, 0xF);
        let b = LogicVec::from_u64(8, 0x0F);
        assert!(a.eq_logic(&b).is_all_ones());
        let c = LogicVec::from_u64(8, 0x1F);
        assert!(a.ult(&c).is_all_ones());
    }

    #[test]
    fn case_equality_sees_four_states() {
        let x = LogicVec::xes(4);
        assert!(x.case_eq(&x).is_all_ones());
        assert!(x.case_eq(&LogicVec::zeds(4)).is_all_zero());
        let a = LogicVec::from_u64(4, 3);
        assert!(a.case_eq(&x).is_all_zero());
    }

    #[test]
    fn concat_replicate_slice() {
        let hi = LogicVec::from_u64(4, 0xA);
        let lo = LogicVec::from_u64(4, 0x5);
        let v = hi.concat(&lo);
        assert_eq!(v.to_u64(), Some(0xA5));
        assert_eq!(lo.replicate(3).to_u64(), Some(0x555));
        assert_eq!(v.slice(4, 4).to_u64(), Some(0xA));
        assert_eq!(v.slice(0, 4).to_u64(), Some(0x5));
        // Out-of-range slice bits read X.
        assert!(v.slice(6, 4).has_unknown());
    }

    #[test]
    fn select_bit_dynamic() {
        let v = LogicVec::from_u64(8, 0b0000_0100);
        assert!(v.select_bit(&LogicVec::from_u64(3, 2)).is_all_ones());
        assert!(v.select_bit(&LogicVec::from_u64(3, 3)).is_all_zero());
        assert!(v.select_bit(&LogicVec::xes(3)).is_all_x());
        assert!(v.select_bit(&LogicVec::from_u64(8, 200)).is_all_x());
    }

    #[test]
    fn truthiness() {
        assert_eq!(LogicVec::from_u64(4, 0).truthy(), Some(false));
        assert_eq!(LogicVec::from_u64(4, 2).truthy(), Some(true));
        assert_eq!(LogicVec::xes(4).truthy(), None);
        // A 1 anywhere wins even with Xs around.
        let mut v = LogicVec::xes(4);
        v.set_bit(1, Bit::One);
        assert_eq!(v.truthy(), Some(true));
    }

    #[test]
    fn logical_ops() {
        let t = LogicVec::from_u64(4, 3);
        let f = LogicVec::zeros(4);
        let x = LogicVec::xes(4);
        assert!(t.logical_and(&t).is_all_ones());
        assert!(t.logical_and(&f).is_all_zero());
        assert!(f.logical_and(&x).is_all_zero());
        assert!(t.logical_and(&x).is_all_x());
        assert!(t.logical_or(&x).is_all_ones());
        assert!(f.logical_or(&f).is_all_zero());
        assert!(f.logical_or(&x).is_all_x());
        assert!(t.logical_not().is_all_zero());
        assert!(f.logical_not().is_all_ones());
        assert!(x.logical_not().is_all_x());
    }

    #[test]
    fn reductions() {
        assert!(LogicVec::ones(5).reduce_and().is_all_ones());
        assert!(LogicVec::from_u64(5, 0b11101).reduce_and().is_all_zero());
        assert!(LogicVec::zeros(5).reduce_or().is_all_zero());
        assert!(LogicVec::from_u64(5, 0b00100).reduce_or().is_all_ones());
        assert!(LogicVec::from_u64(5, 0b00111).reduce_xor().is_all_ones());
        assert!(LogicVec::from_u64(5, 0b00110).reduce_xor().is_all_zero());
        assert!(LogicVec::xes(2).reduce_xor().is_all_x());
        // 0 dominates reduce_and even with X present.
        let mut v = LogicVec::xes(4);
        v.set_bit(0, Bit::Zero);
        assert!(v.reduce_and().is_all_zero());
    }

    #[test]
    fn resize_and_sign_extend() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.resize(8).to_u64(), Some(0b0000_1010));
        assert_eq!(v.sign_extend(8).to_u64(), Some(0b1111_1010));
        assert_eq!(v.resize(2).to_u64(), Some(0b10));
        let x = LogicVec::xes(4);
        assert_eq!(x.resize(8).slice(4, 4).to_u64(), Some(0));
    }

    #[test]
    fn display_formats() {
        let v = LogicVec::from_u64(12, 0xABC);
        assert_eq!(format!("{v}"), "12'habc");
        assert_eq!(format!("{v:x}"), "abc");
        let x = LogicVec::from_bin_str("1x0z").expect("parse");
        assert_eq!(format!("{x:b}"), "1x0z");
        assert_eq!(format!("{x:?}"), "4'b1x0z");
    }

    #[test]
    fn count_ones_ignores_unknowns() {
        let v = LogicVec::from_bin_str("1x1z1").expect("parse");
        assert_eq!(v.count_ones(), 3);
    }
}
