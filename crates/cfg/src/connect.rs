//! Module connection profiles — the paper's **Algorithm 2**.
//!
//! A static traversal of each module's structure collects every sub-module
//! invocation together with the "logistic information required to compute
//! the connected CFG (e.g., clocks, resets)": which parent signal drives
//! each child clock and reset port.

use soccar_rtl::ast::{Expr, Module, SourceUnit};

use crate::reset_id::{identify_resets, ResetNaming};

/// One port binding relevant to CFG composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalConn {
    /// Formal port name in the child.
    pub formal: String,
    /// Actual signal name in the parent, when the connection is a simple
    /// identifier (composition only needs to trace identifiers; an
    /// expression-driven reset is recorded as `None` and starts its own
    /// domain).
    pub actual: Option<String>,
}

/// One sub-module invocation found in a parent module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildConn {
    /// Instance name.
    pub instance: String,
    /// Child module name.
    pub module: String,
    /// Connections to ports the child identifies as resets.
    pub reset_conns: Vec<SignalConn>,
    /// Connections to ports that look like clocks.
    pub clock_conns: Vec<SignalConn>,
}

/// The connection profile `CN[M_i]` of one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionProfile {
    /// Module name.
    pub module: String,
    /// Sub-module invocations in source order.
    pub children: Vec<ChildConn>,
}

/// Builds connection profiles for every module in the unit
/// (Algorithm 2: collect IPs, discover invoked modules, record their
/// clock/reset connections).
///
/// # Examples
///
/// ```
/// use soccar_cfg::connect::connection_profiles;
/// use soccar_cfg::reset_id::ResetNaming;
/// use soccar_rtl::{parser::parse, span::FileId};
///
/// let unit = parse(FileId(0), "
///   module leaf(input clk, input rst_n); endmodule
///   module top(input clk, input sys_rst_n);
///     leaf u (.clk(clk), .rst_n(sys_rst_n));
///   endmodule").expect("parse");
/// let profiles = connection_profiles(&unit, &ResetNaming::new());
/// let top = profiles.iter().find(|p| p.module == "top").expect("top");
/// assert_eq!(top.children[0].reset_conns[0].actual.as_deref(), Some("sys_rst_n"));
/// ```
#[must_use]
pub fn connection_profiles(unit: &SourceUnit, naming: &ResetNaming) -> Vec<ConnectionProfile> {
    unit.modules
        .iter()
        .map(|m| profile_module(unit, m, naming))
        .collect()
}

fn profile_module(unit: &SourceUnit, module: &Module, naming: &ResetNaming) -> ConnectionProfile {
    let mut children = Vec::new();
    for inst in module.instances() {
        let Some(child_def) = unit.module(&inst.module) else {
            // Unknown module: recorded with no connection info so the
            // composer can still report it.
            children.push(ChildConn {
                instance: inst.name.clone(),
                module: inst.module.clone(),
                reset_conns: Vec::new(),
                clock_conns: Vec::new(),
            });
            continue;
        };
        let child_resets = identify_resets(child_def, naming);
        let mut reset_conns = Vec::new();
        let mut clock_conns = Vec::new();
        for conn in &inst.conns {
            let actual = conn.expr.as_ref().and_then(ident_of);
            if child_resets.iter().any(|r| r.name == conn.port) {
                reset_conns.push(SignalConn {
                    formal: conn.port.clone(),
                    actual,
                });
            } else if naming.is_clock_name(&conn.port) {
                clock_conns.push(SignalConn {
                    formal: conn.port.clone(),
                    actual,
                });
            }
        }
        children.push(ChildConn {
            instance: inst.name.clone(),
            module: inst.module.clone(),
            reset_conns,
            clock_conns,
        });
    }
    ConnectionProfile {
        module: module.name.clone(),
        children,
    }
}

fn ident_of(e: &Expr) -> Option<String> {
    match e {
        Expr::Ident { name, .. } => Some(name.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::parser::parse;
    use soccar_rtl::span::FileId;

    #[test]
    fn profiles_trace_reset_and_clock_ports() {
        let unit = parse(
            FileId(0),
            "module ip(input clk, input rst_n, input [3:0] d); endmodule
             module top(input main_clk, input por_n, input [3:0] x);
               ip u0 (.clk(main_clk), .rst_n(por_n), .d(x));
               ip u1 (.clk(main_clk), .rst_n(por_n), .d(4'd0));
             endmodule",
        )
        .expect("parse");
        let profiles = connection_profiles(&unit, &ResetNaming::new());
        let top = profiles.iter().find(|p| p.module == "top").expect("top");
        assert_eq!(top.children.len(), 2);
        assert_eq!(top.children[0].instance, "u0");
        assert_eq!(top.children[0].module, "ip");
        assert_eq!(
            top.children[0].reset_conns,
            vec![SignalConn {
                formal: "rst_n".into(),
                actual: Some("por_n".into())
            }]
        );
        assert_eq!(
            top.children[0].clock_conns,
            vec![SignalConn {
                formal: "clk".into(),
                actual: Some("main_clk".into())
            }]
        );
        let ip = profiles.iter().find(|p| p.module == "ip").expect("ip");
        assert!(ip.children.is_empty());
    }

    #[test]
    fn expression_driven_reset_recorded_without_actual() {
        let unit = parse(
            FileId(0),
            "module ip(input rst_n); endmodule
             module top(input a, b);
               ip u (.rst_n(a & b));
             endmodule",
        )
        .expect("parse");
        let profiles = connection_profiles(&unit, &ResetNaming::new());
        let top = profiles.iter().find(|p| p.module == "top").expect("top");
        assert_eq!(top.children[0].reset_conns[0].actual, None);
    }

    #[test]
    fn unknown_child_module_tolerated() {
        let unit = parse(
            FileId(0),
            "module top(input a); mystery u (.x(a)); endmodule",
        )
        .expect("parse");
        let profiles = connection_profiles(&unit, &ResetNaming::new());
        assert_eq!(profiles[0].children.len(), 1);
        assert_eq!(profiles[0].children[0].module, "mystery");
    }
}
