// Positive: gate_rst_n is woven out of combinational logic (a continuous
// assign) and consumed as an asynchronous reset — glitch-prone.
module comb_gen(input clk, input [3:0] ctl, input [3:0] d, output reg [3:0] q);
  wire gate_rst_n;
  assign gate_rst_n = ctl == 4'hF;
  always @(posedge clk or negedge gate_rst_n)
    if (!gate_rst_n) q <= 4'd0;
    else q <= d;
endmodule
