//! **Detection results** — the Section V-C evaluation: SoCCAR run on all
//! five bug-seeded variants, scored red-team/blue-team style.
//!
//! Paper outcome being reproduced: every bug detected in every ClusterSoC
//! variant; in AutoSoC all bugs except the SHA256 information-leakage bug
//! of Variant #2; verification time "a few seconds".
//!
//! The five runs are independent and fan out across the worker pool
//! (`--jobs <n>`, default `$SOCCAR_JOBS` or all cores); the table is
//! identical for every job count. `--compare-jobs` additionally runs the
//! sweep serially first and reports the parallel speedup.
//!
//! Every run also writes one `BENCH_<soc>.json` per SoC model (see
//! docs/OBSERVABILITY.md for the schema): `--bench-out <dir>` picks the
//! directory (default: the current one), `--smoke` switches to the CI
//! reduced-rounds configuration, and `--check-baseline <dir>` gates the
//! counters against checked-in baselines, exiting non-zero on drift.

use std::process::ExitCode;
use std::time::Duration;

use soccar::evaluation::{render_outcomes, VariantEvaluation};
use soccar_bench::{
    append_flip_solving, append_serving_records, bench_args, bench_reports, check_bench_baselines,
    evaluate_all_variants_config, render_table, write_bench_reports, BenchArgs,
};

fn main() -> ExitCode {
    let args = bench_args();
    let jobs = soccar_exec::resolve_jobs(Some(args.jobs));

    let serial = args.compare_jobs.then(|| timed(1, &args));
    let (evals, stats, elapsed) = timed(jobs, &args);

    let mut rows = Vec::new();
    let mut details = String::new();
    for eval in &evals {
        details.push_str(&render_outcomes(eval));
        details.push('\n');
        rows.push(vec![
            eval.variant.clone(),
            format!("{}/{}", eval.detected(), eval.outcomes.len()),
            eval.false_alarms.len().to_string(),
            format!("{:.2}", eval.verification_time().as_secs_f64()),
            expected(&eval.variant),
        ]);
    }
    println!(
        "Detection results (Section V-C, Explicit governor analysis, {} mode)",
        args.mode()
    );
    println!(
        "{}",
        render_table(
            &[
                "Variant",
                "Detected",
                "False alarms",
                "Seconds",
                "Paper expectation"
            ],
            &rows
        )
    );
    println!("{details}");
    println!(
        "sweep: {} variants in {:.2}s with {} jobs ({:.0}% pool utilization)",
        stats.tasks,
        elapsed.as_secs_f64(),
        stats.jobs,
        stats.utilization() * 100.0
    );
    if let Some((serial_evals, _, serial_elapsed)) = serial {
        assert_eq!(
            serial_evals.len(),
            evals.len(),
            "serial and parallel sweeps cover the same variants"
        );
        println!(
            "compare: serial {:.2}s vs {} jobs {:.2}s — {:.2}x speedup",
            serial_elapsed.as_secs_f64(),
            jobs,
            elapsed.as_secs_f64(),
            serial_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
        );
    }

    // Machine-readable perf records (and, in CI, the regression gate).
    let mut reports = bench_reports(&evals, args.mode());
    // The flip_solving comparison: same frozen candidates solved one-shot
    // and incrementally; counters are gated, the speedup is reported.
    for (model, record) in append_flip_solving(&mut reports, &args.config()) {
        println!(
            "flip_solving {model:?}: one-shot {:.1}ms vs incremental {:.1}ms — {:.2}x speedup; \
             trail reuse off {:.1}ms — {:.2}x reuse win",
            record.oneshot.as_secs_f64() * 1e3,
            record.incremental.as_secs_f64() * 1e3,
            record.speedup(),
            record.trail_reuse_off.as_secs_f64() * 1e3,
            record.trail_reuse_speedup()
        );
    }
    // Serving records: the warm-session reanalysis win (timings reported,
    // module re-extraction counts gated) and the clause-reuse gate.
    for (model, record) in append_serving_records(&mut reports, &args.config()) {
        println!(
            "incremental_reanalysis {model:?}: cold {:.1}ms, warm after 1-module edit {:.1}ms \
             ({:.2}x), cached repeat {:.3}ms ({:.0}x)",
            record.cold.as_secs_f64() * 1e3,
            record.warm.as_secs_f64() * 1e3,
            record.speedup(),
            record.repeat.as_secs_f64() * 1e3,
            record.repeat_speedup()
        );
    }
    let reports = reports;
    let out_dir = std::path::Path::new(args.bench_out.as_deref().unwrap_or("."));
    match write_bench_reports(out_dir, &reports) {
        Ok(paths) => {
            for p in paths {
                println!("bench record written to {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &args.check_baseline {
        let problems = check_bench_baselines(std::path::Path::new(dir), &reports);
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("baseline mismatch: {p}");
            }
            eprintln!(
                "{} mismatch(es) against {dir}; regenerate with \
                 `cargo run --release -p soccar-bench --bin detection -- --smoke --bench-out {dir}` \
                 if the change is intended",
                problems.len()
            );
            return ExitCode::FAILURE;
        }
        println!("bench counters match the baselines in {dir}");
    }
    ExitCode::SUCCESS
}

fn timed(
    jobs: usize,
    args: &BenchArgs,
) -> (Vec<VariantEvaluation>, soccar_exec::PoolStats, Duration) {
    // The span API is the one timing code path (its guard times even on a
    // disabled recorder), so bench timing and pipeline timing can never
    // drift apart.
    let recorder = soccar_obs::Recorder::disabled();
    let ((evals, stats), elapsed) = recorder.time("bench.detection.sweep", || {
        evaluate_all_variants_config(jobs, &args.config())
    });
    (evals, stats, elapsed)
}

fn expected(variant: &str) -> String {
    if variant == "AutoSoC Variant #2" {
        "all but the SHA256 leak".to_owned()
    } else {
        "all detected".to_owned()
    }
}
