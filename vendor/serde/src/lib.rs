//! Offline vendored subset of the `serde` serialization API.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of serde it uses: the [`Serialize`] /
//! [`Serializer`] traits (with the same method signatures as upstream, so
//! code written against real serde compiles unchanged), a
//! `#[derive(Serialize)]` macro for named-field structs (including
//! `#[serde(with = "module")]` fields), and impls for the std types the
//! reports contain. Deserialization is intentionally absent — nothing in
//! the workspace reads serialized data back.

pub use serde_derive::Serialize;

/// Serialization sub-traits (compound builders), as in upstream serde.
pub mod ser {
    use std::fmt::Display;

    /// Trait alias for serializer errors.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Builder for sequence serialization.
    pub trait SerializeSeq {
        /// Output type of the parent serializer.
        type Ok;
        /// Error type of the parent serializer.
        type Error;

        /// Serializes one element.
        ///
        /// # Errors
        ///
        /// Propagates serializer failures.
        fn serialize_element<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Finishes the sequence.
        ///
        /// # Errors
        ///
        /// Propagates serializer failures.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for struct serialization.
    pub trait SerializeStruct {
        /// Output type of the parent serializer.
        type Ok;
        /// Error type of the parent serializer.
        type Error;

        /// Serializes one named field.
        ///
        /// # Errors
        ///
        /// Propagates serializer failures.
        fn serialize_field<T: ?Sized + super::Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Finishes the struct.
        ///
        /// # Errors
        ///
        /// Propagates serializer failures.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for map serialization.
    pub trait SerializeMap {
        /// Output type of the parent serializer.
        type Ok;
        /// Error type of the parent serializer.
        type Error;

        /// Serializes one key/value entry.
        ///
        /// # Errors
        ///
        /// Propagates serializer failures.
        fn serialize_entry<K: ?Sized + super::Serialize, V: ?Sized + super::Serialize>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error>;

        /// Finishes the map.
        ///
        /// # Errors
        ///
        /// Propagates serializer failures.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// A data format that can serialize the serde data model (subset).
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Sequence builder.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Struct builder.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Map builder.
    type SerializeMap: ser::SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;

    /// Serializes a signed integer.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;

    /// Serializes an unsigned integer.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;

    /// Serializes a float.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serializes a unit (null).
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;

    /// Serializes `None`.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_unit()
    }

    /// Serializes `Some(value)`.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }

    /// Serializes a unit enum variant (as its name).
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error> {
        let _ = (name, variant_index);
        self.serialize_str(variant)
    }

    /// Begins a sequence of `len` elements.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;

    /// Begins a struct with `len` fields.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Begins a map of `len` entries.
    ///
    /// # Errors
    ///
    /// Format-specific failures.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

/// A value serializable into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

macro_rules! impl_serialize_int {
    ($($t:ty => $m:ident as $c:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$m(*self as $c)
            }
        }
    )*};
}

impl_serialize_int!(
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap as _;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
