//! Offline vendored subset of the `proptest` property-testing API.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of proptest its test suites use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, integer-range and
//! [`strategy::Just`] strategies, [`prop_oneof!`], `collection::vec`, a
//! character-class subset of string-regex strategies, and the
//! `prop_assert*` macros.
//!
//! Semantics: each test body runs `cases` times against a deterministic
//! xorshift generator (seeded per test by case index). There is **no
//! shrinking** — a failing case panics with the generated values visible
//! in the assertion message. That keeps the harness dependency-free while
//! preserving the bug-finding power of randomized property tests.

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-typed strategies (the [`prop_oneof!`]
    /// backing type).
    #[derive(Debug, Clone)]
    pub struct OneOf<S> {
        options: Vec<S>,
    }

    impl<S> OneOf<S> {
        /// Builds a choice over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<S>) -> OneOf<S> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// String strategy from a regex-like pattern. Supported subset:
    /// `[class]{lo,hi}` where `class` contains literal characters, ranges
    /// (`a-z`) and the escapes `\n`, `\t`, `\r`, `\\`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self);
            let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            (0..len)
                .map(|_| alphabet[(rng.next_u64() % alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn bad_pattern(pattern: &str) -> ! {
        panic!(
            "vendored proptest supports only `[class]{{lo,hi}}` string \
             patterns, got `{pattern}`"
        )
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| bad_pattern(pattern));
        let (class, rest) = rest.split_once(']').unwrap_or_else(|| bad_pattern(pattern));
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| bad_pattern(pattern));
        let (lo, hi) = counts
            .split_once(',')
            .unwrap_or_else(|| bad_pattern(pattern));
        let lo: usize = lo.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
        let hi: usize = hi.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
        assert!(lo <= hi, "bad repetition in `{pattern}`");

        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let c = if c == '\\' {
                match chars.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some('\\') => '\\',
                    _ => bad_pattern(pattern),
                }
            } else {
                c
            };
            if chars.peek() == Some(&'-') {
                let mut look = chars.clone();
                look.next(); // consume '-'
                if let Some(end) = look.next() {
                    // A range `c-end` (a trailing '-' is a literal).
                    chars = look;
                    for code in (c as u32)..=(end as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            alphabet.push(ch);
                        }
                    }
                    continue;
                }
            }
            alphabet.push(c);
        }
        assert!(!alphabet.is_empty(), "empty class in `{pattern}`");
        (alphabet, lo, hi)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic test driver configuration and RNG.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// The deterministic generator handed to strategies (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case; equal seeds give equal streams.
        #[must_use]
        pub fn for_case(seed: u64) -> TestRng {
            TestRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod prelude {
    //! Single-import surface, mirroring upstream `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$attr:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its precondition fails. In the vendored
/// runner this advances to the next case without counting a failure, so it
/// must appear directly inside the property body (not inside a closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(x in 3u32..10, v in crate::collection::vec(0u8..2, 1..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|b| *b < 2));
        }

        #[test]
        fn oneof_and_just(op in prop_oneof![Just('a'), Just('b')]) {
            prop_assert!(op == 'a' || op == 'b');
        }

        #[test]
        fn string_class(s in "[a-c\n]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = Strategy::prop_map(0u8..4, |x| u32::from(x) * 10);
        let mut rng = crate::test_runner::TestRng::for_case(1);
        for _ in 0..32 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && v < 40);
        }
    }
}
