//! Wishbone (B3-flavoured) shared-bus fabric generator.
//!
//! Generates a priority-arbitrated shared bus with `M` masters and `S`
//! slaves. The top address nibble selects the slave. A registered
//! protection mask guards designated slaves: accesses to a protected
//! slave are blocked (no strobe forwarded, no ack) unless `bus_unlock`
//! is asserted. The asynchronous reset must re-arm the mask to all-ones;
//! the ClusterSoC Variant #3 *Loss of Data Integrity* bug clears it
//! instead, letting any master reach protected slaves after a partial
//! reset.

/// Bus-level data-integrity bug selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BusBug {
    /// Correct RTL.
    #[default]
    None,
    /// Reset clears the protection mask instead of arming it.
    ProtMaskCleared,
}

/// Generates a fabric module named `name` with `masters` master ports and
/// `slaves` slave ports (each 32-bit address/data).
///
/// # Panics
///
/// Panics unless `1 <= masters <= 4` and `1 <= slaves <= 8`.
#[must_use]
pub fn wb_fabric(name: &str, masters: u32, slaves: u32, bug: BusBug) -> String {
    assert!((1..=4).contains(&masters), "1..=4 masters");
    assert!((1..=8).contains(&slaves), "1..=8 slaves");
    let mut ports = String::new();
    for m in 0..masters {
        ports.push_str(&format!(
            "  input [31:0] m{m}_addr,\n  input [31:0] m{m}_wdata,\n  \
             output reg [31:0] m{m}_rdata,\n  input m{m}_we,\n  input m{m}_stb,\n  \
             output reg m{m}_ack,\n"
        ));
    }
    for s in 0..slaves {
        ports.push_str(&format!(
            "  output reg [31:0] s{s}_addr,\n  output reg [31:0] s{s}_wdata,\n  \
             input [31:0] s{s}_rdata,\n  output reg s{s}_we,\n  output reg s{s}_stb,\n  \
             input s{s}_ack,\n"
        ));
    }
    // The highest-numbered slave is the secure window; reset must re-arm
    // exactly its mask bit.
    let armed = if slaves == 1 {
        "1'b1".to_owned()
    } else {
        format!("{{1'b1, {{{}{{1'b0}}}}}}", slaves - 1)
    };
    let mask_reset = match bug {
        BusBug::None => format!("prot_mask <= {armed};"),
        BusBug::ProtMaskCleared => {
            format!("prot_mask <= {{{slaves}{{1'b0}}}}; // BUG(data-integrity): mask cleared")
        }
    };

    // Priority arbiter: lowest-index requesting master wins.
    let mut grant = String::new();
    grant.push_str("  always @* begin\n    grant = 3'd7;\n");
    for m in (0..masters).rev() {
        grant.push_str(&format!("    if (m{m}_stb) grant = 3'd{m};\n"));
    }
    grant.push_str("  end\n");

    // Granted-master muxes.
    let gm = |field: &str, width: &str| {
        let mut s = format!("  always @* begin\n    g_{field} = {width};\n");
        for m in 0..masters {
            s.push_str(&format!(
                "    if (grant == 3'd{m}) g_{field} = m{m}_{field};\n"
            ));
        }
        s.push_str("  end\n");
        s
    };

    // Slave select from the top address nibble; blocked when protected.
    let mut slave_logic = String::new();
    slave_logic.push_str("  always @* begin\n");
    for s in 0..slaves {
        slave_logic.push_str(&format!(
            "    s{s}_addr = g_addr;\n    s{s}_wdata = g_wdata;\n    s{s}_we = g_we;\n    \
             s{s}_stb = 1'b0;\n"
        ));
    }
    slave_logic.push_str("    blocked = 1'b0;\n");
    slave_logic.push_str("    sel_rdata = 32'd0;\n    sel_ack = 1'b0;\n");
    for s in 0..slaves {
        slave_logic.push_str(&format!(
            "    if (g_stb & (g_addr[31:28] == 4'd{s})) begin\n      \
             if (prot_mask[{s}] & ~bus_unlock) blocked = 1'b1;\n      \
             else begin\n        s{s}_stb = 1'b1;\n        sel_rdata = s{s}_rdata;\n        \
             sel_ack = s{s}_ack;\n      end\n    end\n"
        ));
    }
    slave_logic.push_str("  end\n");

    // Return path to the granted master.
    let mut ret = String::new();
    ret.push_str("  always @* begin\n");
    for m in 0..masters {
        ret.push_str(&format!("    m{m}_rdata = 32'd0;\n    m{m}_ack = 1'b0;\n"));
    }
    for m in 0..masters {
        ret.push_str(&format!(
            "    if (grant == 3'd{m}) begin\n      m{m}_rdata = sel_rdata;\n      \
             m{m}_ack = sel_ack | blocked;\n    end\n"
        ));
    }
    ret.push_str("  end\n");

    format!(
        "module {name}(
  input clk,
  input rst_n,
  input bus_unlock,
{ports}  output reg [{sm1}:0] prot_mask,
  output reg bus_viol
);
  reg [2:0] grant;
  reg [31:0] g_addr;
  reg [31:0] g_wdata;
  reg g_we;
  reg g_stb;
  reg blocked;
  reg [31:0] sel_rdata;
  reg sel_ack;

{grant}{gaddr}{gwdata}{gwe}{gstb}{slave_logic}{ret}
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      bus_viol <= 1'b0;
      {mask_reset}
    end else begin
      bus_viol <= blocked;
    end
endmodule
",
        sm1 = slaves - 1,
        gaddr = gm("addr", "32'd0"),
        gwdata = gm("wdata", "32'd0"),
        gwe = gm("we", "1'b0"),
        gstb = gm("stb", "1'b0"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    fn fabric(bug: BusBug) -> (soccar_rtl::Design, String) {
        let src = wb_fabric("wb_fabric", 2, 3, bug);
        let d = soccar_rtl::compile("wb.v", &src, "wb_fabric")
            .unwrap_or_else(|e| panic!("compile: {e}"))
            .0;
        (d, src)
    }

    fn setup(bug: BusBug) -> (soccar_rtl::Design, Vec<(String, u32)>) {
        let (d, _) = fabric(bug);
        let inputs: Vec<(String, u32)> = d
            .top_inputs()
            .map(|n| (d.net(n).local_name.clone(), d.net(n).width))
            .collect();
        (d, inputs)
    }

    #[test]
    fn fabric_compiles_various_shapes() {
        for (m, s) in [(1, 1), (2, 3), (4, 8)] {
            let src = wb_fabric("f", m, s, BusBug::None);
            soccar_rtl::compile("f.v", &src, "f").unwrap_or_else(|e| panic!("{m}x{s}: {e}"));
        }
    }

    fn drive_access(bug: BusBug, unlock: bool) -> (u64, u64, u64) {
        // Master 0 writes to slave 2 (the secure window re-armed by reset).
        // Returns (s2_stb, blocked ack, bus_viol after a clock).
        let (d, inputs) = setup(bug);
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let n = |s: &str| d.find_net(&format!("wb_fabric.{s}")).expect("net");
        for (name, w) in &inputs {
            sim.write_input(n(name), LogicVec::zeros(*w)).expect("zero");
        }
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("bus_unlock"), LogicVec::from_u64(1, u64::from(unlock)))
            .expect("ul");
        sim.write_input(n("m0_addr"), LogicVec::from_u64(32, 0x2000_0004))
            .expect("a");
        sim.write_input(n("m0_wdata"), LogicVec::from_u64(32, 0x55))
            .expect("w");
        sim.write_input(n("m0_we"), LogicVec::from_u64(1, 1))
            .expect("we");
        sim.write_input(n("m0_stb"), LogicVec::from_u64(1, 1))
            .expect("stb");
        sim.write_input(n("s2_ack"), LogicVec::from_u64(1, 1))
            .expect("ack");
        sim.settle().expect("settle");
        let stb = sim.net_logic(n("s2_stb")).to_u64().expect("stb");
        let ack = sim.net_logic(n("m0_ack")).to_u64().expect("ack");
        sim.tick(n("clk")).expect("tick");
        let viol = sim.net_logic(n("bus_viol")).to_u64().expect("viol");
        (stb, ack, viol)
    }

    #[test]
    fn protected_slave_blocked_after_clean_reset() {
        let (stb, ack, viol) = drive_access(BusBug::None, false);
        assert_eq!(stb, 0, "strobe must not reach the protected slave");
        assert_eq!(ack, 1, "blocked access still acks (bus does not hang)");
        assert_eq!(viol, 1, "violation latched");
    }

    #[test]
    fn unlock_opens_protected_slave() {
        let (stb, _ack, viol) = drive_access(BusBug::None, true);
        assert_eq!(stb, 1);
        assert_eq!(viol, 0);
    }

    #[test]
    fn buggy_reset_exposes_protected_slave() {
        let (stb, _ack, viol) = drive_access(BusBug::ProtMaskCleared, false);
        assert_eq!(stb, 1, "protection mask cleared: access sails through");
        assert_eq!(viol, 0);
    }

    #[test]
    fn arbiter_prioritizes_master0() {
        let (d, inputs) = setup(BusBug::None);
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let n = |s: &str| d.find_net(&format!("wb_fabric.{s}")).expect("net");
        for (name, w) in &inputs {
            sim.write_input(n(name), LogicVec::zeros(*w)).expect("zero");
        }
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("bus_unlock"), LogicVec::from_u64(1, 1))
            .expect("ul");
        // Both masters request different slaves; master 0 wins.
        sim.write_input(n("m0_addr"), LogicVec::from_u64(32, 0x0000_0000))
            .expect("a0");
        sim.write_input(n("m1_addr"), LogicVec::from_u64(32, 0x2000_0000))
            .expect("a1");
        sim.write_input(n("m0_stb"), LogicVec::from_u64(1, 1))
            .expect("s0");
        sim.write_input(n("m1_stb"), LogicVec::from_u64(1, 1))
            .expect("s1");
        sim.settle().expect("settle");
        assert_eq!(sim.net_logic(n("s0_stb")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("s2_stb")).to_u64(), Some(0));
        // Master 0 drops: master 1 reaches slave 2.
        sim.write_input(n("m0_stb"), LogicVec::from_u64(1, 0))
            .expect("s0");
        sim.settle().expect("settle");
        assert_eq!(sim.net_logic(n("s2_stb")).to_u64(), Some(1));
    }
}
