//! Run the full SoCCAR evaluation on a ClusterSoC variant — the paper's
//! mobile/IoT benchmark with bugs seeded per Table IV.
//!
//! ```sh
//! cargo run --release --example detect_cluster_soc [variant 1..=3]
//! ```

use soccar::evaluation::{evaluate_variant, render_outcomes};
use soccar::SoccarConfig;
use soccar_concolic::ConcolicConfig;
use soccar_soc::SocModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let variant: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(1);
    let spec = soccar_soc::variant(SocModel::ClusterSoc, variant)
        .ok_or("ClusterSoC has variants 1..=3")?;
    println!(
        "evaluating {} (red-team bugs hidden from the tool)…",
        spec.name()
    );

    let config = SoccarConfig {
        concolic: ConcolicConfig {
            cycles: 16,
            max_rounds: 6,
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    };
    let eval = evaluate_variant(&spec, config)?;
    print!("{}", render_outcomes(&eval));
    println!(
        "\nverification time: {:.2}s ({} rounds, {} solver calls)",
        eval.verification_time().as_secs_f64(),
        eval.report.concolic.rounds,
        eval.report.concolic.solver_calls,
    );
    println!(
        "coverage: {}/{} AR_CFG targets",
        eval.report.concolic.targets_covered, eval.report.concolic.targets_total
    );
    Ok(())
}
