//! Property tests for the deterministic solver portfolio: racing the
//! [`soccar_smt::PORTFOLIO_PROFILES`] over a `check_assuming` query must
//! never change a definite answer — only (at worst, under a budget)
//! upgrade an `Unknown` to a definite one. This is the contract that lets
//! `SOCCAR_PORTFOLIO=1` keep reports byte-identical: the portfolio is a
//! different search order over the same formula, not a different formula.

use proptest::prelude::*;
use soccar_smt::{model_satisfies, BvVal, CheckResult, SolveBudget, Solver, TermGraph, TermId};

/// Builds a small expression over three variables and returns 1-bit goal
/// terms `root == target` for each requested target (the same shape the
/// incremental-solving tests use, so the two contracts cover the same
/// formula family).
fn build_goals(g: &mut TermGraph, width: u32, seeds: &[u64], targets: &[u64]) -> Vec<TermId> {
    let vars: Vec<TermId> = (0..3).map(|i| g.var(format!("v{i}"), width)).collect();
    let mut acc = vars[0];
    for (i, s) in seeds.iter().enumerate() {
        let c = g.constant(BvVal::from_u64(width, *s));
        let mixed = match i % 4 {
            0 => g.add(acc, c),
            1 => g.xor(acc, vars[1]),
            2 => g.mul(acc, c),
            _ => g.and(acc, vars[2]),
        };
        acc = mixed;
    }
    targets
        .iter()
        .map(|t| {
            let c = g.constant(BvVal::from_u64(width, *t));
            g.eq(acc, c)
        })
        .collect()
}

/// Unbudgeted single-profile truth for `hard ∧ set` on a fresh solver.
fn truth(g: &TermGraph, hard: &[TermId], set: &[TermId]) -> CheckResult {
    let mut s = Solver::new();
    for t in hard.iter().chain(set) {
        s.assert(*t);
    }
    s.check(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unlimited budget: the portfolio-raced call must agree in sat-ness
    /// with single-profile solving on every assumption set of a
    /// sequence (same warm context semantics), and its models must
    /// satisfy the formula. Both solvers walk the same set sequence so
    /// retraction and clause reuse are exercised on each side.
    #[test]
    fn portfolio_sequence_agrees_with_single_profile(
        width in 1u32..8,
        seeds in proptest::collection::vec(0u64..128, 1..5),
        targets in proptest::collection::vec(0u64..128, 2..6),
        pin in 0u64..128,
    ) {
        let recorder = soccar_obs::Recorder::disabled();
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);
        let v0 = g.var("v0", width);
        let pin_c = g.constant(BvVal::from_u64(width, pin));
        let hard = g.eq(v0, pin_c);

        let mut single = Solver::new();
        single.assert(hard);
        let mut raced = Solver::new();
        raced.assert(hard);
        for (i, goal) in goals.iter().enumerate() {
            // Alternate single goals with pairs so retraction is covered.
            let set: Vec<TermId> = if i % 2 == 0 {
                vec![*goal]
            } else {
                vec![goals[i - 1], *goal]
            };
            let want = single.check_assuming(&g, &set);
            let got = raced.check_assuming_portfolio_traced(&g, &set, &recorder);
            prop_assert_eq!(
                got.is_sat(),
                want.is_sat(),
                "set {} disagreed: portfolio {:?} vs single-profile {:?}",
                i,
                got,
                want
            );
            if let CheckResult::Sat(model) = &got {
                let mut asserted = vec![hard];
                asserted.extend(&set);
                prop_assert!(model_satisfies(&g, &asserted, model));
            }
        }
    }

    /// Under a per-profile budget the race stays *sound*: a definite
    /// answer must match the unbudgeted truth (never a wrong Sat/Unsat),
    /// and `Unknown` may only appear when a budget is actually
    /// configured — i.e. the portfolio may answer where a single profile
    /// gives up, but must never answer differently.
    #[test]
    fn budgeted_portfolio_is_sound(
        width in 1u32..8,
        seeds in proptest::collection::vec(0u64..128, 1..5),
        targets in proptest::collection::vec(0u64..128, 2..5),
        max_conflicts in 1u64..32,
        max_decisions in 1u64..64,
    ) {
        let budget = SolveBudget {
            max_conflicts: Some(max_conflicts),
            max_decisions: Some(max_decisions),
        };
        let recorder = soccar_obs::Recorder::disabled();
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);

        let mut raced = Solver::with_budget(budget);
        for (i, goal) in goals.iter().enumerate() {
            let set = [*goal];
            let want = truth(&g, &[], &set);
            match raced.check_assuming_portfolio_traced(&g, &set, &recorder) {
                CheckResult::Unknown { reason } => {
                    prop_assert!(!budget.is_unlimited());
                    prop_assert!(reason.contains("budget exhausted"));
                }
                CheckResult::Unsat => prop_assert!(
                    !want.is_sat(),
                    "set {} portfolio Unsat but truth Sat",
                    i
                ),
                CheckResult::Sat(model) => {
                    prop_assert!(want.is_sat(), "set {i} portfolio Sat but truth Unsat");
                    prop_assert!(model_satisfies(&g, &set, &model));
                }
            }
        }
    }

    /// Determinism: the same query sequence on two identically
    /// constructed solvers returns identical results call by call — the
    /// race has no hidden timing dependence.
    #[test]
    fn portfolio_race_is_deterministic(
        width in 1u32..8,
        seeds in proptest::collection::vec(0u64..128, 1..5),
        targets in proptest::collection::vec(0u64..128, 2..5),
        max_conflicts in 1u64..16,
    ) {
        let budget = SolveBudget {
            max_conflicts: Some(max_conflicts),
            max_decisions: None,
        };
        let recorder = soccar_obs::Recorder::disabled();
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);

        // Canonical rendering: Model iterates a HashMap (unspecified
        // order), so sort the assignments before comparing.
        let canon = |r: &CheckResult| match r {
            CheckResult::Sat(m) => {
                let mut vals: Vec<(TermId, String)> =
                    m.iter().map(|(k, v)| (k, format!("{v:?}"))).collect();
                vals.sort();
                format!("Sat({vals:?})")
            }
            other => format!("{other:?}"),
        };
        let mut a = Solver::with_budget(budget);
        let mut b = Solver::with_budget(budget);
        for goal in &goals {
            let set = [*goal];
            let ra = a.check_assuming_portfolio_traced(&g, &set, &recorder);
            let rb = b.check_assuming_portfolio_traced(&g, &set, &recorder);
            prop_assert_eq!(canon(&ra), canon(&rb));
        }
    }
}
