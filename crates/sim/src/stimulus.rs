//! Cycle-level stimulus programs: clocks, input schedules and — the point
//! of this whole reproduction — *asynchronous reset pulses* injected at
//! arbitrary cycles and sub-cycle phases.
//!
//! A [`StimulusProgram`] drives a [`Simulator`] for a number of cycles.
//! Each cycle:
//!
//! 1. input assignments scheduled for this cycle are applied;
//! 2. reset pulses scheduled to *assert* this cycle are applied **before**
//!    the clock edge (asynchronously — the reset-sensitive processes fire
//!    immediately, not at the edge);
//! 3. all clocks tick (rise, settle, fall, settle);
//! 4. pulses scheduled to *deassert* are released after the clock falls;
//! 5. a user callback observes the settled state.

use soccar_rtl::design::NetId;
use soccar_rtl::value::LogicVec;

use crate::algebra::Algebra;
use crate::error::SimResult;
use crate::sim::Simulator;

/// A reset line description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetLine {
    /// The reset net (a top-level input).
    pub net: NetId,
    /// `true` if the reset asserts at logic 0 (`rst_n` style).
    pub active_low: bool,
}

impl ResetLine {
    /// The value that asserts this reset.
    #[must_use]
    pub fn assert_value(&self) -> LogicVec {
        LogicVec::from_u64(1, u64::from(!self.active_low))
    }

    /// The value that deasserts this reset.
    #[must_use]
    pub fn deassert_value(&self) -> LogicVec {
        LogicVec::from_u64(1, u64::from(self.active_low))
    }
}

/// An asynchronous reset pulse: asserted before the clock edge of
/// `at_cycle`, held for `hold_cycles` full cycles, then released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetPulse {
    /// Which reset line.
    pub line: ResetLine,
    /// Cycle at which the pulse asserts.
    pub at_cycle: u64,
    /// Number of cycles the reset is held asserted (0 = glitch pulse that
    /// releases within the same cycle).
    pub hold_cycles: u64,
}

/// A scheduled input assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputEvent {
    /// Cycle at which to apply.
    pub at_cycle: u64,
    /// Target net (top-level input).
    pub net: NetId,
    /// Value to drive.
    pub value: LogicVec,
}

/// A complete cycle-level stimulus description.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soccar_sim::{InitPolicy, Simulator};
/// use soccar_sim::stimulus::{ResetLine, StimulusProgram};
/// use soccar_rtl::LogicVec;
///
/// let (design, _) = soccar_rtl::compile("c.v", "
///   module c(input clk, input rst_n, output reg [3:0] q);
///     always @(posedge clk or negedge rst_n)
///       if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
///   endmodule", "c")?;
/// let clk = design.find_net("c.clk").expect("clk");
/// let rst = design.find_net("c.rst_n").expect("rst");
///
/// let mut program = StimulusProgram::new(vec![clk]);
/// let line = ResetLine { net: rst, active_low: true };
/// program.pulse_reset(line, 0, 1);   // reset at start
/// program.pulse_reset(line, 5, 0);   // async glitch at cycle 5
///
/// let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
/// let q = design.find_net("c.q").expect("q");
/// let mut trail = Vec::new();
/// program.run(&mut sim, 8, |s, _cycle| {
///     trail.push(s.net_logic(q).to_u64());
///     Ok(())
/// })?;
/// assert_eq!(trail[4], Some(4));   // counted up after the initial reset
/// assert_eq!(trail[5], Some(1));   // glitch cleared q, then the edge counted
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct StimulusProgram {
    clocks: Vec<NetId>,
    pulses: Vec<ResetPulse>,
    inputs: Vec<InputEvent>,
}

impl StimulusProgram {
    /// Creates a program toggling the given clocks every cycle.
    #[must_use]
    pub fn new(clocks: Vec<NetId>) -> StimulusProgram {
        StimulusProgram {
            clocks,
            pulses: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// The clocks driven by this program.
    #[must_use]
    pub fn clocks(&self) -> &[NetId] {
        &self.clocks
    }

    /// Scheduled reset pulses.
    #[must_use]
    pub fn pulses(&self) -> &[ResetPulse] {
        &self.pulses
    }

    /// Schedules an asynchronous reset pulse.
    pub fn pulse_reset(&mut self, line: ResetLine, at_cycle: u64, hold_cycles: u64) {
        self.pulses.push(ResetPulse {
            line,
            at_cycle,
            hold_cycles,
        });
    }

    /// Schedules an input assignment.
    pub fn set_input(&mut self, at_cycle: u64, net: NetId, value: LogicVec) {
        self.inputs.push(InputEvent {
            at_cycle,
            net,
            value,
        });
    }

    /// Runs the program for `cycles` cycles, invoking `observe` with the
    /// settled simulator at the end of each cycle.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (unstable design, bad input net, or an
    /// error returned by `observe`).
    pub fn run<A: Algebra>(
        &self,
        sim: &mut Simulator<'_, A>,
        cycles: u64,
        mut observe: impl FnMut(&mut Simulator<'_, A>, u64) -> SimResult<()>,
    ) -> SimResult<()> {
        // Deassert every reset line and park clocks low before starting.
        for p in &self.pulses {
            sim.write_input(p.line.net, p.line.deassert_value())?;
        }
        for clk in &self.clocks {
            sim.write_input(*clk, LogicVec::from_u64(1, 0))?;
        }
        sim.settle()?;
        for cycle in 0..cycles {
            for ev in self.inputs.iter().filter(|e| e.at_cycle == cycle) {
                sim.write_input(ev.net, ev.value.clone())?;
            }
            // Asynchronous assertion: before any clock edge this cycle.
            for p in self.pulses.iter().filter(|p| p.at_cycle == cycle) {
                sim.write_input(p.line.net, p.line.assert_value())?;
            }
            sim.settle()?;
            // Zero-hold pulses release before the clock edge: a pure
            // asynchronous glitch.
            for p in self
                .pulses
                .iter()
                .filter(|p| p.at_cycle == cycle && p.hold_cycles == 0)
            {
                sim.write_input(p.line.net, p.line.deassert_value())?;
            }
            sim.settle()?;
            for clk in &self.clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 1))?;
            }
            sim.settle()?;
            sim.advance_time(1);
            for clk in &self.clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 0))?;
            }
            sim.settle()?;
            sim.advance_time(1);
            // Held pulses release after their hold elapses.
            for p in self
                .pulses
                .iter()
                .filter(|p| p.hold_cycles > 0 && p.at_cycle + p.hold_cycles == cycle + 1)
            {
                sim.write_input(p.line.net, p.line.deassert_value())?;
            }
            sim.settle()?;
            observe(sim, cycle)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::InitPolicy;

    fn counter_design() -> soccar_rtl::Design {
        soccar_rtl::compile(
            "c.v",
            "module c(input clk, input rst_n, output reg [7:0] q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 8'd0; else q <= q + 8'd1;
             endmodule",
            "c",
        )
        .expect("compile")
        .0
    }

    #[test]
    fn reset_pulse_mid_run_clears_counter() {
        let d = counter_design();
        let clk = d.find_net("c.clk").expect("clk");
        let rst = d.find_net("c.rst_n").expect("rst");
        let q = d.find_net("c.q").expect("q");
        let line = ResetLine {
            net: rst,
            active_low: true,
        };
        let mut prog = StimulusProgram::new(vec![clk]);
        prog.pulse_reset(line, 0, 1);
        prog.pulse_reset(line, 6, 2);
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let mut values = Vec::new();
        prog.run(&mut sim, 12, |s, _| {
            values.push(s.net_logic(q).to_u64().expect("known"));
            Ok(())
        })
        .expect("run");
        // Cycle 0 is under reset; counting resumes cycle 1.
        assert_eq!(&values[0..6], &[0, 1, 2, 3, 4, 5]);
        // Cycles 6..7 under the second reset (held 2 cycles).
        assert_eq!(values[6], 0);
        assert_eq!(values[7], 0);
        // Counting resumes after release.
        assert_eq!(&values[8..12], &[1, 2, 3, 4]);
    }

    #[test]
    fn zero_hold_glitch_is_asynchronous() {
        let d = counter_design();
        let clk = d.find_net("c.clk").expect("clk");
        let rst = d.find_net("c.rst_n").expect("rst");
        let q = d.find_net("c.q").expect("q");
        let line = ResetLine {
            net: rst,
            active_low: true,
        };
        let mut prog = StimulusProgram::new(vec![clk]);
        prog.pulse_reset(line, 0, 1);
        prog.pulse_reset(line, 4, 0); // glitch: asserts and releases pre-edge
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let mut values = Vec::new();
        prog.run(&mut sim, 6, |s, _| {
            values.push(s.net_logic(q).to_u64().expect("known"));
            Ok(())
        })
        .expect("run");
        // The glitch cleared q asynchronously; the cycle-4 posedge then
        // counted 0 → 1 (reset already released before the edge).
        assert_eq!(values[3], 3);
        assert_eq!(values[4], 1);
        assert_eq!(values[5], 2);
    }

    #[test]
    fn input_events_apply_at_cycle() {
        let d = soccar_rtl::compile(
            "t.v",
            "module t(input clk, input [7:0] d, output reg [7:0] q);
               always @(posedge clk) q <= d;
             endmodule",
            "t",
        )
        .expect("compile")
        .0;
        let clk = d.find_net("t.clk").expect("clk");
        let din = d.find_net("t.d").expect("d");
        let q = d.find_net("t.q").expect("q");
        let mut prog = StimulusProgram::new(vec![clk]);
        prog.set_input(0, din, LogicVec::from_u64(8, 11));
        prog.set_input(2, din, LogicVec::from_u64(8, 22));
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let mut values = Vec::new();
        prog.run(&mut sim, 4, |s, _| {
            values.push(s.net_logic(q).to_u64().expect("known"));
            Ok(())
        })
        .expect("run");
        assert_eq!(values, vec![11, 11, 22, 22]);
    }

    #[test]
    fn reset_line_polarity() {
        let hi = ResetLine {
            net: NetId(0),
            active_low: false,
        };
        assert_eq!(hi.assert_value().to_u64(), Some(1));
        assert_eq!(hi.deassert_value().to_u64(), Some(0));
        let lo = ResetLine {
            net: NetId(0),
            active_low: true,
        };
        assert_eq!(lo.assert_value().to_u64(), Some(0));
        assert_eq!(lo.deassert_value().to_u64(), Some(1));
    }
}
