//! The security regression ("Restricts") shipped with each benchmark SoC.
//!
//! Per the paper, such constraints "are generally available as part of the
//! security regression in industrial practice" — they come with the *base*
//! design and are identical across variants; the blue-team tool knows them
//! but not the bugs. The `soccar` crate converts these neutral specs into
//! `soccar-concolic` properties.

use crate::bugs::{BugInstance, SocModel, ViolationType};

/// What a check asserts (a neutral mirror of the concolic property kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckKind {
    /// While the domain reset is asserted, the signal must equal zero.
    SecretCleared {
        /// Hierarchical signal name.
        signal: String,
        /// Signal width.
        width: u32,
    },
    /// While the domain reset is asserted, the signal must be non-zero.
    GuardArmed {
        /// Hierarchical signal name.
        signal: String,
    },
    /// The signal must always hold one of the listed values.
    LegalValues {
        /// Hierarchical signal name.
        signal: String,
        /// Signal width.
        width: u32,
        /// Allowed encodings.
        allowed: Vec<u64>,
    },
    /// The (1-bit) observation point must never read 1.
    NeverFlagged {
        /// Hierarchical signal name.
        signal: String,
    },
}

/// One security check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSpec {
    /// Unique check name.
    pub name: String,
    /// Module blamed when the check fires.
    pub module: String,
    /// Hierarchical name of the governing reset domain source (top input).
    pub domain: String,
    /// The assertion.
    pub kind: CheckKind,
}

fn crypto_checks(top: &str, prefix: &str, domain: &str, engines: &[&str]) -> Vec<CheckSpec> {
    let mut out = Vec::new();
    for e in engines {
        let inst = format!("{top}.{prefix}u_{e}");
        out.push(CheckSpec {
            name: format!("{e}-key-cleared"),
            module: (*e).to_owned(),
            domain: format!("{top}.{domain}"),
            kind: CheckKind::SecretCleared {
                signal: format!("{inst}.key_reg"),
                width: 192,
            },
        });
        out.push(CheckSpec {
            name: format!("{e}-pt-cleared"),
            module: (*e).to_owned(),
            domain: format!("{top}.{domain}"),
            kind: CheckKind::SecretCleared {
                signal: format!("{inst}.pt_reg"),
                width: 64,
            },
        });
        out.push(CheckSpec {
            name: format!("{e}-no-leak"),
            module: (*e).to_owned(),
            domain: format!("{top}.{domain}"),
            kind: CheckKind::NeverFlagged {
                signal: format!("{inst}.leak_obs"),
            },
        });
    }
    out
}

fn guard_check(name: &str, module: &str, domain: &str, signal: &str) -> CheckSpec {
    CheckSpec {
        name: name.to_owned(),
        module: module.to_owned(),
        domain: domain.to_owned(),
        kind: CheckKind::GuardArmed {
            signal: signal.to_owned(),
        },
    }
}

fn priv_check(name: &str, module: &str, domain: &str, signal: &str) -> CheckSpec {
    CheckSpec {
        name: name.to_owned(),
        module: module.to_owned(),
        domain: domain.to_owned(),
        kind: CheckKind::LegalValues {
            signal: signal.to_owned(),
            width: 2,
            allowed: vec![0b00, 0b01, 0b11],
        },
    }
}

/// The security regression of a benchmark SoC (variant-independent).
#[must_use]
pub fn security_checks(model: SocModel) -> Vec<CheckSpec> {
    match model {
        SocModel::ClusterSoc => {
            let t = "cluster_soc";
            let mut out =
                crypto_checks(t, "", "crypto_rst_n", &["sha256", "des3", "aes192", "md5"]);
            out.push(guard_check(
                "sram0-guard-armed",
                "sram_sp",
                "cluster_soc.mem_rst_n",
                "cluster_soc.u_sram0.prot_en",
            ));
            out.push(guard_check(
                "sram1-guard-armed",
                "sram_dp",
                "cluster_soc.mem_rst_n",
                "cluster_soc.u_sram1.prot_en",
            ));
            out.push(guard_check(
                "scratch-guard-armed",
                "sram_sp",
                "cluster_soc.mem_rst_n",
                "cluster_soc.u_scratch.prot_en",
            ));
            out.push(guard_check(
                "bus-mask-armed",
                "wb_fabric",
                "cluster_soc.sys_rst_n",
                "cluster_soc.u_bus.prot_mask",
            ));
            out.push(priv_check(
                "cpu0-priv-legal",
                "rv32i_core",
                "cluster_soc.sys_rst_n",
                "cluster_soc.u_cpu0.priv_mode",
            ));
            out.push(priv_check(
                "cpu1-priv-legal",
                "rv32e_core",
                "cluster_soc.sys_rst_n",
                "cluster_soc.u_cpu1.priv_mode",
            ));
            out
        }
        SocModel::AutoSoc => {
            let t = "auto_soc";
            let mut out = crypto_checks(
                t,
                "u_crypto.",
                "crypto_rst_n",
                &["aes192", "sha256", "md5", "des3", "rsa"],
            );
            out.push(guard_check(
                "mem-sram0-guard-armed",
                "sram_sp",
                "auto_soc.mem_rst_n",
                "auto_soc.u_mem.u_sram0.prot_en",
            ));
            out.push(guard_check(
                "mem-sram1-guard-armed",
                "sram_dp",
                "auto_soc.mem_rst_n",
                "auto_soc.u_mem.u_sram1.prot_en",
            ));
            out.push(guard_check(
                "dma-desc-lock-armed",
                "dma_engine",
                "auto_soc.mem_rst_n",
                "auto_soc.u_mem.u_dma.desc_lock",
            ));
            out.push(guard_check(
                "cpu-fabric-mask-armed",
                "wb_cpu_fabric",
                "auto_soc.cpu_rst_n",
                "auto_soc.u_cpu.u_fabric.prot_mask",
            ));
            out.push(guard_check(
                "mem-fabric-mask-armed",
                "wb_mem_fabric",
                "auto_soc.mem_rst_n",
                "auto_soc.u_mem.u_fabric.prot_mask",
            ));
            out.push(priv_check(
                "core0-priv-legal",
                "rv32i_core",
                "auto_soc.cpu_rst_n",
                "auto_soc.u_cpu.u_core0.priv_mode",
            ));
            out.push(priv_check(
                "core1-priv-legal",
                "rv32ic_core",
                "auto_soc.cpu_rst_n",
                "auto_soc.u_cpu.u_core1.priv_mode",
            ));
            out.push(priv_check(
                "core2-priv-legal",
                "rv32im_core",
                "auto_soc.cpu_rst_n",
                "auto_soc.u_cpu.u_core2.priv_mode",
            ));
            out
        }
    }
}

/// The check names whose violation indicates detection of `bug` on
/// `model` (used by the evaluation harness to score detection).
#[must_use]
pub fn expected_detectors(model: SocModel, bug: &BugInstance) -> Vec<String> {
    match bug.violation {
        ViolationType::InformationLeakage => {
            if bug.implicit {
                // The implicit construct keeps the scrubbing intact; only
                // the leak observation point can see it.
                vec![format!("{}-no-leak", bug.ip)]
            } else {
                vec![
                    format!("{}-key-cleared", bug.ip),
                    format!("{}-pt-cleared", bug.ip),
                ]
            }
        }
        ViolationType::DataIntegrity => match (model, bug.ip.as_str()) {
            (SocModel::ClusterSoc, "sram_sp") => vec![
                "sram0-guard-armed".to_owned(),
                "scratch-guard-armed".to_owned(),
            ],
            (SocModel::ClusterSoc, "sram_dp") => vec!["sram1-guard-armed".to_owned()],
            (SocModel::ClusterSoc, "wb_fabric") => vec!["bus-mask-armed".to_owned()],
            (SocModel::AutoSoc, "sram_sp") => vec!["mem-sram0-guard-armed".to_owned()],
            (SocModel::AutoSoc, "sram_dp") => vec!["mem-sram1-guard-armed".to_owned()],
            (SocModel::AutoSoc, "dma_engine") => vec!["dma-desc-lock-armed".to_owned()],
            (SocModel::AutoSoc, "wb_fabric") => vec![
                "cpu-fabric-mask-armed".to_owned(),
                "mem-fabric-mask-armed".to_owned(),
            ],
            _ => Vec::new(),
        },
        ViolationType::PrivilegeMode => match (model, bug.ip.as_str()) {
            (SocModel::ClusterSoc, "rv32i_core") => vec!["cpu0-priv-legal".to_owned()],
            (SocModel::ClusterSoc, "rv32e_core") => vec!["cpu1-priv-legal".to_owned()],
            (SocModel::AutoSoc, "rv32i_core") => vec!["core0-priv-legal".to_owned()],
            (SocModel::AutoSoc, "rv32ic_core") => vec!["core1-priv-legal".to_owned()],
            (SocModel::AutoSoc, "rv32im_core") => vec!["core2-priv-legal".to_owned()],
            _ => Vec::new(),
        },
    }
}

/// The top-level data inputs the concolic engine should treat
/// symbolically for a benchmark SoC (the test access port).
#[must_use]
pub fn symbolic_inputs(model: SocModel) -> Vec<String> {
    match model {
        SocModel::ClusterSoc => vec![
            "cluster_soc.tst_key".to_owned(),
            "cluster_soc.tst_pt".to_owned(),
            "cluster_soc.tst_start".to_owned(),
        ],
        SocModel::AutoSoc => vec![
            "auto_soc.tst_key".to_owned(),
            "auto_soc.tst_pt".to_owned(),
            "auto_soc.tst_start".to_owned(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::{variant, variants};

    #[test]
    fn checks_resolve_against_the_designs() {
        for (model, generate) in [
            (
                SocModel::ClusterSoc,
                crate::cluster::generate
                    as fn(Option<&crate::bugs::VariantSpec>) -> crate::SocDesign,
            ),
            (SocModel::AutoSoc, crate::auto::generate),
        ] {
            let design = generate(None);
            let (d, _) =
                soccar_rtl::compile("soc.v", &design.source, &design.top).expect("compile");
            for check in security_checks(model) {
                let signal = match &check.kind {
                    CheckKind::SecretCleared { signal, .. }
                    | CheckKind::GuardArmed { signal }
                    | CheckKind::LegalValues { signal, .. }
                    | CheckKind::NeverFlagged { signal } => signal,
                };
                assert!(
                    d.find_net(signal).is_some(),
                    "{model:?}: check `{}` references missing `{signal}`",
                    check.name
                );
                assert!(
                    d.find_net(&check.domain).is_some(),
                    "{model:?}: check `{}` references missing domain `{}`",
                    check.name,
                    check.domain
                );
            }
            for name in symbolic_inputs(model) {
                assert!(d.find_net(&name).is_some(), "missing input {name}");
            }
        }
    }

    #[test]
    fn every_bug_has_detectors_in_the_check_set() {
        for v in variants() {
            let names: Vec<String> = security_checks(v.soc).into_iter().map(|c| c.name).collect();
            for bug in &v.bugs {
                let det = expected_detectors(v.soc, bug);
                assert!(!det.is_empty(), "{}: bug {bug:?} has no detector", v.name());
                for d in &det {
                    assert!(
                        names.contains(d),
                        "{}: detector `{d}` not in the regression",
                        v.name()
                    );
                }
            }
        }
    }

    #[test]
    fn implicit_bug_detected_only_by_leak_observation() {
        let v = variant(SocModel::AutoSoc, 2).expect("variant");
        let sha = v.bugs.iter().find(|b| b.implicit).expect("implicit bug");
        assert_eq!(
            expected_detectors(v.soc, sha),
            vec!["sha256-no-leak".to_owned()]
        );
    }

    #[test]
    fn check_counts() {
        // ClusterSoC: 4 engines × 3 + 3 sram + 1 bus + 2 cores = 18.
        assert_eq!(security_checks(SocModel::ClusterSoc).len(), 18);
        // AutoSoC: 5 engines × 3 + 3 mem + 2 fabric + 3 cores = 23.
        assert_eq!(security_checks(SocModel::AutoSoc).len(), 23);
    }
}
