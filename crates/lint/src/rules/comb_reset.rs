//! `combinational-reset-gen` — a reset derived from combinational logic.
//!
//! A reset produced by an `assign` or a combinational `always` block can
//! glitch while its input cone settles; consumed asynchronously, every
//! glitch is a spurious reset pulse. Resets should be registered (and
//! their release synchronized — see `async-reset-unsynchronized`).

use std::collections::BTreeSet;

use soccar_cfg::assigned_signals;

use crate::context::LintContext;
use crate::diagnostic::{Diagnostic, Severity};
use crate::rules::{lhs_base_names, LintRule};

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CombinationalResetGen;

impl LintRule for CombinationalResetGen {
    fn id(&self) -> &'static str {
        "combinational-reset-gen"
    }

    fn description(&self) -> &'static str {
        "reset signal driven by combinational logic (assign or always @*)"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for view in &ctx.modules {
            // Reset sinks: consumed asynchronously here, or forwarded to a
            // port the child module identifies as a reset.
            let mut sinks: BTreeSet<String> = view
                .module
                .always_blocks()
                .flat_map(|b| view.async_resets_of(b))
                .map(|i| i.signal.clone())
                .collect();
            if let Some(profile) = ctx.profile(&view.module.name) {
                sinks.extend(
                    profile
                        .children
                        .iter()
                        .flat_map(|c| &c.reset_conns)
                        .filter_map(|conn| conn.actual.clone()),
                );
            }
            if sinks.is_empty() {
                continue;
            }
            for (lhs, _, span) in view.module.assigns() {
                let mut bases = Vec::new();
                lhs_base_names(lhs, &mut bases);
                for base in bases {
                    if sinks.contains(&base) {
                        out.push(Diagnostic::new(
                            self.id(),
                            self.default_severity(),
                            &view.module.name,
                            span,
                            format!(
                                "reset `{base}` is driven by a continuous assignment; \
                                 combinational glitches become spurious asynchronous \
                                 reset pulses"
                            ),
                        ));
                    }
                }
            }
            for block in view.module.always_blocks() {
                if !block.is_combinational() {
                    continue;
                }
                for signal in assigned_signals(&block.body) {
                    if sinks.contains(&signal) {
                        out.push(Diagnostic::new(
                            self.id(),
                            self.default_severity(),
                            &view.module.name,
                            block.span,
                            format!(
                                "reset `{signal}` is driven by a combinational always \
                                 block; combinational glitches become spurious \
                                 asynchronous reset pulses"
                            ),
                        ));
                    }
                }
            }
        }
    }
}
