//! # soccar-smt
//!
//! A from-scratch bit-vector constraint solver for the SoCCAR reproduction.
//! SoCCAR's Algorithm 3 "solves the constraints on clock edge and reset
//! signal" after transforming them into equivalences (`posedge clk` →
//! `clk == 1`, `if (~reset)` → `reset == 0`); this crate is the solver that
//! discharges those formulas, with no external SMT dependency:
//!
//! * [`TermGraph`] — hash-consed bit-vector terms with constructor-time
//!   rewriting ([`term`]);
//! * [`bitblast::BitBlaster`] — Tseitin encoding into CNF via gate-level
//!   circuits (ripple-carry adders, barrel shifters, restoring dividers);
//! * [`sat::SatSolver`] — CDCL with two-watched literals, 1UIP learning,
//!   VSIDS, phase saving and Luby restarts;
//! * [`Solver`] — the word-level front-end returning total [`Model`]s.
//!
//! # Examples
//!
//! ```
//! use soccar_smt::{CheckResult, Solver, TermGraph};
//!
//! // "Find an input that makes the reset-governed branch reachable":
//! // (state == BUSY) && (rst_n == 0)
//! let mut g = TermGraph::new();
//! let state = g.var("state", 3);
//! let rst_n = g.var("rst_n", 1);
//! let busy = g.const_u64(3, 5);
//! let zero = g.const_u64(1, 0);
//! let c1 = g.eq(state, busy);
//! let c2 = g.eq(rst_n, zero);
//! let goal = g.and(c1, c2);
//!
//! let mut solver = Solver::new();
//! solver.assert(goal);
//! assert!(solver.check(&g).is_sat());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitblast;
pub mod bv;
pub mod sat;
pub mod solver;
pub mod term;

pub use bv::BvVal;
pub use sat::{SolveBudget, SolverProfile};
pub use solver::{
    model_satisfies, BlastContext, CheckResult, Model, SolveStats, Solver, PORTFOLIO_PROFILES,
};
pub use term::{Term, TermGraph, TermId};
