//! Structural topology dumps — the data behind the paper's **Figure 2**
//! block diagrams.
//!
//! Rendered from the elaborated design, so the dump always reflects the
//! RTL that was actually generated (instances, module kinds, reset-domain
//! membership).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use soccar_rtl::Design;

use crate::catalog::{classify, IpClass};

/// One IP block of the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Hierarchical instance path.
    pub instance: String,
    /// Module name.
    pub module: String,
    /// IP class, when classified.
    pub class: Option<IpClass>,
}

/// A structural summary of one SoC.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Top module name.
    pub top: String,
    /// Blocks grouped by their parent subsystem path (`top` for flat).
    pub subsystems: BTreeMap<String, Vec<Block>>,
    /// Reset-domain inputs of the top module.
    pub reset_inputs: Vec<String>,
}

impl Topology {
    /// Extracts the topology from an elaborated design.
    #[must_use]
    pub fn of(design: &Design) -> Topology {
        let mut subsystems: BTreeMap<String, Vec<Block>> = BTreeMap::new();
        for inst in design.instances().iter().skip(1) {
            let parent = inst
                .name
                .rsplit_once('.')
                .map_or_else(|| design.top_module.clone(), |(p, _)| p.to_owned());
            subsystems.entry(parent).or_default().push(Block {
                instance: inst.name.clone(),
                module: inst.module.clone(),
                class: classify(&inst.module),
            });
        }
        let reset_inputs = design
            .top_inputs()
            .map(|n| design.net(n).local_name.clone())
            .filter(|n| n.contains("rst"))
            .collect();
        Topology {
            top: design.top_module.clone(),
            subsystems,
            reset_inputs,
        }
    }

    /// Total number of IP blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.subsystems.values().map(Vec::len).sum()
    }

    /// Renders an ASCII block diagram (the Figure 2 stand-in).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "┌─ {} ─ {} blocks", self.top, self.block_count());
        let _ = writeln!(out, "│ reset domains: {}", self.reset_inputs.join(", "));
        for (parent, blocks) in &self.subsystems {
            let _ = writeln!(out, "├─ {parent}");
            for b in blocks {
                let class = b.class.map_or("-", IpClass::name);
                let leaf = b.instance.rsplit('.').next().unwrap_or(&b.instance);
                let _ = writeln!(out, "│   {leaf:<14} {:<16} [{class}]", b.module);
            }
        }
        out.push('└');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topology_of(design: &crate::SocDesign) -> Topology {
        let (d, _) = soccar_rtl::compile("t.v", &design.source, &design.top).expect("compile");
        Topology::of(&d)
    }

    #[test]
    fn cluster_topology_is_flat_with_four_domains() {
        let t = topology_of(&crate::cluster::generate(None));
        assert_eq!(t.top, "cluster_soc");
        assert_eq!(t.subsystems.len(), 1, "flat hierarchy");
        assert_eq!(t.reset_inputs.len(), 4);
        assert!(t.block_count() >= 16);
        let render = t.render();
        assert!(render.contains("u_aes192"));
        assert!(render.contains("Cryptographic IP"));
    }

    #[test]
    fn auto_topology_is_hierarchical_with_six_domains() {
        let t = topology_of(&crate::auto::generate(None));
        assert_eq!(t.reset_inputs.len(), 6);
        // Subsystem grouping: top plus five subsystem containers.
        assert!(t.subsystems.len() >= 6, "{:?}", t.subsystems.keys());
        assert!(t.block_count() > topology_of(&crate::cluster::generate(None)).block_count());
        let render = t.render();
        assert!(render.contains("auto_soc.u_crypto"));
        assert!(render.contains("u_rsa"));
    }
}
