//! Helpers for the `soccar` command-line tool (kept in the library so the
//! property-spec grammar is unit-tested).
//!
//! Property specs are colon-separated:
//!
//! * `cleared:<name>:<module>:<domain>:<signal>:<width>`
//! * `armed:<name>:<module>:<domain>:<signal>`
//! * `oneof:<name>:<module>:<signal>:<width>:<v1|v2|…>`
//! * `neverflag:<name>:<module>:<signal>`

use soccar_concolic::{PropertyKind, SecurityProperty};
use soccar_rtl::LogicVec;

/// Parses a decimal or `0x`-prefixed value into a `width`-bit vector.
///
/// # Errors
///
/// Returns a message when the number does not parse.
pub fn parse_value(s: &str, width: u32) -> Result<LogicVec, String> {
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())?
    } else {
        s.parse::<u64>().map_err(|e| e.to_string())?
    };
    Ok(LogicVec::from_u64(width, v))
}

/// Parses one property spec (see module docs for the grammar).
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn parse_property(spec: &str) -> Result<SecurityProperty, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let need = |n: usize| -> Result<(), String> {
        if parts.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{spec}`: expected {n} fields, got {}",
                parts.len()
            ))
        }
    };
    let kind = match parts.first().copied() {
        Some("cleared") => {
            need(6)?;
            let width: u32 = parts[5].parse().map_err(|e| format!("width: {e}"))?;
            PropertyKind::ClearedAfterReset {
                domain: parts[3].to_owned(),
                signal: parts[4].to_owned(),
                expected: LogicVec::zeros(width),
                window: 0,
            }
        }
        Some("armed") => {
            need(5)?;
            PropertyKind::AssertedAfterReset {
                domain: parts[3].to_owned(),
                signal: parts[4].to_owned(),
                window: 0,
            }
        }
        Some("oneof") => {
            need(6)?;
            let width: u32 = parts[4].parse().map_err(|e| format!("width: {e}"))?;
            let allowed = parts[5]
                .split('|')
                .map(|v| parse_value(v, width))
                .collect::<Result<Vec<_>, _>>()?;
            PropertyKind::AlwaysOneOf {
                signal: parts[3].to_owned(),
                allowed,
            }
        }
        Some("neverflag") => {
            need(4)?;
            PropertyKind::AlwaysOneOf {
                signal: parts[3].to_owned(),
                allowed: vec![LogicVec::zeros(1)],
            }
        }
        other => return Err(format!("unknown property kind {other:?}")),
    };
    Ok(SecurityProperty {
        name: parts[1].to_owned(),
        module: parts[2].to_owned(),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleared_spec() {
        let p = parse_property("cleared:key:aes:top.rst_n:top.u.key:32").expect("parse");
        assert_eq!(p.name, "key");
        assert_eq!(p.module, "aes");
        match p.kind {
            PropertyKind::ClearedAfterReset {
                domain,
                signal,
                expected,
                window,
            } => {
                assert_eq!(domain, "top.rst_n");
                assert_eq!(signal, "top.u.key");
                assert_eq!(expected.width(), 32);
                assert_eq!(window, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn armed_spec() {
        let p = parse_property("armed:g:sram:top.rst:top.u.prot").expect("parse");
        assert!(matches!(p.kind, PropertyKind::AssertedAfterReset { .. }));
    }

    #[test]
    fn oneof_spec_with_hex() {
        let p = parse_property("oneof:priv:core:top.u.priv:2:0|1|0x3").expect("parse");
        match p.kind {
            PropertyKind::AlwaysOneOf { allowed, .. } => {
                let vals: Vec<Option<u64>> =
                    allowed.iter().map(soccar_rtl::LogicVec::to_u64).collect();
                assert_eq!(vals, vec![Some(0), Some(1), Some(3)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn neverflag_spec() {
        let p = parse_property("neverflag:leak:aes:top.u.leak_obs").expect("parse");
        match p.kind {
            PropertyKind::AlwaysOneOf { allowed, .. } => {
                assert_eq!(allowed.len(), 1);
                assert!(allowed[0].is_all_zero());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_specs_rejected() {
        assert!(parse_property("cleared:too:few").is_err());
        assert!(parse_property("bogus:a:b:c").is_err());
        assert!(parse_property("cleared:k:m:d:s:notanumber").is_err());
        assert!(parse_property("oneof:p:m:s:2:zz").is_err());
        assert!(parse_property("").is_err());
    }

    #[test]
    fn value_parsing() {
        assert_eq!(parse_value("42", 8).expect("dec").to_u64(), Some(42));
        assert_eq!(parse_value("0xff", 8).expect("hex").to_u64(), Some(0xFF));
        assert!(parse_value("nope", 8).is_err());
    }
}
