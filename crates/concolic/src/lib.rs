//! # soccar-concolic
//!
//! The reset-aware concolic testing engine of the SoCCAR reproduction —
//! the paper's Algorithm 3:
//!
//! * [`coalg`] — the co-simulation algebra pairing concrete 4-state values
//!   with symbolic bit-vector terms and logging branch observations;
//! * [`schedule`] — cycle-indexed test schedules (reset pulses + symbolic
//!   data inputs), randomized for round 1 and rebuilt from solver models;
//! * [`property`] — the security "Restricts" checked every cycle, emitting
//!   invalidation messages that name the violating module;
//! * [`engine`] — the round loop: co-simulate, check properties, measure
//!   AR_CFG event coverage, flip uncovered branches through the solver,
//!   and sweep asynchronous reset pulses across the cycle space.
//!
//! # Examples
//!
//! See [`engine::ConcolicEngine`] and the crate-level integration tests;
//! the typical entry point is the `soccar` crate's pipeline, which wires
//! extraction, binding and this engine together.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coalg;
pub mod engine;
pub mod property;
pub mod schedule;

pub use coalg::{BranchObservation, CheckObservation, CoAlgebra, CoValue};
pub use engine::{
    incremental_default, portfolio_default, ConcolicConfig, ConcolicEngine, ConcolicReport,
    FlipWorkload, WarmBlastPool, Witness,
};
pub use property::{PropertyKind, PropertyMonitor, SecurityProperty, Violation};
pub use schedule::{InputTrack, ResetTrack, TestSchedule};
