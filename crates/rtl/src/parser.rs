//! Recursive-descent parser for the Verilog subset.
//!
//! Grammar highlights:
//!
//! * ANSI-style module headers with `#(parameter ...)` lists.
//! * `wire`/`reg`/`integer` declarations with packed ranges, memory
//!   dimensions and wire initializers.
//! * `assign`, `always @(...)`, `initial`, and named-connection module
//!   instantiation with parameter overrides.
//! * Statements: `begin/end`, `if/else`, `case/casez/casex`, bounded
//!   `for`, blocking and non-blocking assignments (including concatenated
//!   lvalues), null statements, and ignored system tasks.
//! * Full operator-precedence expression parsing (Pratt), concatenation,
//!   replication, bit/part/indexed-part selects and the ternary operator.
//!
//! Constructs outside the subset produce [`RtlErrorKind::Unsupported`]
//! diagnostics rather than silently misparsing.

use crate::ast::*;
use crate::error::{RtlError, RtlErrorKind, RtlResult};
use crate::lexer::lex;
use crate::span::{FileId, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Parses the Verilog `text` of `file` into a [`SourceUnit`].
///
/// # Errors
///
/// Returns the first lexical or syntax error encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), soccar_rtl::error::RtlError> {
/// use soccar_rtl::parser::parse;
/// use soccar_rtl::span::FileId;
///
/// let unit = parse(FileId(0), "module t(input wire a, output wire b);
///   assign b = ~a;
/// endmodule")?;
/// assert_eq!(unit.modules.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(file: FileId, text: &str) -> RtlResult<SourceUnit> {
    parse_traced(file, text, &soccar_obs::Recorder::disabled())
}

/// [`parse`] under an observability recorder: one `rtl.parse` span with
/// source size and module count, plus `rtl.tokens` / `rtl.modules`
/// counters.
///
/// # Errors
///
/// As [`parse`].
pub fn parse_traced(
    file: FileId,
    text: &str,
    recorder: &soccar_obs::Recorder,
) -> RtlResult<SourceUnit> {
    let mut span = soccar_obs::span!(recorder, "rtl.parse", bytes = text.len());
    let tokens = lex(file, text)?;
    recorder.counter_add("rtl.tokens", tokens.len() as u64);
    let unit = Parser { tokens, pos: 0 }.source_unit()?;
    recorder.counter_add("rtl.modules", unit.modules.len() as u64);
    span.record("modules", unit.modules.len());
    Ok(unit)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> RtlError {
        RtlError::new(RtlErrorKind::Parse, msg, self.span())
    }

    fn unsupported(&self, msg: impl Into<String>) -> RtlError {
        RtlError::new(RtlErrorKind::Unsupported, msg, self.span())
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> RtlResult<Span> {
        if *self.peek() == TokenKind::Punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> RtlResult<Span> {
        if *self.peek() == TokenKind::Keyword(k) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{}`, found {}", k.as_str(), self.peek())))
        }
    }

    fn expect_ident(&mut self) -> RtlResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn source_unit(&mut self) -> RtlResult<SourceUnit> {
        let mut modules = Vec::new();
        while *self.peek() != TokenKind::Eof {
            modules.push(self.module()?);
        }
        Ok(SourceUnit { modules })
    }

    fn module(&mut self) -> RtlResult<Module> {
        let start = self.expect_keyword(Keyword::Module)?;
        let (name, _) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat_punct(Punct::Hash) {
            self.expect_punct(Punct::LParen)?;
            loop {
                // `parameter` keyword optional on continuation entries.
                self.eat_keyword(Keyword::Parameter);
                self.skip_optional_range()?;
                let (pname, pspan) = self.expect_ident()?;
                self.expect_punct(Punct::Assign)?;
                let value = self.expr()?;
                params.push(ParamDecl {
                    name: pname,
                    value,
                    local: false,
                    span: pspan,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        let mut ports = Vec::new();
        if self.eat_punct(Punct::LParen) && !self.eat_punct(Punct::RParen) {
            loop {
                ports.push(self.ansi_port(&ports)?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::Semi)?;
        let mut items = Vec::new();
        while !self.eat_keyword(Keyword::Endmodule) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.err(format!("missing `endmodule` for module `{name}`")));
            }
            items.push(self.item()?);
        }
        Ok(Module {
            name,
            params,
            ports,
            items,
            span: start.to(self.prev_span()),
        })
    }

    fn skip_optional_range(&mut self) -> RtlResult<Option<Range>> {
        if *self.peek() == TokenKind::Punct(Punct::LBracket) {
            Ok(Some(self.range()?))
        } else {
            Ok(None)
        }
    }

    fn range(&mut self) -> RtlResult<Range> {
        let start = self.expect_punct(Punct::LBracket)?;
        let msb = self.expr()?;
        self.expect_punct(Punct::Colon)?;
        let lsb = self.expr()?;
        let end = self.expect_punct(Punct::RBracket)?;
        Ok(Range {
            msb,
            lsb,
            span: start.to(end),
        })
    }

    fn ansi_port(&mut self, prev: &[Port]) -> RtlResult<Port> {
        let span = self.span();
        let (dir, explicit) = match self.peek() {
            TokenKind::Keyword(Keyword::Input) => {
                self.bump();
                (PortDir::Input, true)
            }
            TokenKind::Keyword(Keyword::Output) => {
                self.bump();
                (PortDir::Output, true)
            }
            TokenKind::Keyword(Keyword::Inout) => {
                return Err(self.unsupported("`inout` ports are outside the subset"))
            }
            _ => {
                // Direction inherited from the previous port (ANSI lists
                // allow `input a, b, c`).
                let Some(p) = prev.last() else {
                    return Err(self.err("port list must start with a direction"));
                };
                (p.dir, false)
            }
        };
        let mut kind = if self.eat_keyword(Keyword::Reg) {
            NetKind::Reg
        } else {
            self.eat_keyword(Keyword::Wire);
            NetKind::Wire
        };
        self.eat_keyword(Keyword::Signed); // accepted, treated unsigned
        let mut range = self.skip_optional_range()?;
        if !explicit && kind == NetKind::Wire && range.is_none() {
            // `input [3:0] a, b` gives b the same range/kind as a.
            if let Some(p) = prev.last() {
                range.clone_from(&p.range);
                kind = p.kind;
            }
        }
        let (name, nspan) = self.expect_ident()?;
        Ok(Port {
            name,
            dir,
            kind,
            range,
            span: span.to(nspan),
        })
    }

    fn item(&mut self) -> RtlResult<Item> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Wire) => self.net_decl(NetKind::Wire),
            TokenKind::Keyword(Keyword::Reg) => self.net_decl(NetKind::Reg),
            TokenKind::Keyword(Keyword::Integer) => self.net_decl(NetKind::Integer),
            TokenKind::Keyword(Keyword::Parameter) => self.param_item(false),
            TokenKind::Keyword(Keyword::Localparam) => self.param_item(true),
            TokenKind::Keyword(Keyword::Assign) => self.assign_item(),
            TokenKind::Keyword(Keyword::Always) => self.always_item(),
            TokenKind::Keyword(Keyword::Initial) => {
                let span = self.bump().span;
                let body = self.stmt()?;
                let end = body.span();
                Ok(Item::Initial {
                    body,
                    span: span.to(end),
                })
            }
            TokenKind::Keyword(Keyword::Input | Keyword::Output) => Err(self.unsupported(
                "non-ANSI port declarations are outside the subset; declare ports in the header",
            )),
            TokenKind::Ident(_) => self.instance_item(),
            other => Err(self.err(format!("expected module item, found {other}"))),
        }
    }

    fn net_decl(&mut self, kind: NetKind) -> RtlResult<Item> {
        let start = self.bump().span;
        self.eat_keyword(Keyword::Signed);
        let range = if kind == NetKind::Integer {
            None
        } else {
            self.skip_optional_range()?
        };
        let mut names = Vec::new();
        loop {
            let (name, nspan) = self.expect_ident()?;
            let array = if *self.peek() == TokenKind::Punct(Punct::LBracket) {
                Some(self.range()?)
            } else {
                None
            };
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            names.push(Declarator {
                name,
                array,
                init,
                span: nspan,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Item::Net(NetDecl {
            kind,
            range,
            names,
            span: start.to(end),
        }))
    }

    fn param_item(&mut self, local: bool) -> RtlResult<Item> {
        let start = self.bump().span;
        self.skip_optional_range()?;
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::Assign)?;
        let value = self.expr()?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Item::Param(ParamDecl {
            name,
            value,
            local,
            span: start.to(end),
        }))
    }

    fn assign_item(&mut self) -> RtlResult<Item> {
        let start = self.bump().span;
        let lhs = self.lvalue()?;
        self.expect_punct(Punct::Assign)?;
        let rhs = self.expr()?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Item::Assign {
            lhs,
            rhs,
            span: start.to(end),
        })
    }

    fn always_item(&mut self) -> RtlResult<Item> {
        let start = self.bump().span;
        self.expect_punct(Punct::At)?;
        let sensitivity = if self.eat_punct(Punct::Star) {
            Sensitivity::Star
        } else {
            self.expect_punct(Punct::LParen)?;
            if self.eat_punct(Punct::Star) {
                self.expect_punct(Punct::RParen)?;
                Sensitivity::Star
            } else {
                let mut items = Vec::new();
                loop {
                    let ispan = self.span();
                    let edge = if self.eat_keyword(Keyword::Posedge) {
                        Some(Edge::Pos)
                    } else if self.eat_keyword(Keyword::Negedge) {
                        Some(Edge::Neg)
                    } else {
                        None
                    };
                    let (signal, _) = self.expect_ident()?;
                    items.push(SensItem {
                        edge,
                        signal,
                        span: ispan.to(self.prev_span()),
                    });
                    // `or` keyword or comma separate entries.
                    if self.eat_keyword(Keyword::Or) || self.eat_punct(Punct::Comma) {
                        continue;
                    }
                    break;
                }
                self.expect_punct(Punct::RParen)?;
                Sensitivity::List(items)
            }
        };
        let body = self.stmt()?;
        let end = body.span();
        Ok(Item::Always(AlwaysBlock {
            sensitivity,
            body,
            span: start.to(end),
        }))
    }

    fn named_conns(&mut self) -> RtlResult<Vec<PortConn>> {
        let mut conns = Vec::new();
        self.expect_punct(Punct::LParen)?;
        if self.eat_punct(Punct::RParen) {
            return Ok(conns);
        }
        loop {
            let start = self.expect_punct(Punct::Dot)?;
            let (port, _) = self.expect_ident()?;
            self.expect_punct(Punct::LParen)?;
            let expr = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                None
            } else {
                Some(self.expr()?)
            };
            let end = self.expect_punct(Punct::RParen)?;
            conns.push(PortConn {
                port,
                expr,
                span: start.to(end),
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(conns)
    }

    fn instance_item(&mut self) -> RtlResult<Item> {
        let start = self.span();
        let (module, _) = self.expect_ident()?;
        let params = if self.eat_punct(Punct::Hash) {
            self.named_conns()?
        } else {
            Vec::new()
        };
        let (name, _) = self.expect_ident()?;
        let conns = self.named_conns()?;
        let end = self.expect_punct(Punct::Semi)?;
        Ok(Item::Instance(Instance {
            module,
            name,
            params,
            conns,
            span: start.to(end),
        }))
    }

    fn stmt(&mut self) -> RtlResult<Stmt> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Begin) => {
                let start = self.bump().span;
                // Optional named block `begin : name`.
                if self.eat_punct(Punct::Colon) {
                    self.expect_ident()?;
                }
                let mut stmts = Vec::new();
                while !self.eat_keyword(Keyword::End) {
                    if *self.peek() == TokenKind::Eof {
                        return Err(self.err("missing `end`"));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block {
                    stmts,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::If) => {
                let start = self.bump().span;
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_stmt = Box::new(self.stmt()?);
                let else_stmt = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                let end = else_stmt
                    .as_ref()
                    .map_or_else(|| then_stmt.span(), |e| e.span());
                Ok(Stmt::If {
                    cond,
                    then_stmt,
                    else_stmt,
                    span: start.to(end),
                })
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                let start = self.bump().span;
                let kind = match kw {
                    Keyword::Case => CaseKind::Case,
                    Keyword::Casez => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                self.expect_punct(Punct::LParen)?;
                let selector = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let mut arms = Vec::new();
                while !self.eat_keyword(Keyword::Endcase) {
                    if *self.peek() == TokenKind::Eof {
                        return Err(self.err("missing `endcase`"));
                    }
                    let aspan = self.span();
                    let labels = if self.eat_keyword(Keyword::Default) {
                        self.eat_punct(Punct::Colon);
                        Vec::new()
                    } else {
                        let mut labels = vec![self.expr()?];
                        while self.eat_punct(Punct::Comma) {
                            labels.push(self.expr()?);
                        }
                        self.expect_punct(Punct::Colon)?;
                        labels
                    };
                    let body = self.stmt()?;
                    let end = body.span();
                    arms.push(CaseArm {
                        labels,
                        body,
                        span: aspan.to(end),
                    });
                }
                Ok(Stmt::Case {
                    kind,
                    selector,
                    arms,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                let start = self.bump().span;
                self.expect_punct(Punct::LParen)?;
                let (var, _) = self.expect_ident()?;
                self.expect_punct(Punct::Assign)?;
                let init = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                let (var2, _) = self.expect_ident()?;
                if var2 != var {
                    return Err(self.unsupported("for-loop step must assign the loop variable"));
                }
                self.expect_punct(Punct::Assign)?;
                let step = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                let end = body.span();
                Ok(Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                    span: start.to(end),
                })
            }
            TokenKind::Punct(Punct::Semi) => {
                let span = self.bump().span;
                Ok(Stmt::Null { span })
            }
            TokenKind::SysName(_) => {
                // System tasks ($display etc.) are parsed and discarded.
                let span = self.bump().span;
                if self.eat_punct(Punct::LParen) {
                    let mut depth = 1u32;
                    loop {
                        match self.peek() {
                            TokenKind::Punct(Punct::LParen) => depth += 1,
                            TokenKind::Punct(Punct::RParen) => {
                                depth -= 1;
                                if depth == 0 {
                                    self.bump();
                                    break;
                                }
                            }
                            TokenKind::Eof => return Err(self.err("unterminated system call")),
                            _ => {}
                        }
                        self.bump();
                    }
                }
                let end = self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Null { span: span.to(end) })
            }
            TokenKind::Punct(Punct::Hash) => {
                Err(self.unsupported("delay controls (`#`) are outside the subset"))
            }
            _ => {
                // Assignment statement.
                let lhs = self.lvalue()?;
                let start = lhs.span();
                if self.eat_punct(Punct::Assign) {
                    let rhs = self.expr()?;
                    let end = self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Blocking {
                        lhs,
                        rhs,
                        span: start.to(end),
                    })
                } else if self.eat_punct(Punct::LtEq) {
                    let rhs = self.expr()?;
                    let end = self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::NonBlocking {
                        lhs,
                        rhs,
                        span: start.to(end),
                    })
                } else {
                    Err(self.err(format!(
                        "expected `=` or `<=` in assignment, found {}",
                        self.peek()
                    )))
                }
            }
        }
    }

    /// Parses an lvalue: identifier, bit/part select, or concatenation of
    /// lvalues.
    fn lvalue(&mut self) -> RtlResult<Expr> {
        if *self.peek() == TokenKind::Punct(Punct::LBrace) {
            let start = self.bump().span;
            let mut parts = vec![self.lvalue()?];
            while self.eat_punct(Punct::Comma) {
                parts.push(self.lvalue()?);
            }
            let end = self.expect_punct(Punct::RBrace)?;
            return Ok(Expr::Concat {
                parts,
                span: start.to(end),
            });
        }
        let (name, span) = self.expect_ident()?;
        self.selects_on(name, span)
    }

    /// Parses optional `[...]` selects after an identifier.
    fn selects_on(&mut self, base: String, span: Span) -> RtlResult<Expr> {
        if !self.eat_punct(Punct::LBracket) {
            return Ok(Expr::Ident { name: base, span });
        }
        let first = self.expr()?;
        if self.eat_punct(Punct::Colon) {
            let lsb = self.expr()?;
            let end = self.expect_punct(Punct::RBracket)?;
            Ok(Expr::PartSelect {
                base,
                msb: Box::new(first),
                lsb: Box::new(lsb),
                span: span.to(end),
            })
        } else if self.eat_punct(Punct::PlusColon) {
            let width = self.expr()?;
            let end = self.expect_punct(Punct::RBracket)?;
            Ok(Expr::IndexedPartSelect {
                base,
                start: Box::new(first),
                width: Box::new(width),
                ascending: true,
                span: span.to(end),
            })
        } else if self.eat_punct(Punct::MinusColon) {
            let width = self.expr()?;
            let end = self.expect_punct(Punct::RBracket)?;
            Ok(Expr::IndexedPartSelect {
                base,
                start: Box::new(first),
                width: Box::new(width),
                ascending: false,
                span: span.to(end),
            })
        } else {
            let end = self.expect_punct(Punct::RBracket)?;
            Ok(Expr::Index {
                base,
                index: Box::new(first),
                span: span.to(end),
            })
        }
    }

    /// Pratt expression parser entry point.
    fn expr(&mut self) -> RtlResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> RtlResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then_expr = self.ternary()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.ternary()?;
            let span = cond.span().to(else_expr.span());
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, min_prec: u8) -> Option<(BinaryOp, u8)> {
        let (op, prec) = match self.peek() {
            TokenKind::Punct(Punct::PipePipe) => (BinaryOp::LogicalOr, 1),
            TokenKind::Punct(Punct::AmpAmp) => (BinaryOp::LogicalAnd, 2),
            TokenKind::Punct(Punct::Pipe) => (BinaryOp::Or, 3),
            TokenKind::Punct(Punct::Caret) => (BinaryOp::Xor, 4),
            TokenKind::Punct(Punct::TildeCaret) => (BinaryOp::Xnor, 4),
            TokenKind::Punct(Punct::Amp) => (BinaryOp::And, 5),
            TokenKind::Punct(Punct::EqEq) => (BinaryOp::Eq, 6),
            TokenKind::Punct(Punct::NotEq) => (BinaryOp::Ne, 6),
            TokenKind::Punct(Punct::CaseEq) => (BinaryOp::CaseEq, 6),
            TokenKind::Punct(Punct::CaseNotEq) => (BinaryOp::CaseNe, 6),
            TokenKind::Punct(Punct::Lt) => (BinaryOp::Lt, 7),
            TokenKind::Punct(Punct::LtEq) => (BinaryOp::Le, 7),
            TokenKind::Punct(Punct::Gt) => (BinaryOp::Gt, 7),
            TokenKind::Punct(Punct::GtEq) => (BinaryOp::Ge, 7),
            TokenKind::Punct(Punct::Shl) => (BinaryOp::Shl, 8),
            TokenKind::Punct(Punct::Shr) => (BinaryOp::Shr, 8),
            TokenKind::Punct(Punct::AShr) => (BinaryOp::AShr, 8),
            TokenKind::Punct(Punct::Plus) => (BinaryOp::Add, 9),
            TokenKind::Punct(Punct::Minus) => (BinaryOp::Sub, 9),
            TokenKind::Punct(Punct::Star) => (BinaryOp::Mul, 10),
            TokenKind::Punct(Punct::Slash) => (BinaryOp::Div, 10),
            TokenKind::Punct(Punct::Percent) => (BinaryOp::Mod, 10),
            TokenKind::Punct(Punct::Star2) => (BinaryOp::Pow, 11),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn binary(&mut self, min_prec: u8) -> RtlResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.binop_at(min_prec) {
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> RtlResult<Expr> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::LogicalNot),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Plus),
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::RedAnd),
            TokenKind::Punct(Punct::Pipe) => Some(UnaryOp::RedOr),
            TokenKind::Punct(Punct::Caret) => Some(UnaryOp::RedXor),
            TokenKind::Punct(Punct::TildeCaret) => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            let espan = span.to(operand.span());
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                span: espan,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> RtlResult<Expr> {
        match self.peek().clone() {
            TokenKind::Number { value, sized } => {
                let span = self.bump().span;
                Ok(Expr::Number { value, sized, span })
            }
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                self.selects_on(name, span)
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Punct(Punct::LBrace) => {
                let start = self.bump().span;
                let first = self.expr()?;
                if *self.peek() == TokenKind::Punct(Punct::LBrace) {
                    // Replication {count{expr, ...}}.
                    self.bump();
                    let mut parts = vec![self.expr()?];
                    while self.eat_punct(Punct::Comma) {
                        parts.push(self.expr()?);
                    }
                    self.expect_punct(Punct::RBrace)?;
                    let end = self.expect_punct(Punct::RBrace)?;
                    let span = start.to(end);
                    let inner = if parts.len() == 1 {
                        parts.pop().expect("one element")
                    } else {
                        Expr::Concat { parts, span }
                    };
                    Ok(Expr::Repeat {
                        count: Box::new(first),
                        expr: Box::new(inner),
                        span,
                    })
                } else {
                    let mut parts = vec![first];
                    while self.eat_punct(Punct::Comma) {
                        parts.push(self.expr()?);
                    }
                    let end = self.expect_punct(Punct::RBrace)?;
                    Ok(Expr::Concat {
                        parts,
                        span: start.to(end),
                    })
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> SourceUnit {
        parse(FileId(0), src).expect("parse ok")
    }

    fn perr(src: &str) -> RtlError {
        parse(FileId(0), src).expect_err("expected parse failure")
    }

    #[test]
    fn empty_module() {
        let u = p("module m; endmodule");
        assert_eq!(u.modules.len(), 1);
        assert_eq!(u.modules[0].name, "m");
        assert!(u.modules[0].ports.is_empty());
    }

    #[test]
    fn ansi_ports_with_ranges() {
        let u = p("module m(input wire clk, input [7:0] d, output reg [7:0] q); endmodule");
        let m = &u.modules[0];
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[0].dir, PortDir::Input);
        assert!(m.ports[0].range.is_none());
        assert!(m.ports[1].range.is_some());
        assert_eq!(m.ports[2].kind, NetKind::Reg);
        assert_eq!(m.ports[2].dir, PortDir::Output);
    }

    #[test]
    fn port_direction_inheritance() {
        let u = p("module m(input [3:0] a, b, output wire y); endmodule");
        let m = &u.modules[0];
        assert_eq!(m.ports[1].dir, PortDir::Input);
        assert!(m.ports[1].range.is_some());
        assert_eq!(m.ports[2].dir, PortDir::Output);
    }

    #[test]
    fn header_parameters() {
        let u = p("module m #(parameter W = 8, DEPTH = 16)(input [W-1:0] d); endmodule");
        let m = &u.modules[0];
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0].name, "W");
        assert_eq!(m.params[1].name, "DEPTH");
    }

    #[test]
    fn declarations() {
        let u = p("module m; wire [3:0] a, b; reg [7:0] mem [0:255]; integer i; localparam X = 4; endmodule");
        let m = &u.modules[0];
        assert_eq!(m.items.len(), 4);
        match &m.items[0] {
            Item::Net(d) => {
                assert_eq!(d.kind, NetKind::Wire);
                assert_eq!(d.names.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        match &m.items[1] {
            Item::Net(d) => {
                assert_eq!(d.kind, NetKind::Reg);
                assert!(d.names[0].array.is_some());
            }
            other => panic!("{other:?}"),
        }
        match &m.items[3] {
            Item::Param(p) => assert!(p.local),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wire_initializer() {
        let u = p("module m; wire [3:0] a = 4'd7; endmodule");
        match &u.modules[0].items[0] {
            Item::Net(d) => assert!(d.names[0].init.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assign_and_expressions() {
        let u = p(
            "module m(input [7:0] a, b, output [7:0] y); assign y = (a + b) * 8'd2 ^ ~a; endmodule",
        );
        match &u.modules[0].items[0] {
            Item::Assign { rhs, .. } => match rhs {
                Expr::Binary {
                    op: BinaryOp::Xor, ..
                } => {}
                other => panic!("precedence wrong: {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let u = p("module m(output [7:0] y); assign y = 1 + 2 * 3; endmodule");
        match &u.modules[0].items[0] {
            Item::Assign {
                rhs:
                    Expr::Binary {
                        op: BinaryOp::Add,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **rhs,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn always_with_async_reset_sensitivity() {
        let u = p("module m(input clk, rst_n); reg [3:0] q; always @(posedge clk or negedge rst_n) begin if (!rst_n) q <= 4'd0; else q <= q + 4'd1; end endmodule");
        let m = &u.modules[0];
        let a = m.always_blocks().next().expect("always");
        match &a.sensitivity {
            Sensitivity::List(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].edge, Some(Edge::Pos));
                assert_eq!(items[0].signal, "clk");
                assert_eq!(items[1].edge, Some(Edge::Neg));
                assert_eq!(items[1].signal, "rst_n");
            }
            other => panic!("{other:?}"),
        }
        match &a.body {
            Stmt::Block { stmts, .. } => {
                assert!(matches!(stmts[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comma_separated_sensitivity() {
        let u = p("module m(input a, b, output reg y); always @(a, b) y = a & b; endmodule");
        let blk = u.modules[0].always_blocks().next().expect("a");
        match &blk.sensitivity {
            Sensitivity::List(items) => assert_eq!(items.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn always_star_forms() {
        for src in [
            "module m(input a, output reg y); always @* y = a; endmodule",
            "module m(input a, output reg y); always @(*) y = a; endmodule",
        ] {
            let u = p(src);
            let blk = u.modules[0].always_blocks().next().expect("a");
            assert_eq!(blk.sensitivity, Sensitivity::Star);
        }
    }

    #[test]
    fn case_statement() {
        let u = p("module m(input [1:0] s, output reg [3:0] y); always @* case (s) 2'd0: y = 4'd1; 2'd1, 2'd2: y = 4'd2; default: y = 4'd0; endcase endmodule");
        let blk = u.modules[0].always_blocks().next().expect("a");
        match &blk.body {
            Stmt::Case { kind, arms, .. } => {
                assert_eq!(*kind, CaseKind::Case);
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[1].labels.len(), 2);
                assert!(arms[2].labels.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn casez_with_wildcards() {
        let u = p("module m(input [3:0] s, output reg y); always @* casez (s) 4'b1???: y = 1'b1; default: y = 1'b0; endcase endmodule");
        let blk = u.modules[0].always_blocks().next().expect("a");
        match &blk.body {
            Stmt::Case { kind, .. } => assert_eq!(*kind, CaseKind::Casez),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_loop() {
        let u = p("module m(output reg [7:0] y); integer i; always @* begin y = 8'd0; for (i = 0; i < 8; i = i + 1) y = y + 8'd1; end endmodule");
        let blk = u.modules[0].always_blocks().next().expect("a");
        match &blk.body {
            Stmt::Block { stmts, .. } => assert!(matches!(stmts[1], Stmt::For { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn instance_with_params() {
        let u = p("module top(input clk); sub #(.W(8)) u_sub (.clk(clk), .q()); endmodule");
        match &u.modules[0].items[0] {
            Item::Instance(i) => {
                assert_eq!(i.module, "sub");
                assert_eq!(i.name, "u_sub");
                assert_eq!(i.params.len(), 1);
                assert_eq!(i.conns.len(), 2);
                assert!(i.conns[1].expr.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn concat_repeat_selects() {
        let u = p("module m(input [7:0] a, output [15:0] y, output b); assign y = {a, {2{a[3:0]}}}; assign b = a[a[0]]; endmodule");
        match &u.modules[0].items[0] {
            Item::Assign {
                rhs: Expr::Concat { parts, .. },
                ..
            } => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::Repeat { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn indexed_part_select() {
        let u = p("module m(input [31:0] a, input [1:0] s, output [7:0] y); assign y = a[s*8 +: 8]; endmodule");
        match &u.modules[0].items[0] {
            Item::Assign {
                rhs: Expr::IndexedPartSelect { ascending, .. },
                ..
            } => {
                assert!(ascending);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn concat_lvalue() {
        let u = p("module m(input [3:0] a, b, output reg c, output reg [3:0] s); always @* {c, s} = a + b; endmodule");
        let blk = u.modules[0].always_blocks().next().expect("a");
        match &blk.body {
            Stmt::Blocking {
                lhs: Expr::Concat { parts, .. },
                ..
            } => {
                assert_eq!(parts.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nonblocking_vs_comparison() {
        // `<=` in a condition is comparison; after an lvalue it's NBA.
        let u = p("module m(input clk, input [3:0] a, output reg y); always @(posedge clk) if (a <= 4'd3) y <= 1'b1; endmodule");
        let blk = u.modules[0].always_blocks().next().expect("a");
        match &blk.body {
            Stmt::If {
                cond, then_stmt, ..
            } => {
                assert!(matches!(
                    cond,
                    Expr::Binary {
                        op: BinaryOp::Le,
                        ..
                    }
                ));
                assert!(matches!(**then_stmt, Stmt::NonBlocking { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ternary_right_associative() {
        let u =
            p("module m(input a, b, output y); assign y = a ? 1'b0 : b ? 1'b1 : 1'b0; endmodule");
        match &u.modules[0].items[0] {
            Item::Assign {
                rhs: Expr::Ternary { else_expr, .. },
                ..
            } => {
                assert!(matches!(**else_expr, Expr::Ternary { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn system_task_ignored() {
        let u =
            p("module m(input clk); always @(posedge clk) $display(\"tick %d\", clk); endmodule");
        let blk = u.modules[0].always_blocks().next().expect("a");
        match &blk.body {
            Stmt::Null { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn initial_block() {
        let u = p("module m; reg [3:0] q; initial q = 4'd5; endmodule");
        assert!(matches!(u.modules[0].items[1], Item::Initial { .. }));
    }

    #[test]
    fn unsupported_constructs_diagnosed() {
        assert_eq!(
            perr("module m(inout w); endmodule").kind,
            RtlErrorKind::Unsupported
        );
        assert_eq!(
            perr("module m(input clk); always @(posedge clk) #5 q <= 1; endmodule").kind,
            RtlErrorKind::Unsupported
        );
        assert_eq!(
            perr("module m; input clk; endmodule").kind,
            RtlErrorKind::Unsupported
        );
    }

    #[test]
    fn syntax_errors_have_spans() {
        let e = perr("module m(input a); assign ; endmodule");
        assert_eq!(e.kind, RtlErrorKind::Parse);
        assert!(e.span.start > 0);
    }

    #[test]
    fn missing_endmodule() {
        let e = perr("module m(input a);");
        assert!(e.message.contains("endmodule"));
    }

    #[test]
    fn two_modules() {
        let u = p("module a; endmodule module b; endmodule");
        assert_eq!(u.modules.len(), 2);
        assert!(u.module("a").is_some());
        assert!(u.module("b").is_some());
        assert!(u.module("c").is_none());
    }

    #[test]
    fn named_begin_block() {
        let u = p("module m(input clk); reg q; always @(posedge clk) begin : blk q <= 1'b1; end endmodule");
        assert_eq!(u.modules.len(), 1);
    }
}
