//! A minimal JSON *reader* for the wire protocol.
//!
//! The workspace vendors serde's serialize half only (`soccar::json`
//! emits JSON; nothing parses it), and the server must decode request
//! envelopes that embed arbitrary Verilog source in string literals. This
//! is the smallest correct reader for that job: full string escapes
//! (including `\uXXXX` surrogate pairs), numbers as `f64`, objects in
//! declaration order. It is a strict parser — trailing garbage, trailing
//! commas, and unescaped control characters are errors — so malformed
//! frames fail loudly at the protocol boundary instead of deep in a
//! handler.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only one numeric type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in declaration order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// On any syntax error, including trailing non-whitespace input.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Convenience: `get(key)` as a string, `None` when absent or null.
    #[must_use]
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `get(key)` as `u64`, `None` when absent or null.
    #[must_use]
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Convenience: `get(key)` as bool, defaulting to `false`.
    #[must_use]
    pub fn bool_field(&self, key: &str) -> bool {
        self.get(key).and_then(Json::as_bool).unwrap_or(false)
    }

    /// Convenience: `get(key)` as a vector of strings (absent → empty;
    /// non-string items are skipped).
    #[must_use]
    pub fn str_list_field(&self, key: &str) -> Vec<String> {
        self.get(key)
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(Json::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // A high surrogate must pair with a following
                            // `\uXXXX` low surrogate.
                            let c = if (0xD800..=0xDBFF).contains(&unit) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..=0xDFFF).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`), advancing past them.
    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid utf-8 in \\u escape"))?;
        let unit =
            u16::from_str_radix(text, 16).map_err(|_| self.err("invalid hex in \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn escapes_match_the_writer() {
        // Exactly the escapes `soccar::json::write_escaped` emits.
        let parsed = Json::parse("\"a\\\"b\\\\c\\nd\\te\\rf\\u0001g\"").unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\te\rf\u{1}g".into()));
        // And a surrogate pair.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn objects_preserve_order_and_support_lookup() {
        let v = Json::parse(r#"{"cmd":"analyze","cycles":24,"flags":["a","b"],"deep":{"x":null}}"#)
            .unwrap();
        assert_eq!(v.str_field("cmd"), Some("analyze"));
        assert_eq!(v.u64_field("cycles"), Some(24));
        assert_eq!(v.str_list_field("flags"), vec!["a", "b"]);
        assert!(v.get("deep").unwrap().get("x").unwrap().is_null());
        assert_eq!(v.str_field("missing"), None);
        assert!(!v.bool_field("missing"));
    }

    #[test]
    fn verilog_source_survives_a_round_trip_through_the_writer() {
        // The writer side is `soccar::json`; anything it emits must read
        // back to the same string.
        #[derive(serde::Serialize)]
        struct Payload<'a> {
            source: &'a str,
        }
        let source = "module top(input clk);\n\t// \"quoted\" comment\\\nendmodule\n";
        let text = soccar::json::to_json(&Payload { source }).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.str_field("source"), Some(source));
    }

    #[test]
    fn strict_errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"\u{1}\"").is_err()); // raw control char
        assert!(Json::parse(r#""\ud800x""#).is_err()); // lone surrogate
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.u64_field("a"), Some(2));
    }
}
