//! Criterion benches for every pipeline stage and experiment of the paper:
//!
//! * `frontend/*` — parse + elaborate each benchmark SoC;
//! * `synthesis/*` — the Table I area estimation;
//! * `extraction/*` — Algorithms 1–2 (AR_CFG generation + composition);
//! * `detection/*` — the full Section V-C pipeline per variant (the
//!   "verification time of a few seconds" claim);
//! * `solver/*` — representative Algorithm 3 constraint queries;
//! * `flip_solving/*` — one-shot vs assumption-based incremental flip
//!   solving on one frozen concolic round (docs/SOLVER.md);
//! * `simulation/*` — raw simulation throughput;
//! * `init_policy/*` — the all-ones vs zeros ablation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use soccar::evaluation::evaluate_variant;
use soccar::SoccarConfig;
use soccar_bench::paper_config;
use soccar_cfg::{compose_soc, GovernorAnalysis, ResetNaming};
use soccar_concolic::ConcolicConfig;
use soccar_rtl::{elaborate::elaborate, parser::parse, span::FileId};
use soccar_sim::{InitPolicy, Simulator};
use soccar_smt::{BvVal, Solver, TermGraph};
use soccar_soc::SocModel;
use soccar_synth::{estimate, TechModel};

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for model in [SocModel::ClusterSoc, SocModel::AutoSoc] {
        let design = soccar_soc::generate(model, None);
        g.bench_function(format!("{model:?}"), |b| {
            b.iter(|| {
                let unit = parse(FileId(0), &design.source).expect("parse");
                elaborate(&unit, &design.top).expect("elaborate")
            });
        });
    }
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    for model in [SocModel::ClusterSoc, SocModel::AutoSoc] {
        let design = soccar_soc::generate(model, None);
        let (d, _) = soccar_rtl::compile("soc.v", &design.source, &design.top).expect("compile");
        g.bench_function(format!("table1_{model:?}"), |b| {
            b.iter(|| estimate(&d, &TechModel::default()));
        });
    }
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("extraction");
    for model in [SocModel::ClusterSoc, SocModel::AutoSoc] {
        let design = soccar_soc::generate(model, None);
        let unit = parse(FileId(0), &design.source).expect("parse");
        g.bench_function(format!("ar_cfg_{model:?}"), |b| {
            b.iter(|| {
                compose_soc(
                    &unit,
                    &design.top,
                    &ResetNaming::new(),
                    GovernorAnalysis::Explicit,
                )
                .expect("compose")
            });
        });
    }
    g.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    g.sample_size(10);
    for spec in soccar_soc::variants() {
        g.bench_function(spec.name().replace(' ', "_").replace('#', ""), |b| {
            b.iter_batched(
                paper_config,
                |config| evaluate_variant(&spec, config).expect("evaluates"),
                BatchSize::PerIteration,
            );
        });
    }
    // The Refined ablation on the implicit-governor variant.
    let spec = soccar_soc::variant(SocModel::AutoSoc, 2).expect("variant");
    g.bench_function("AutoSoC_Variant_2_refined", |b| {
        b.iter_batched(
            || SoccarConfig {
                analysis: GovernorAnalysis::Refined,
                ..paper_config()
            },
            |config| evaluate_variant(&spec, config).expect("evaluates"),
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    // The Algorithm 3 shape: reset/clock equivalences plus a data guard.
    g.bench_function("reset_constraint", |b| {
        b.iter(|| {
            let mut graph = TermGraph::new();
            let rst = graph.var("rst", 1);
            let state = graph.var("state", 3);
            let magic = graph.var("magic", 8);
            let zero = graph.const_u64(1, 0);
            let busy = graph.const_u64(3, 5);
            let key = graph.const_u64(8, 0x5A);
            let c1 = graph.eq(rst, zero);
            let c2 = graph.eq(state, busy);
            let c3 = graph.eq(magic, key);
            let mut s = Solver::new();
            s.assert(c1);
            s.assert(c2);
            s.assert(c3);
            s.check(&graph)
        });
    });
    g.bench_function("multiplier_inversion_16bit", |b| {
        b.iter(|| {
            let mut graph = TermGraph::new();
            let x = graph.var("x", 16);
            let y = graph.var("y", 16);
            let p = graph.mul(x, y);
            let c = graph.constant(BvVal::from_u64(16, 12_019)); // 7 × 17 × 101
            let eq = graph.eq(p, c);
            let one = graph.const_u64(16, 1);
            let xg = graph.ult(one, x);
            let yg = graph.ult(one, y);
            let mut s = Solver::new();
            s.assert(eq);
            s.assert(xg);
            s.assert(yg);
            s.check(&graph)
        });
    });
    g.finish();
}

fn bench_flip_solving(c: &mut Criterion) {
    let mut g = c.benchmark_group("flip_solving");
    g.sample_size(10);
    // Same frozen round state for both strategies — the comparison the
    // `detection` binary records into BENCH_<soc>.json.
    for model in [SocModel::ClusterSoc, SocModel::AutoSoc] {
        let workload = soccar_bench::flip_workload(model, &soccar_bench::smoke_config());
        let cap = soccar_bench::FLIP_SOLVING_CAP;
        let recorder = soccar_obs::Recorder::disabled();
        g.bench_function(format!("{model:?}_oneshot"), |b| {
            b.iter(|| workload.solve_oneshot(cap, &recorder));
        });
        g.bench_function(format!("{model:?}_incremental"), |b| {
            b.iter(|| workload.solve_incremental(cap, &recorder));
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    let design = soccar_soc::generate(SocModel::ClusterSoc, None);
    let (d, _) = soccar_rtl::compile("soc.v", &design.source, &design.top).expect("compile");
    let clk = d.find_net("cluster_soc.clk").expect("clk");
    let inputs: Vec<_> = d.top_inputs().collect();
    g.bench_function("cluster_soc_100_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
            for net in &inputs {
                let w = sim.design().net(*net).width;
                sim.write_input(*net, soccar_rtl::LogicVec::zeros(w))
                    .expect("in");
            }
            for rst in ["sys_rst_n", "mem_rst_n", "crypto_rst_n", "periph_rst_n"] {
                let n = d.find_net(&format!("cluster_soc.{rst}")).expect("rst");
                sim.write_input(n, soccar_rtl::LogicVec::from_u64(1, 1))
                    .expect("rst");
            }
            sim.settle().expect("settle");
            for _ in 0..100 {
                sim.tick(clk).expect("tick");
            }
            sim.time()
        });
    });
    g.finish();
}

fn bench_init_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("init_policy");
    g.sample_size(10);
    let spec = soccar_soc::variant(SocModel::ClusterSoc, 1).expect("variant");
    for (label, init) in [("ones", InitPolicy::Ones), ("zeros", InitPolicy::Zeros)] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let base = paper_config();
                    SoccarConfig {
                        concolic: ConcolicConfig {
                            init,
                            ..base.concolic
                        },
                        ..base
                    }
                },
                |config| evaluate_variant(&spec, config).expect("evaluates"),
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_synthesis,
    bench_extraction,
    bench_detection,
    bench_solver,
    bench_flip_solving,
    bench_simulation,
    bench_init_policy
);
criterion_main!(benches);
