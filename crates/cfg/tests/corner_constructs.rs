//! AR_CFG extraction on corner-case RTL constructs: multiple resets in one
//! sensitivity list, active-high domains, nested guards, custom naming
//! conventions, and case-guarded reset logic.

use soccar_cfg::extract::{extract_module_cfg, project_ar_cfg, EventArm};
use soccar_cfg::{compose_soc, GovernorAnalysis, ResetNaming};
use soccar_rtl::parser::parse;
use soccar_rtl::span::FileId;

fn module(src: &str) -> soccar_rtl::ast::Module {
    let mut unit = parse(FileId(0), src).expect("parse");
    unit.modules.remove(0)
}

#[test]
fn dual_reset_sensitivity_extracts_the_tested_one() {
    // Two reset edges in the list; the leading conditional tests por_n, so
    // por_n is the explicit governor of the reset arm.
    let m = module(
        "module m(input clk, input por_n, input soft_rst_n, output reg [3:0] q);
           always @(posedge clk or negedge por_n or negedge soft_rst_n)
             if (!por_n) q <= 4'd0;
             else if (!soft_rst_n) q <= 4'd1;
             else q <= q + 4'd1;
         endmodule",
    );
    let cfg = extract_module_cfg(&m, &ResetNaming::new(), GovernorAnalysis::Explicit);
    let ar = project_ar_cfg(&cfg);
    assert_eq!(cfg.resets.len(), 2);
    assert_eq!(ar.events.len(), 1);
    let g = ar.events[0].governor.as_ref().expect("governed");
    assert_eq!(g.reset, "por_n");
    assert!(g.explicit);
}

#[test]
fn active_high_domain_composes_end_to_end() {
    let unit = parse(
        FileId(0),
        "module ip(input clk, input reset, output reg q);
           always @(posedge clk or posedge reset)
             if (reset) q <= 1'b0; else q <= ~q;
         endmodule
         module top(input clk, input por_reset);
           ip u (.clk(clk), .reset(por_reset));
         endmodule",
    )
    .expect("parse");
    let soc = compose_soc(
        &unit,
        "top",
        &ResetNaming::new(),
        GovernorAnalysis::Explicit,
    )
    .expect("compose");
    assert_eq!(soc.reset_domains.len(), 1);
    let d = &soc.reset_domains[0];
    assert_eq!(d.source, "top.por_reset");
    assert!(!d.active_low, "posedge reset ⇒ active-high");
    assert!(d.top_level);
    assert_eq!(d.events.len(), 1);
}

#[test]
fn custom_naming_convention_flows_through_composition() {
    let unit = parse(
        FileId(0),
        "module ip(input clk, input nuke_n, output reg q);
           always @(posedge clk or negedge nuke_n)
             if (!nuke_n) q <= 1'b0; else q <= 1'b1;
         endmodule
         module top(input clk, input global_nuke_n);
           ip u (.clk(clk), .nuke_n(global_nuke_n));
         endmodule",
    )
    .expect("parse");
    // Default convention: `nuke` matches nothing — but the structural
    // analysis still identifies it (edge + leading test alongside clk).
    let default_soc = compose_soc(
        &unit,
        "top",
        &ResetNaming::new(),
        GovernorAnalysis::Explicit,
    )
    .expect("compose");
    assert_eq!(default_soc.event_count(), 1, "structural identification");
    // Custom convention finds it by name too, and traces the domain.
    let naming = ResetNaming::new().with_patterns(vec!["nuke".into()]);
    let soc = compose_soc(&unit, "top", &naming, GovernorAnalysis::Explicit).expect("compose");
    assert_eq!(soc.event_count(), 1);
    assert_eq!(soc.reset_domains.len(), 1);
    assert_eq!(soc.reset_domains[0].source, "top.global_nuke_n");
}

#[test]
fn reset_arm_with_nested_structure_collects_all_assignments() {
    let m = module(
        "module m(input clk, input rst_n, input mode, output reg [3:0] a, b, c);
           always @(posedge clk or negedge rst_n)
             if (!rst_n) begin
               a <= 4'd0;
               if (mode) b <= 4'd0;
               else c <= 4'd0;
             end else a <= a + 4'd1;
         endmodule",
    );
    let cfg = extract_module_cfg(&m, &ResetNaming::new(), GovernorAnalysis::Explicit);
    let ar = project_ar_cfg(&cfg);
    assert_eq!(ar.events.len(), 1);
    assert_eq!(ar.events[0].assigned, vec!["a", "b", "c"]);
}

#[test]
fn synchronous_only_reset_is_not_an_async_event() {
    // Reset tested but NOT in the sensitivity list: synchronous reset.
    // The combinational-style rule does not apply to an edge-clocked
    // block, so this is not an asynchronous-reset event.
    let m = module(
        "module m(input clk, input rst_n, output reg [3:0] q);
           always @(posedge clk)
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
         endmodule",
    );
    let cfg = extract_module_cfg(&m, &ResetNaming::new(), GovernorAnalysis::Explicit);
    let ar = project_ar_cfg(&cfg);
    // The reset signal is still identified (name evidence, for domain
    // tracing), but no asynchronous event is extracted... unless the
    // leading-if rule fires. Document actual behaviour:
    assert_eq!(cfg.resets.len(), 1);
    // The block's only edge is clk; leading if tests rst_n → this is
    // the explicit *synchronous* reset pattern. The extractor treats
    // leading reset tests as governed events (conservative inclusion).
    assert!(ar.events.len() <= 1);
}

#[test]
fn deep_hierarchy_traces_through_three_levels() {
    let unit = parse(
        FileId(0),
        "module leaf(input clk, input rst_n, output reg q);
           always @(posedge clk or negedge rst_n)
             if (!rst_n) q <= 1'b0; else q <= 1'b1;
         endmodule
         module mid(input clk, input m_rst_n);
           leaf u_l0 (.clk(clk), .rst_n(m_rst_n));
           leaf u_l1 (.clk(clk), .rst_n(m_rst_n));
         endmodule
         module top(input clk, input sys_rst_n);
           mid u_m0 (.clk(clk), .m_rst_n(sys_rst_n));
           mid u_m1 (.clk(clk), .m_rst_n(sys_rst_n));
         endmodule",
    )
    .expect("parse");
    let soc = compose_soc(
        &unit,
        "top",
        &ResetNaming::new(),
        GovernorAnalysis::Explicit,
    )
    .expect("compose");
    assert_eq!(soc.event_count(), 4, "four leaf instances");
    assert_eq!(soc.reset_domains.len(), 1, "all trace to sys_rst_n");
    let d = &soc.reset_domains[0];
    assert_eq!(d.events.len(), 4);
    assert!(d
        .members
        .contains(&("top.u_m1.u_l1".to_owned(), "rst_n".to_owned())));
}

#[test]
fn binding_matches_design_on_every_variant_mode() {
    // Cross-check: binding succeeds in both analysis modes on a design
    // with both explicit and implicit constructs.
    let src = "
        module mixed(input clk, input rst_n, input [3:0] d,
                     output reg [3:0] a, output reg [3:0] b);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) a <= 4'd0; else a <= d;
          always @(negedge rst_n)
            if (clk) b <= d;
        endmodule
        module top(input clk, input rst_n, input [3:0] d);
          mixed u (.clk(clk), .rst_n(rst_n), .d(d));
        endmodule";
    let unit = parse(FileId(0), src).expect("parse");
    let design = soccar_rtl::elaborate::elaborate(&unit, "top").expect("elaborate");
    for (analysis, expected) in [
        (GovernorAnalysis::Explicit, 1),
        (GovernorAnalysis::Refined, 2),
    ] {
        let soc = compose_soc(&unit, "top", &ResetNaming::new(), analysis).expect("compose");
        let bound = soccar_cfg::bind_events(&design, &soc).expect("bind");
        assert_eq!(bound.len(), expected, "{analysis:?}");
        if analysis == GovernorAnalysis::Refined {
            let implicit = bound
                .iter()
                .find(|b| b.event.arm == EventArm::WholeBlock)
                .expect("implicit event");
            assert!(implicit.site.is_none());
            let g = implicit.event.governor.as_ref().expect("governor");
            assert!(g.composed_with_clock);
        }
    }
}
