//! Cycle-indexed test schedules: the *Input* of Algorithm 3.
//!
//! A [`TestSchedule`] fully determines one simulation round: for every
//! cycle, the assertion state of each controllable reset domain and the
//! value of each symbolic data input. Round 1 uses random bits (Algorithm
//! 3 line 3: "Initialize Input ← randombits()"); later rounds come from
//! solver models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use soccar_rtl::design::NetId;
use soccar_rtl::value::LogicVec;

/// One controllable reset domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetTrack {
    /// Domain source name (for reports).
    pub source: String,
    /// The top-level input net driving the domain.
    pub net: NetId,
    /// Assertion polarity.
    pub active_low: bool,
    /// Per-cycle assertion state.
    pub asserted: Vec<bool>,
    /// Cycles whose assertion edge lands *during the clock-high phase*
    /// instead of before the rising edge. Needed to excite implicit
    /// governors composed with a clock level (the Section V-C SHA256
    /// construct) — only the Refined analysis schedules these.
    pub high_phase: Vec<bool>,
}

impl ResetTrack {
    /// The line value at `cycle`.
    #[must_use]
    pub fn value_at(&self, cycle: u64) -> LogicVec {
        let asserted = self.asserted.get(cycle as usize).copied().unwrap_or(false);
        LogicVec::from_u64(1, u64::from(asserted != self.active_low))
    }

    /// Cycles at which the reset asserts after being deasserted.
    #[must_use]
    pub fn assert_edges(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut prev = false;
        for (i, a) in self.asserted.iter().enumerate() {
            if *a && !prev {
                out.push(i as u64);
            }
            prev = *a;
        }
        out
    }
}

/// One symbolic data input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputTrack {
    /// Hierarchical net name.
    pub name: String,
    /// The top-level input net.
    pub net: NetId,
    /// Width in bits.
    pub width: u32,
    /// Per-cycle values.
    pub values: Vec<LogicVec>,
}

/// A complete per-cycle stimulus description for one concolic round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestSchedule {
    /// Simulation horizon in cycles.
    pub cycles: u64,
    /// Reset domain tracks.
    pub resets: Vec<ResetTrack>,
    /// Symbolic data input tracks.
    pub inputs: Vec<InputTrack>,
}

impl TestSchedule {
    /// Creates an all-deasserted, all-zero schedule.
    #[must_use]
    pub fn quiet(
        cycles: u64,
        resets: Vec<(String, NetId, bool)>,
        inputs: Vec<(String, NetId, u32)>,
    ) -> TestSchedule {
        TestSchedule {
            cycles,
            resets: resets
                .into_iter()
                .map(|(source, net, active_low)| ResetTrack {
                    source,
                    net,
                    active_low,
                    asserted: vec![false; cycles as usize],
                    high_phase: vec![false; cycles as usize],
                })
                .collect(),
            inputs: inputs
                .into_iter()
                .map(|(name, net, width)| InputTrack {
                    name,
                    net,
                    width,
                    values: vec![LogicVec::zeros(width); cycles as usize],
                })
                .collect(),
        }
    }

    /// Randomizes the schedule (Algorithm 3 round 1): each domain gets an
    /// initial power-on pulse plus 0–2 random mid-run pulses; inputs get
    /// random bits every cycle.
    pub fn randomize(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cycles = self.cycles as usize;
        for track in &mut self.resets {
            track.asserted = vec![false; cycles];
            track.high_phase = vec![false; cycles];
            // Power-on reset during cycle 0.
            if cycles > 0 {
                track.asserted[0] = true;
            }
            let pulses = rng.gen_range(0..=2u32);
            for _ in 0..pulses {
                if cycles <= 2 {
                    break;
                }
                let at = rng.gen_range(1..cycles);
                let hold = rng.gen_range(1..=2usize);
                for c in at..(at + hold).min(cycles) {
                    track.asserted[c] = true;
                }
            }
        }
        for track in &mut self.inputs {
            for v in &mut track.values {
                let mut nv = LogicVec::zeros(track.width);
                for i in 0..track.width {
                    if rng.gen_bool(0.5) {
                        nv.set_bit(i, soccar_rtl::Bit::One);
                    }
                }
                *v = nv;
            }
        }
    }

    /// Clears all mid-run pulses, keeping only the cycle-0 power-on reset.
    pub fn power_on_only(&mut self) {
        for track in &mut self.resets {
            for (i, a) in track.asserted.iter_mut().enumerate() {
                *a = i == 0;
            }
            track.high_phase.iter_mut().for_each(|h| *h = false);
        }
    }

    /// Adds an assertion pulse to domain `domain_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `domain_idx` is out of range.
    pub fn add_pulse(&mut self, domain_idx: usize, at_cycle: u64, hold: u64) {
        let track = &mut self.resets[domain_idx];
        for c in at_cycle..(at_cycle + hold.max(1)).min(self.cycles) {
            track.asserted[c as usize] = true;
        }
    }

    /// Adds a pulse whose assertion edge lands during the clock-high phase
    /// of `at_cycle` (see [`ResetTrack::high_phase`]).
    ///
    /// # Panics
    ///
    /// Panics if `domain_idx` is out of range.
    pub fn add_high_phase_pulse(&mut self, domain_idx: usize, at_cycle: u64) {
        self.add_pulse(domain_idx, at_cycle, 1);
        let track = &mut self.resets[domain_idx];
        if (at_cycle as usize) < track.high_phase.len() {
            track.high_phase[at_cycle as usize] = true;
        }
    }

    /// Replays the schedule on a fresh **concrete** simulator with
    /// tracing enabled: clocks toggle every cycle, reset tracks and input
    /// tracks apply exactly as the concolic engine drove them (including
    /// clock-high-phase assertion edges). Returns the simulator after the
    /// final cycle, ready for [`soccar_sim::vcd::write_vcd`] or state
    /// inspection.
    ///
    /// `clocks` are the clock input nets (every other top input that is
    /// not covered by a track is held at zero).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn replay_concrete<'d>(
        &self,
        design: &'d soccar_rtl::Design,
        clocks: &[NetId],
    ) -> soccar_sim::SimResult<soccar_sim::Simulator<'d, soccar_sim::ConcreteAlgebra>> {
        use soccar_sim::{InitPolicy, Simulator};
        let mut sim = Simulator::concrete(design, InitPolicy::Ones);
        sim.enable_tracing();
        for net in design.top_inputs().collect::<Vec<_>>() {
            let covered = self.resets.iter().any(|t| t.net == net)
                || self.inputs.iter().any(|t| t.net == net)
                || clocks.contains(&net);
            if !covered {
                let w = design.net(net).width;
                sim.write_input(net, LogicVec::zeros(w))?;
            }
        }
        for track in &self.resets {
            let deassert = LogicVec::from_u64(1, u64::from(track.active_low));
            sim.write_input(track.net, deassert)?;
        }
        for clk in clocks {
            sim.write_input(*clk, LogicVec::from_u64(1, 0))?;
        }
        sim.settle()?;
        for cycle in 0..self.cycles {
            for track in &self.inputs {
                sim.write_input(track.net, track.values[cycle as usize].clone())?;
            }
            for track in &self.resets {
                let hp = track
                    .high_phase
                    .get(cycle as usize)
                    .copied()
                    .unwrap_or(false);
                if !hp {
                    sim.write_input(track.net, track.value_at(cycle))?;
                }
            }
            sim.settle()?;
            for clk in clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 1))?;
            }
            sim.settle()?;
            for track in &self.resets {
                if track
                    .high_phase
                    .get(cycle as usize)
                    .copied()
                    .unwrap_or(false)
                {
                    sim.write_input(track.net, track.value_at(cycle))?;
                    sim.settle()?;
                }
            }
            sim.advance_time(1);
            for clk in clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 0))?;
            }
            sim.settle()?;
            sim.advance_time(1);
        }
        Ok(sim)
    }

    /// A compact single-line description (for reports and witnesses).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for t in &self.resets {
            let edges: Vec<String> = t.assert_edges().iter().map(u64::to_string).collect();
            parts.push(format!("{}@[{}]", t.source, edges.join(",")));
        }
        format!("{} cycles; pulses: {}", self.cycles, parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> TestSchedule {
        TestSchedule::quiet(
            10,
            vec![("top.rst_n".into(), NetId(0), true)],
            vec![("top.d".into(), NetId(1), 8)],
        )
    }

    #[test]
    fn quiet_schedule_is_deasserted() {
        let s = schedule();
        assert_eq!(s.resets[0].asserted, vec![false; 10]);
        // Active-low deasserted = 1.
        assert_eq!(s.resets[0].value_at(3).to_u64(), Some(1));
        assert_eq!(s.inputs[0].values[0].to_u64(), Some(0));
    }

    #[test]
    fn randomize_is_deterministic_and_pulses_poweron() {
        let mut a = schedule();
        let mut b = schedule();
        a.randomize(42);
        b.randomize(42);
        assert_eq!(a, b);
        assert!(a.resets[0].asserted[0], "power-on pulse");
        let mut c = schedule();
        c.randomize(43);
        assert_ne!(a.inputs[0].values, c.inputs[0].values);
    }

    #[test]
    fn pulses_and_edges() {
        let mut s = schedule();
        s.add_pulse(0, 4, 2);
        assert_eq!(s.resets[0].assert_edges(), vec![4]);
        assert!(s.resets[0].asserted[5]);
        assert!(!s.resets[0].asserted[6]);
        // Asserted active-low → line is 0.
        assert_eq!(s.resets[0].value_at(4).to_u64(), Some(0));
        s.add_pulse(0, 0, 1);
        assert_eq!(s.resets[0].assert_edges(), vec![0, 4]);
        s.power_on_only();
        assert_eq!(s.resets[0].assert_edges(), vec![0]);
    }

    #[test]
    fn summary_mentions_pulse_cycles() {
        let mut s = schedule();
        s.add_pulse(0, 2, 1);
        assert!(s.summary().contains("top.rst_n@[2]"));
    }
}
