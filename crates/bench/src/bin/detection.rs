//! **Detection results** — the Section V-C evaluation: SoCCAR run on all
//! five bug-seeded variants, scored red-team/blue-team style.
//!
//! Paper outcome being reproduced: every bug detected in every ClusterSoC
//! variant; in AutoSoC all bugs except the SHA256 information-leakage bug
//! of Variant #2; verification time "a few seconds".

use soccar::evaluation::{evaluate_variant, render_outcomes};
use soccar_bench::{paper_config, render_table};

fn main() {
    let mut rows = Vec::new();
    let mut details = String::new();
    for spec in soccar_soc::variants() {
        let eval =
            evaluate_variant(&spec, paper_config()).expect("benchmark variants always evaluate");
        details.push_str(&render_outcomes(&eval));
        details.push('\n');
        rows.push(vec![
            eval.variant.clone(),
            format!("{}/{}", eval.detected(), eval.outcomes.len()),
            eval.false_alarms.len().to_string(),
            format!("{:.2}", eval.verification_time().as_secs_f64()),
            expected(&eval.variant),
        ]);
    }
    println!("Detection results (Section V-C, Explicit governor analysis)");
    println!(
        "{}",
        render_table(
            &[
                "Variant",
                "Detected",
                "False alarms",
                "Seconds",
                "Paper expectation"
            ],
            &rows
        )
    );
    println!("{details}");
}

fn expected(variant: &str) -> String {
    if variant == "AutoSoC Variant #2" {
        "all but the SHA256 leak".to_owned()
    } else {
        "all detected".to_owned()
    }
}
