//! Constant expression evaluation over a parameter environment.
//!
//! Used during elaboration for parameter values, packed/unpacked ranges,
//! replication counts and case labels. The evaluator implements the same
//! operator semantics as [`crate::value::LogicVec`]; any reference to a
//! non-parameter identifier is an error.

use std::collections::HashMap;

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::{RtlError, RtlErrorKind, RtlResult};
use crate::value::LogicVec;

/// A constant-evaluation environment: parameter name → value.
#[derive(Debug, Clone, Default)]
pub struct ConstEnv {
    values: HashMap<String, LogicVec>,
}

impl ConstEnv {
    /// Creates an empty environment.
    #[must_use]
    pub fn new() -> ConstEnv {
        ConstEnv::default()
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn bind(&mut self, name: impl Into<String>, value: LogicVec) {
        self.values.insert(name.into(), value);
    }

    /// Looks up a binding.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&LogicVec> {
        self.values.get(name)
    }

    /// Iterates over all bindings (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LogicVec)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Evaluates a constant expression.
///
/// # Errors
///
/// Returns a [`RtlErrorKind::Semantic`] error if the expression references
/// an identifier that is not bound in `env`, or uses a construct that is
/// not constant (selects on non-parameters, memory reads).
pub fn eval_const(expr: &Expr, env: &ConstEnv) -> RtlResult<LogicVec> {
    match expr {
        Expr::Number { value, .. } => Ok(value.clone()),
        Expr::Ident { name, span } => env.get(name).cloned().ok_or_else(|| {
            RtlError::new(
                RtlErrorKind::Semantic,
                format!("`{name}` is not a constant in this context"),
                *span,
            )
        }),
        Expr::Unary { op, operand, .. } => {
            let v = eval_const(operand, env)?;
            Ok(match op {
                UnaryOp::Not => v.not(),
                UnaryOp::LogicalNot => v.logical_not(),
                UnaryOp::Neg => v.neg(),
                UnaryOp::Plus => v,
                UnaryOp::RedAnd => v.reduce_and(),
                UnaryOp::RedOr => v.reduce_or(),
                UnaryOp::RedXor => v.reduce_xor(),
                UnaryOp::RedNand => v.reduce_and().not(),
                UnaryOp::RedNor => v.reduce_or().not(),
                UnaryOp::RedXnor => v.reduce_xor().not(),
            })
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let a = eval_const(lhs, env)?;
            let b = eval_const(rhs, env)?;
            Ok(match op {
                BinaryOp::Add => a.add(&b),
                BinaryOp::Sub => a.sub(&b),
                BinaryOp::Mul => a.mul(&b),
                BinaryOp::Div => a.udiv(&b),
                BinaryOp::Mod => a.urem(&b),
                BinaryOp::Pow => {
                    let base = a.to_u64().ok_or_else(|| {
                        RtlError::new(RtlErrorKind::Semantic, "non-constant power base", *span)
                    })?;
                    let exp = b.to_u64().ok_or_else(|| {
                        RtlError::new(RtlErrorKind::Semantic, "non-constant power exponent", *span)
                    })?;
                    let mut acc: u64 = 1;
                    for _ in 0..exp {
                        acc = acc.wrapping_mul(base);
                    }
                    LogicVec::from_u64(a.width().max(32), acc)
                }
                BinaryOp::And => a.and(&b),
                BinaryOp::Or => a.or(&b),
                BinaryOp::Xor => a.xor(&b),
                BinaryOp::Xnor => a.xor(&b).not(),
                BinaryOp::LogicalAnd => a.logical_and(&b),
                BinaryOp::LogicalOr => a.logical_or(&b),
                BinaryOp::Eq => a.eq_logic(&b),
                BinaryOp::Ne => a.ne_logic(&b),
                BinaryOp::CaseEq => a.case_eq(&b),
                BinaryOp::CaseNe => a.case_eq(&b).logical_not(),
                BinaryOp::Lt => a.ult(&b),
                BinaryOp::Le => a.ule(&b),
                BinaryOp::Gt => b.ult(&a),
                BinaryOp::Ge => b.ule(&a),
                BinaryOp::Shl => a.shl(&b),
                BinaryOp::Shr => a.lshr(&b),
                BinaryOp::AShr => a.ashr(&b),
            })
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            span,
        } => {
            let c = eval_const(cond, env)?;
            match c.truthy() {
                Some(true) => eval_const(then_expr, env),
                Some(false) => eval_const(else_expr, env),
                None => Err(RtlError::new(
                    RtlErrorKind::Semantic,
                    "unknown condition in constant expression",
                    *span,
                )),
            }
        }
        Expr::Concat { parts, .. } => {
            let mut vals = parts
                .iter()
                .map(|p| eval_const(p, env))
                .collect::<RtlResult<Vec<_>>>()?;
            let mut acc = vals.remove(0);
            for v in vals {
                acc = acc.concat(&v);
            }
            Ok(acc)
        }
        Expr::Repeat { count, expr, span } => {
            let c = eval_const(count, env)?
                .to_u64()
                .filter(|c| *c > 0)
                .ok_or_else(|| {
                    RtlError::new(
                        RtlErrorKind::Semantic,
                        "replication count must be a positive constant",
                        *span,
                    )
                })?;
            Ok(eval_const(expr, env)?.replicate(c as u32))
        }
        Expr::Index { span, .. }
        | Expr::PartSelect { span, .. }
        | Expr::IndexedPartSelect { span, .. } => Err(RtlError::new(
            RtlErrorKind::Semantic,
            "selects are not supported in constant expressions",
            *span,
        )),
    }
}

/// Evaluates a constant expression to a `u64`.
///
/// # Errors
///
/// As [`eval_const`], plus an error if the result has unknown bits or does
/// not fit in 64 bits.
pub fn eval_const_u64(expr: &Expr, env: &ConstEnv) -> RtlResult<u64> {
    let v = eval_const(expr, env)?;
    v.to_u64().ok_or_else(|| {
        RtlError::new(
            RtlErrorKind::Semantic,
            "constant expression has unknown bits or exceeds 64 bits",
            expr.span(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::span::FileId;

    fn expr_of(src: &str) -> Expr {
        // Wrap in a module with a localparam so we can reuse the parser.
        let unit = parse(
            FileId(0),
            &format!("module m; localparam P = {src}; endmodule"),
        )
        .expect("parse");
        match &unit.modules[0].items[0] {
            crate::ast::Item::Param(p) => p.value.clone(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_folding() {
        let env = ConstEnv::new();
        assert_eq!(eval_const_u64(&expr_of("2 + 3 * 4"), &env).expect("ok"), 14);
        assert_eq!(
            eval_const_u64(&expr_of("(1 << 4) - 1"), &env).expect("ok"),
            15
        );
        assert_eq!(eval_const_u64(&expr_of("2 ** 10"), &env).expect("ok"), 1024);
    }

    #[test]
    fn parameters_resolve() {
        let mut env = ConstEnv::new();
        env.bind("W", LogicVec::from_u64(32, 8));
        assert_eq!(eval_const_u64(&expr_of("W - 1"), &env).expect("ok"), 7);
        assert_eq!(eval_const_u64(&expr_of("W * 2 + 1"), &env).expect("ok"), 17);
    }

    #[test]
    fn unbound_identifier_errors() {
        let env = ConstEnv::new();
        let err = eval_const(&expr_of("UNDEFINED + 1"), &env).expect_err("must fail");
        assert_eq!(err.kind, RtlErrorKind::Semantic);
        assert!(err.message.contains("UNDEFINED"));
    }

    #[test]
    fn ternary_and_comparison() {
        let mut env = ConstEnv::new();
        env.bind("W", LogicVec::from_u64(32, 16));
        assert_eq!(
            eval_const_u64(&expr_of("W > 8 ? 2 : 1"), &env).expect("ok"),
            2
        );
    }

    #[test]
    fn concat_and_repeat() {
        let env = ConstEnv::new();
        assert_eq!(
            eval_const_u64(&expr_of("{4'hA, 4'h5}"), &env).expect("ok"),
            0xA5
        );
        assert_eq!(
            eval_const_u64(&expr_of("{3{2'b10}}"), &env).expect("ok"),
            0b10_10_10
        );
    }

    #[test]
    fn x_result_rejected_by_u64() {
        let env = ConstEnv::new();
        assert!(eval_const_u64(&expr_of("4'bxxxx + 1"), &env).is_err());
    }
}
