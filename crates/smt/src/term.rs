//! Hash-consed bit-vector term graph with constructor-time rewriting.
//!
//! Terms are immutable and structurally deduplicated: building the same
//! expression twice yields the same [`TermId`]. Constructors apply local
//! rewrite rules (constant folding, identity/annihilator elimination,
//! double negation, `x ⊕ x = 0`, `ite` collapsing, …) so the formulas the
//! concolic engine accumulates stay small before they ever reach the
//! bit-blaster. The corresponding ablation is measured by the paper-bench
//! `bench_solver`.

use std::collections::HashMap;
use std::fmt;

use crate::bv::BvVal;

/// Identifies a term in a [`TermGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Term node. Widths live in the graph, parallel to the nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Free variable (deduplicated by name).
    Var(String),
    /// Constant.
    Const(BvVal),
    /// Bitwise NOT.
    Not(TermId),
    /// Bitwise AND (equal widths).
    And(TermId, TermId),
    /// Bitwise OR (equal widths).
    Or(TermId, TermId),
    /// Bitwise XOR (equal widths).
    Xor(TermId, TermId),
    /// Two's-complement addition.
    Add(TermId, TermId),
    /// Two's-complement subtraction.
    Sub(TermId, TermId),
    /// Multiplication (low half).
    Mul(TermId, TermId),
    /// Unsigned division (fixed semantics: `x/0 = ones`).
    Udiv(TermId, TermId),
    /// Unsigned remainder (fixed semantics: `x%0 = x`).
    Urem(TermId, TermId),
    /// Logical shift left by a (possibly wider/narrower) amount.
    Shl(TermId, TermId),
    /// Logical shift right.
    Lshr(TermId, TermId),
    /// Arithmetic shift right.
    Ashr(TermId, TermId),
    /// Equality; 1-bit result.
    Eq(TermId, TermId),
    /// Unsigned less-than; 1-bit result.
    Ult(TermId, TermId),
    /// Unsigned less-or-equal; 1-bit result.
    Ule(TermId, TermId),
    /// If-then-else on a 1-bit condition.
    Ite(TermId, TermId, TermId),
    /// Concatenation; first operand is the high part.
    Concat(TermId, TermId),
    /// Bit range `[lo ..= hi]`.
    Extract {
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
        /// Extracted term.
        arg: TermId,
    },
    /// Zero-extension to a wider width.
    ZExt {
        /// New width.
        width: u32,
        /// Extended term.
        arg: TermId,
    },
    /// Reduction AND; 1-bit result.
    RedAnd(TermId),
    /// Reduction OR; 1-bit result.
    RedOr(TermId),
    /// Reduction XOR; 1-bit result.
    RedXor(TermId),
}

impl Term {
    /// Calls `f` on each operand term id, in operand order.
    pub fn for_each_operand(&self, mut f: impl FnMut(TermId)) {
        match self {
            Term::Var(_) | Term::Const(_) => {}
            Term::Not(a)
            | Term::RedAnd(a)
            | Term::RedOr(a)
            | Term::RedXor(a)
            | Term::Extract { arg: a, .. }
            | Term::ZExt { arg: a, .. } => f(*a),
            Term::And(a, b)
            | Term::Or(a, b)
            | Term::Xor(a, b)
            | Term::Add(a, b)
            | Term::Sub(a, b)
            | Term::Mul(a, b)
            | Term::Udiv(a, b)
            | Term::Urem(a, b)
            | Term::Shl(a, b)
            | Term::Lshr(a, b)
            | Term::Ashr(a, b)
            | Term::Eq(a, b)
            | Term::Ult(a, b)
            | Term::Ule(a, b)
            | Term::Concat(a, b) => {
                f(*a);
                f(*b);
            }
            Term::Ite(c, t, e) => {
                f(*c);
                f(*t);
                f(*e);
            }
        }
    }
}

/// The arena of hash-consed terms.
///
/// # Examples
///
/// ```
/// use soccar_smt::{BvVal, TermGraph};
///
/// let mut g = TermGraph::new();
/// let x = g.var("x", 8);
/// let zero = g.constant(BvVal::zeros(8));
/// // x + 0 rewrites to x at construction.
/// assert_eq!(g.add(x, zero), x);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermGraph {
    terms: Vec<Term>,
    widths: Vec<u32>,
    dedup: HashMap<Term, TermId>,
    vars: Vec<TermId>,
}

impl TermGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> TermGraph {
        TermGraph::default()
    }

    /// Number of nodes in the graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if no terms have been created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// The width of `id` in bits.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    #[must_use]
    pub fn width(&self, id: TermId) -> u32 {
        self.widths[id.0 as usize]
    }

    /// All variable terms created so far, in creation order.
    #[must_use]
    pub fn vars(&self) -> &[TermId] {
        &self.vars
    }

    /// The constant value of `id`, if it is a constant node.
    #[must_use]
    pub fn as_const(&self, id: TermId) -> Option<&BvVal> {
        match self.term(id) {
            Term::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Deterministic structural fingerprint of the sub-DAG reachable from
    /// `roots`: an FNV-1a hash over `(id, node, width)` of every reachable
    /// term, visited in ascending id order.
    ///
    /// Two graphs with equal fingerprints for the same roots assign
    /// identical meaning to every reachable [`TermId`], so solver state
    /// blasted against one (CNF clauses, learnt clauses) remains valid
    /// against the other. The analysis server uses this as the key for
    /// retaining warm [`crate::solver::Solver`] base contexts across
    /// requests.
    #[must_use]
    pub fn reachable_fingerprint(&self, roots: &[TermId]) -> u64 {
        let mut seen = vec![false; self.terms.len()];
        let mut stack: Vec<TermId> = Vec::with_capacity(roots.len());
        for &r in roots {
            if !seen[r.0 as usize] {
                seen[r.0 as usize] = true;
                stack.push(r);
            }
        }
        while let Some(id) = stack.pop() {
            self.term(id).for_each_operand(|op| {
                if !seen[op.0 as usize] {
                    seen[op.0 as usize] = true;
                    stack.push(op);
                }
            });
        }
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (i, reachable) in seen.iter().enumerate() {
            if !reachable {
                continue;
            }
            let id = TermId(i as u32);
            // Debug form is a stable, lossless rendering of the node
            // (variant name, operand ids, constant bits).
            eat(format!("{i}:{:?}@{};", self.term(id), self.width(id)).as_bytes());
        }
        h
    }

    fn intern(&mut self, t: Term, width: u32) -> TermId {
        if let Some(id) = self.dedup.get(&t) {
            return *id;
        }
        let id = TermId(self.terms.len() as u32);
        self.dedup.insert(t.clone(), id);
        if matches!(t, Term::Var(_)) {
            self.vars.push(id);
        }
        self.terms.push(t);
        self.widths.push(width);
        id
    }

    /// Creates (or retrieves) a variable.
    ///
    /// # Panics
    ///
    /// Panics if the same name was previously created with a different
    /// width, or `width` is zero.
    pub fn var(&mut self, name: impl Into<String>, width: u32) -> TermId {
        assert!(width > 0, "zero-width variable");
        let t = Term::Var(name.into());
        if let Some(id) = self.dedup.get(&t) {
            assert_eq!(
                self.widths[id.0 as usize], width,
                "variable recreated with different width"
            );
            return *id;
        }
        self.intern(t, width)
    }

    /// Creates a constant term.
    pub fn constant(&mut self, v: BvVal) -> TermId {
        let w = v.width();
        self.intern(Term::Const(v), w)
    }

    /// Shorthand: `width`-bit constant from a `u64`.
    pub fn const_u64(&mut self, width: u32, x: u64) -> TermId {
        self.constant(BvVal::from_u64(width, x))
    }

    /// The 1-bit constant `1`.
    pub fn tru(&mut self) -> TermId {
        self.const_u64(1, 1)
    }

    /// The 1-bit constant `0`.
    pub fn fls(&mut self) -> TermId {
        self.const_u64(1, 0)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(c) = self.as_const(a) {
            let v = c.not();
            return self.constant(v);
        }
        if let Term::Not(inner) = *self.term(a) {
            return inner;
        }
        self.intern(Term::Not(a), w)
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        if a == b {
            return a;
        }
        let (a, b) = sort_pair(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.and(y);
            return self.constant(v);
        }
        if let Some(c) = self.as_const(a).or_else(|| self.as_const(b)) {
            let (c, other) = if self.as_const(a).is_some() {
                (c.clone(), b)
            } else {
                (c.clone(), a)
            };
            if c.is_zero() {
                return self.constant(BvVal::zeros(w));
            }
            if c == BvVal::ones(w) {
                return other;
            }
        }
        self.intern(Term::And(a, b), w)
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        if a == b {
            return a;
        }
        let (a, b) = sort_pair(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.or(y);
            return self.constant(v);
        }
        if let Some(c) = self.as_const(a).or_else(|| self.as_const(b)) {
            let (c, other) = if self.as_const(a).is_some() {
                (c.clone(), b)
            } else {
                (c.clone(), a)
            };
            if c.is_zero() {
                return other;
            }
            if c == BvVal::ones(w) {
                return self.constant(BvVal::ones(w));
            }
        }
        self.intern(Term::Or(a, b), w)
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        if a == b {
            return self.constant(BvVal::zeros(w));
        }
        let (a, b) = sort_pair(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.xor(y);
            return self.constant(v);
        }
        if let Some(c) = self.as_const(a).or_else(|| self.as_const(b)) {
            let (c, other) = if self.as_const(a).is_some() {
                (c.clone(), b)
            } else {
                (c.clone(), a)
            };
            if c.is_zero() {
                return other;
            }
            if c == BvVal::ones(w) {
                return self.not(other);
            }
        }
        self.intern(Term::Xor(a, b), w)
    }

    /// Addition.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = sort_pair(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.add(y);
            return self.constant(v);
        }
        if self.as_const(a).is_some_and(BvVal::is_zero) {
            return b;
        }
        if self.as_const(b).is_some_and(BvVal::is_zero) {
            return a;
        }
        let _ = w;
        self.intern(Term::Add(a, b), w)
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        if a == b {
            return self.constant(BvVal::zeros(w));
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.sub(y);
            return self.constant(v);
        }
        if self.as_const(b).is_some_and(BvVal::is_zero) {
            return a;
        }
        self.intern(Term::Sub(a, b), w)
    }

    /// Multiplication.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = sort_pair(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.mul(y);
            return self.constant(v);
        }
        if let Some(c) = self.as_const(a).or_else(|| self.as_const(b)) {
            let (c, other) = if self.as_const(a).is_some() {
                (c.clone(), b)
            } else {
                (c.clone(), a)
            };
            if c.is_zero() {
                return self.constant(BvVal::zeros(w));
            }
            if c.to_u64() == Some(1) {
                return other;
            }
        }
        self.intern(Term::Mul(a, b), w)
    }

    /// Unsigned division (`x/0 = ones` fixed semantics).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn udiv(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.udivrem(y).0;
            return self.constant(v);
        }
        self.intern(Term::Udiv(a, b), w)
    }

    /// Unsigned remainder (`x%0 = x` fixed semantics).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn urem(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = x.udivrem(y).1;
            return self.constant(v);
        }
        self.intern(Term::Urem(a, b), w)
    }

    fn shift(
        &mut self,
        mk: fn(TermId, TermId) -> Term,
        f: fn(&BvVal, u32) -> BvVal,
        a: TermId,
        b: TermId,
    ) -> TermId {
        let w = self.width(a);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let amt = y.to_u64().unwrap_or(u64::from(w)).min(u64::from(w)) as u32;
            let v = f(x, amt);
            return self.constant(v);
        }
        if self.as_const(b).is_some_and(BvVal::is_zero) {
            return a;
        }
        self.intern(mk(a, b), w)
    }

    /// Logical shift left (amount width is independent).
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.shift(Term::Shl, BvVal::shl, a, b)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.shift(Term::Lshr, BvVal::lshr, a, b)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.shift(Term::Ashr, BvVal::ashr, a, b)
    }

    /// Equality (1-bit result).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_width(a, b);
        if a == b {
            return self.tru();
        }
        let (a, b) = sort_pair(a, b);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = u64::from(x == y);
            return self.const_u64(1, v);
        }
        self.intern(Term::Eq(a, b), 1)
    }

    /// Logical negation of a 1-bit term (alias of [`TermGraph::not`]).
    pub fn not1(&mut self, a: TermId) -> TermId {
        debug_assert_eq!(self.width(a), 1);
        self.not(a)
    }

    /// Inequality (1-bit result).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than (1-bit result).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_width(a, b);
        if a == b {
            return self.fls();
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = u64::from(x.ult(y));
            return self.const_u64(1, v);
        }
        self.intern(Term::Ult(a, b), 1)
    }

    /// Unsigned less-or-equal (1-bit result).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        self.binop_width(a, b);
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = u64::from(!y.ult(x));
            return self.const_u64(1, v);
        }
        self.intern(Term::Ule(a, b), 1)
    }

    /// If-then-else.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not 1 bit wide or arm widths differ.
    pub fn ite(&mut self, cond: TermId, t: TermId, e: TermId) -> TermId {
        assert_eq!(self.width(cond), 1, "ite condition must be 1 bit");
        let w = self.binop_width(t, e);
        if t == e {
            return t;
        }
        if let Some(c) = self.as_const(cond) {
            return if c.is_zero() { e } else { t };
        }
        self.intern(Term::Ite(cond, t, e), w)
    }

    /// Concatenation (`hi` takes the upper bits).
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let w = self.width(hi) + self.width(lo);
        if let (Some(x), Some(y)) = (self.as_const(hi), self.as_const(lo)) {
            let v = x.concat(y);
            return self.constant(v);
        }
        self.intern(Term::Concat(hi, lo), w)
    }

    /// Extraction of bits `[lo ..= hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid for the operand width.
    pub fn extract(&mut self, hi: u32, lo: u32, arg: TermId) -> TermId {
        let w = self.width(arg);
        assert!(
            hi >= lo && hi < w,
            "bad extract [{hi}:{lo}] of {w}-bit term"
        );
        if lo == 0 && hi == w - 1 {
            return arg;
        }
        if let Some(c) = self.as_const(arg) {
            let v = c.extract(hi, lo);
            return self.constant(v);
        }
        // extract(extract(x)) → single extract
        if let Term::Extract {
            hi: _,
            lo: ilo,
            arg: inner,
        } = *self.term(arg)
        {
            return self.extract(ilo + hi, ilo + lo, inner);
        }
        self.intern(Term::Extract { hi, lo, arg }, hi - lo + 1)
    }

    /// Zero-extension (or identity when `width` equals the operand width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width.
    pub fn zext(&mut self, arg: TermId, width: u32) -> TermId {
        let w = self.width(arg);
        assert!(width >= w, "zext cannot narrow");
        if width == w {
            return arg;
        }
        if let Some(c) = self.as_const(arg) {
            let v = c.resize(width);
            return self.constant(v);
        }
        self.intern(Term::ZExt { width, arg }, width)
    }

    /// Zero-extend or extract to reach exactly `width`.
    pub fn resize(&mut self, arg: TermId, width: u32) -> TermId {
        let w = self.width(arg);
        if width == w {
            arg
        } else if width > w {
            self.zext(arg, width)
        } else {
            self.extract(width - 1, 0, arg)
        }
    }

    /// Reduction AND.
    pub fn red_and(&mut self, a: TermId) -> TermId {
        if self.width(a) == 1 {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            let v = u64::from(*c == BvVal::ones(c.width()));
            return self.const_u64(1, v);
        }
        self.intern(Term::RedAnd(a), 1)
    }

    /// Reduction OR.
    pub fn red_or(&mut self, a: TermId) -> TermId {
        if self.width(a) == 1 {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            let v = u64::from(!c.is_zero());
            return self.const_u64(1, v);
        }
        self.intern(Term::RedOr(a), 1)
    }

    /// Reduction XOR.
    pub fn red_xor(&mut self, a: TermId) -> TermId {
        if self.width(a) == 1 {
            return a;
        }
        if let Some(c) = self.as_const(a) {
            let v = u64::from(c.iter_bits().filter(|b| *b).count() % 2 == 1);
            return self.const_u64(1, v);
        }
        self.intern(Term::RedXor(a), 1)
    }

    /// 1-bit AND convenience for path constraints.
    pub fn and1(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(a, b)
    }

    fn binop_width(&self, a: TermId, b: TermId) -> u32 {
        let (wa, wb) = (self.width(a), self.width(b));
        assert_eq!(wa, wb, "operand width mismatch: {wa} vs {wb}");
        wa
    }

    /// Evaluates `id` under `env` (variable term → value). The reference
    /// semantics the bit-blaster is tested against.
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from `env` or widths disagree.
    #[must_use]
    pub fn eval(&self, id: TermId, env: &HashMap<TermId, BvVal>) -> BvVal {
        let shift_amt =
            |v: &BvVal, w: u32| v.to_u64().unwrap_or(u64::from(w)).min(u64::from(w)) as u32;
        match self.term(id) {
            Term::Var(name) => {
                let v = env
                    .get(&id)
                    .unwrap_or_else(|| panic!("variable `{name}` not in environment"));
                assert_eq!(v.width(), self.width(id), "env width mismatch for {name}");
                v.clone()
            }
            Term::Const(c) => c.clone(),
            Term::Not(a) => self.eval(*a, env).not(),
            Term::And(a, b) => self.eval(*a, env).and(&self.eval(*b, env)),
            Term::Or(a, b) => self.eval(*a, env).or(&self.eval(*b, env)),
            Term::Xor(a, b) => self.eval(*a, env).xor(&self.eval(*b, env)),
            Term::Add(a, b) => self.eval(*a, env).add(&self.eval(*b, env)),
            Term::Sub(a, b) => self.eval(*a, env).sub(&self.eval(*b, env)),
            Term::Mul(a, b) => self.eval(*a, env).mul(&self.eval(*b, env)),
            Term::Udiv(a, b) => self.eval(*a, env).udivrem(&self.eval(*b, env)).0,
            Term::Urem(a, b) => self.eval(*a, env).udivrem(&self.eval(*b, env)).1,
            Term::Shl(a, b) => {
                let x = self.eval(*a, env);
                let y = self.eval(*b, env);
                let w = x.width();
                x.shl(shift_amt(&y, w))
            }
            Term::Lshr(a, b) => {
                let x = self.eval(*a, env);
                let y = self.eval(*b, env);
                let w = x.width();
                x.lshr(shift_amt(&y, w))
            }
            Term::Ashr(a, b) => {
                let x = self.eval(*a, env);
                let y = self.eval(*b, env);
                let w = x.width();
                x.ashr(shift_amt(&y, w))
            }
            Term::Eq(a, b) => {
                BvVal::from_u64(1, u64::from(self.eval(*a, env) == self.eval(*b, env)))
            }
            Term::Ult(a, b) => {
                BvVal::from_u64(1, u64::from(self.eval(*a, env).ult(&self.eval(*b, env))))
            }
            Term::Ule(a, b) => {
                BvVal::from_u64(1, u64::from(!self.eval(*b, env).ult(&self.eval(*a, env))))
            }
            Term::Ite(c, t, e) => {
                if self.eval(*c, env).is_zero() {
                    self.eval(*e, env)
                } else {
                    self.eval(*t, env)
                }
            }
            Term::Concat(hi, lo) => self.eval(*hi, env).concat(&self.eval(*lo, env)),
            Term::Extract { hi, lo, arg } => self.eval(*arg, env).extract(*hi, *lo),
            Term::ZExt { width, arg } => self.eval(*arg, env).resize(*width),
            Term::RedAnd(a) => {
                let v = self.eval(*a, env);
                BvVal::from_u64(1, u64::from(v == BvVal::ones(v.width())))
            }
            Term::RedOr(a) => BvVal::from_u64(1, u64::from(!self.eval(*a, env).is_zero())),
            Term::RedXor(a) => BvVal::from_u64(
                1,
                u64::from(self.eval(*a, env).iter_bits().filter(|b| *b).count() % 2 == 1),
            ),
        }
    }
}

/// Commutative operands are ordered for better structural sharing.
fn sort_pair(a: TermId, b: TermId) -> (TermId, TermId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let y = g.var("y", 8);
        let a = g.add(x, y);
        let b = g.add(y, x); // commutative normalization
        assert_eq!(a, b);
        assert_eq!(g.var("x", 8), x);
    }

    #[test]
    fn reachable_fingerprint_tracks_structure_not_garbage() {
        let build = |extra: bool| {
            let mut g = TermGraph::new();
            let x = g.var("x", 8);
            let y = g.var("y", 8);
            let sum = g.add(x, y);
            let c = g.const_u64(8, 7);
            let root = g.eq(sum, c);
            if extra {
                // Unreachable from `root`: must not affect the fingerprint.
                let z = g.var("z", 8);
                g.mul(z, z);
            }
            (g, root)
        };
        let (g1, r1) = build(false);
        let (g2, r2) = build(true);
        assert_eq!(r1, r2);
        assert_eq!(
            g1.reachable_fingerprint(&[r1]),
            g2.reachable_fingerprint(&[r2])
        );

        // A structural change under the same root ids changes the hash.
        let mut g3 = TermGraph::new();
        let x = g3.var("x", 8);
        let y = g3.var("y", 8);
        let sum = g3.sub(x, y);
        let c = g3.const_u64(8, 7);
        let r3 = g3.eq(sum, c);
        assert_ne!(
            g1.reachable_fingerprint(&[r1]),
            g3.reachable_fingerprint(&[r3])
        );

        // Empty roots hash consistently.
        assert_eq!(g1.reachable_fingerprint(&[]), g3.reachable_fingerprint(&[]));
    }

    #[test]
    #[should_panic(expected = "different width")]
    fn var_width_conflict_panics() {
        let mut g = TermGraph::new();
        g.var("x", 8);
        g.var("x", 4);
    }

    #[test]
    fn constant_folding() {
        let mut g = TermGraph::new();
        let a = g.const_u64(8, 12);
        let b = g.const_u64(8, 30);
        let s = g.add(a, b);
        assert_eq!(g.as_const(s).and_then(BvVal::to_u64), Some(42));
        let p = g.mul(a, b);
        assert_eq!(
            g.as_const(p).and_then(BvVal::to_u64),
            Some((12 * 30) & 0xFF)
        );
        let lt = g.ult(a, b);
        assert_eq!(g.as_const(lt).and_then(BvVal::to_u64), Some(1));
    }

    #[test]
    fn identity_rules() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let zero = g.constant(BvVal::zeros(8));
        let ones = g.constant(BvVal::ones(8));
        assert_eq!(g.add(x, zero), x);
        assert_eq!(g.sub(x, zero), x);
        assert_eq!(g.and(x, ones), x);
        assert_eq!(g.and(x, zero), zero);
        assert_eq!(g.or(x, zero), x);
        assert_eq!(g.or(x, ones), ones);
        assert_eq!(g.xor(x, zero), x);
        let xx = g.xor(x, x);
        assert_eq!(g.as_const(xx).map(BvVal::is_zero), Some(true));
        let nn = g.not(x);
        assert_eq!(g.not(nn), x);
        let sx = g.sub(x, x);
        assert!(g.as_const(sx).is_some());
    }

    #[test]
    fn ite_collapsing() {
        let mut g = TermGraph::new();
        let c = g.var("c", 1);
        let x = g.var("x", 4);
        let y = g.var("y", 4);
        assert_eq!(g.ite(c, x, x), x);
        let t = g.tru();
        assert_eq!(g.ite(t, x, y), x);
        let f = g.fls();
        assert_eq!(g.ite(f, x, y), y);
    }

    #[test]
    fn extract_of_extract_fuses() {
        let mut g = TermGraph::new();
        let x = g.var("x", 16);
        let a = g.extract(11, 4, x); // 8 bits
        let b = g.extract(5, 2, a); // bits 6..=9 of x
        match *g.term(b) {
            Term::Extract { hi, lo, arg } => {
                assert_eq!((hi, lo), (9, 6));
                assert_eq!(arg, x);
            }
            ref other => panic!("{other:?}"),
        }
        assert_eq!(g.extract(15, 0, x), x);
    }

    #[test]
    fn eval_matches_ops() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let y = g.var("y", 8);
        let e1 = g.add(x, y);
        let e2 = g.mul(e1, x);
        let c = g.ult(e2, y);
        let mut env = HashMap::new();
        env.insert(x, BvVal::from_u64(8, 3));
        env.insert(y, BvVal::from_u64(8, 100));
        // (3+100)*3 = 309 & 0xFF = 53; 53 < 100 → 1
        assert_eq!(g.eval(e2, &env).to_u64(), Some(53));
        assert_eq!(g.eval(c, &env).to_u64(), Some(1));
    }

    #[test]
    fn resize_both_directions() {
        let mut g = TermGraph::new();
        let x = g.var("x", 8);
        let widened = g.resize(x, 12);
        assert_eq!(g.width(widened), 12);
        let narrowed = g.resize(x, 4);
        assert_eq!(g.width(narrowed), 4);
        assert_eq!(g.resize(x, 8), x);
    }
}
