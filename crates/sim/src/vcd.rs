//! Minimal VCD (Value Change Dump) writer.
//!
//! Renders a recorded simulation trace (see
//! [`Simulator::enable_tracing`](crate::Simulator::enable_tracing)) to the
//! standard IEEE-1364 VCD text format, viewable in GTKWave & co. Useful when
//! debugging why a security property fired.

use std::fmt::Write as _;

use soccar_rtl::design::{Design, NetId};
use soccar_rtl::value::LogicVec;

use crate::sim::TraceEvent;

/// Writes a VCD document for `events` over the nets of `design`.
///
/// Nets are declared grouped by instance scope. Only nets that appear in
/// `events` (plus any in `always_dump`) are declared.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soccar_sim::{vcd::write_vcd, InitPolicy, Simulator};
///
/// let (design, _) = soccar_rtl::compile("t.v",
///     "module t(input a, output y); assign y = ~a; endmodule", "t")?;
/// let mut sim = Simulator::concrete(&design, InitPolicy::X);
/// sim.enable_tracing();
/// let a = design.find_net("t.a").expect("a");
/// sim.write_input(a, soccar_rtl::LogicVec::from_u64(1, 1))?;
/// sim.settle()?;
/// let vcd = write_vcd(&design, sim.trace(), &[]);
/// assert!(vcd.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn write_vcd(design: &Design, events: &[TraceEvent], always_dump: &[NetId]) -> String {
    let mut nets: Vec<NetId> = events.iter().map(|e| e.net).collect();
    nets.extend_from_slice(always_dump);
    nets.sort_unstable();
    nets.dedup();

    let mut out = String::new();
    out.push_str("$date today $end\n");
    out.push_str("$version soccar-sim $end\n");
    out.push_str("$timescale 1ns $end\n");
    out.push_str("$scope module design $end\n");
    for (i, net) in nets.iter().enumerate() {
        let info = design.net(*net);
        let code = id_code(i);
        let _ = writeln!(
            out,
            "$var wire {} {} {} $end",
            info.width,
            code,
            info.name.replace('.', "_")
        );
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    let mut last_time = u64::MAX;
    for ev in events {
        let Some(pos) = nets.binary_search(&ev.net).ok() else {
            continue;
        };
        if ev.time != last_time {
            let _ = writeln!(out, "#{}", ev.time);
            last_time = ev.time;
        }
        let _ = writeln!(out, "{}", format_change(&ev.value, &id_code(pos)));
    }
    out
}

/// Generates the VCD short identifier for index `i` (printable ASCII 33..).
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn format_change(value: &LogicVec, code: &str) -> String {
    if value.width() == 1 {
        format!("{}{}", value.bit(0), code)
    } else {
        format!("b{value:b} {code}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{InitPolicy, Simulator};

    #[test]
    fn vcd_contains_declared_vars_and_changes() {
        let (design, _) = soccar_rtl::compile(
            "t.v",
            "module t(input [3:0] a, output [3:0] y); assign y = ~a; endmodule",
            "t",
        )
        .expect("compile");
        let mut sim = Simulator::concrete(&design, InitPolicy::X);
        sim.enable_tracing();
        let a = design.find_net("t.a").expect("a");
        sim.write_input(a, LogicVec::from_u64(4, 0b1010))
            .expect("a");
        sim.settle().expect("settle");
        let vcd = write_vcd(&design, sim.trace(), &[]);
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("t_y"));
        assert!(vcd.contains("b0101"));
    }

    #[test]
    fn id_codes_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.bytes().all(|b| (33..127).contains(&b)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn scalar_changes_have_no_space() {
        let v = LogicVec::from_u64(1, 1);
        assert_eq!(format_change(&v, "!"), "1!");
        let w = LogicVec::from_u64(2, 1);
        assert_eq!(format_change(&w, "!"), "b01 !");
    }
}
