//! Bounded-model-checking–style queries: unroll a reset-sensitive counter
//! transition relation over k cycles with free per-cycle reset variables —
//! exactly the formula shape SoCCAR's Algorithm 3 hands the solver — and
//! ask for reset placements reaching target states.

use soccar_smt::{BvVal, CheckResult, Solver, TermGraph, TermId};

/// Builds `q_{t+1} = rst_t ? 0 : q_t + 1` unrolled for `k` cycles from an
/// all-ones initial state. Returns (final-state term, reset vars).
fn unroll_counter(g: &mut TermGraph, k: usize, width: u32) -> (TermId, Vec<TermId>) {
    let mut q = g.constant(BvVal::ones(width));
    let zero = g.constant(BvVal::zeros(width));
    let one = g.const_u64(width, 1);
    let mut resets = Vec::new();
    for t in 0..k {
        let rst = g.var(format!("rst_{t}"), 1);
        resets.push(rst);
        let incremented = g.add(q, one);
        q = g.ite(rst, zero, incremented);
    }
    (q, resets)
}

#[test]
fn solver_places_a_reset_to_reach_a_small_count() {
    // After 8 cycles, reach q == 3: the reset must fire exactly at cycle
    // 8-3-1 = 4 (0-based) and never afterwards.
    let mut g = TermGraph::new();
    let (q, resets) = unroll_counter(&mut g, 8, 8);
    let target = g.const_u64(8, 3);
    let goal = g.eq(q, target);
    let mut s = Solver::new();
    s.assert(goal);
    let CheckResult::Sat(model) = s.check(&g) else {
        panic!("must be satisfiable");
    };
    // Verify by replay.
    let mut v = BvVal::ones(8);
    for rst in &resets {
        let bit = model.value(*rst).expect("assigned").to_u64() == Some(1);
        v = if bit {
            BvVal::zeros(8)
        } else {
            v.add(&BvVal::from_u64(8, 1))
        };
    }
    assert_eq!(v.to_u64(), Some(3), "model replays to the target");
    // The last reset must be at index 4.
    let last = resets
        .iter()
        .rposition(|r| model.value(*r).expect("assigned").to_u64() == Some(1))
        .expect("some reset fired (ones-init cannot count to 3 alone)");
    assert_eq!(last, 4);
}

#[test]
fn unreachable_count_is_unsat() {
    // With 6 cycles, counts above 6 are unreachable from a forced early
    // reset... more precisely: q == 7 requires 7 increments after the
    // last reset, impossible in 6 cycles; without any reset the counter
    // runs from ones (255) so q == 7 is also impossible.
    let mut g = TermGraph::new();
    let (q, _) = unroll_counter(&mut g, 6, 8);
    let target = g.const_u64(8, 7);
    let goal = g.eq(q, target);
    let mut s = Solver::new();
    s.assert(goal);
    assert_eq!(s.check(&g), CheckResult::Unsat);
}

#[test]
fn no_reset_path_counts_from_ones() {
    // Forbid all resets: the only model is 255 + k.
    let k = 5;
    let mut g = TermGraph::new();
    let (q, resets) = unroll_counter(&mut g, k, 8);
    let mut s = Solver::new();
    for r in &resets {
        let nr = g.not(*r);
        s.assert(nr);
    }
    let expect = g.const_u64(8, (255 + k as u64) & 0xFF);
    let goal = g.eq(q, expect);
    s.assert(goal);
    assert!(s.check(&g).is_sat());
    // And any other final value is UNSAT.
    let mut s2 = Solver::new();
    for r in &resets {
        let nr = g.not(*r);
        s2.assert(nr);
    }
    let wrong = g.const_u64(8, 9);
    let goal2 = g.eq(q, wrong);
    s2.assert(goal2);
    assert_eq!(s2.check(&g), CheckResult::Unsat);
}

#[test]
fn deep_unroll_stays_tractable() {
    // 64 cycles × 16-bit state: thousands of gates; the CDCL core must
    // dispatch this in well under a second.
    let mut g = TermGraph::new();
    let (q, _) = unroll_counter(&mut g, 64, 16);
    let target = g.const_u64(16, 40);
    let goal = g.eq(q, target);
    let mut s = Solver::new();
    s.assert(goal);
    let t0 = std::time::Instant::now();
    assert!(s.check(&g).is_sat());
    assert!(
        t0.elapsed().as_secs() < 20,
        "took {:?} ({} vars, {} clauses)",
        t0.elapsed(),
        s.stats().sat_vars,
        s.stats().sat_clauses
    );
}
