//! Elaboration: AST → flattened [`Design`].
//!
//! Responsibilities:
//!
//! * Resolve the instance hierarchy recursively from the named top module,
//!   binding parameter overrides and folding all constant expressions.
//! * Create one [`Net`]/[`Memory`] per declaration per instance, with
//!   hierarchical names (`top.u_cpu.pc`).
//! * Lower statements and expressions into the width-annotated IR, applying
//!   Verilog context-determined width rules (operands of arithmetic and
//!   bitwise operators are extended to the final width *before* the
//!   operation; truncation happens only at the assignment boundary).
//! * Turn port connections into continuous-assignment processes.
//! * Allocate a [`crate::design::BranchSiteId`] for every `if` and every `case` arm so the
//!   CFG extractor and concolic engine can refer to static branches.

use std::collections::HashMap;

use crate::ast::{
    AlwaysBlock, BinaryOp, Declarator, Expr, Instance, Item, Module, NetKind, PortDir, Range,
    Sensitivity, SourceUnit, Stmt, UnaryOp,
};
use crate::constfold::{eval_const, eval_const_u64, ConstEnv};
use crate::design::{
    Design, InstanceId, InstanceInfo, LValue, MemId, Memory, Net, NetId, Process, ProcessId,
    ProcessOrigin, RCaseArm, RExpr, RStmt, SiteInfo, SiteKind, Trigger,
};
use crate::error::{RtlError, RtlErrorKind, RtlResult};
use crate::span::Span;
use crate::value::LogicVec;

const MAX_HIERARCHY_DEPTH: u32 = 64;

/// Elaborates `unit` with `top` as the root module.
///
/// # Errors
///
/// Returns the first semantic or elaboration error: unknown top module,
/// undeclared identifiers, non-constant ranges, port mismatches, unsupported
/// constructs (mixed edge/level sensitivity, non-zero-based packed ranges),
/// or recursive instantiation deeper than 64 levels.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), soccar_rtl::error::RtlError> {
/// use soccar_rtl::{elaborate::elaborate, parser::parse, span::FileId};
///
/// let unit = parse(FileId(0), "module top(input wire a, output wire y);
///   assign y = ~a;
/// endmodule")?;
/// let design = elaborate(&unit, "top")?;
/// assert!(design.find_net("top.a").is_some());
/// # Ok(())
/// # }
/// ```
pub fn elaborate(unit: &SourceUnit, top: &str) -> RtlResult<Design> {
    elaborate_traced(unit, top, &soccar_obs::Recorder::disabled())
}

/// [`elaborate`] under an observability recorder: one `rtl.elaborate`
/// span carrying the elaborated design's size, plus `rtl.nets` /
/// `rtl.processes` / `rtl.branch_sites` counters.
///
/// # Errors
///
/// As [`elaborate`].
pub fn elaborate_traced(
    unit: &SourceUnit,
    top: &str,
    recorder: &soccar_obs::Recorder,
) -> RtlResult<Design> {
    let mut span = soccar_obs::span!(recorder, "rtl.elaborate", top = top);
    let design = elaborate_inner(unit, top)?;
    let stats = design.stats();
    recorder.counter_add("rtl.nets", stats.nets as u64);
    recorder.counter_add("rtl.processes", stats.processes as u64);
    recorder.counter_add("rtl.branch_sites", stats.branch_sites as u64);
    span.record("nets", stats.nets);
    span.record("instances", stats.instances);
    span.record("processes", stats.processes);
    Ok(design)
}

fn elaborate_inner(unit: &SourceUnit, top: &str) -> RtlResult<Design> {
    let mut e = Elaborator {
        unit,
        design: Design::new(top),
    };
    let top_module = unit.module(top).ok_or_else(|| {
        RtlError::new(
            RtlErrorKind::Elaborate,
            format!("top module `{top}` not found"),
            Span::dummy(),
        )
    })?;
    e.instantiate(top_module, top.to_owned(), None, &[], 0)?;
    Ok(e.design)
}

struct Elaborator<'a> {
    unit: &'a SourceUnit,
    design: Design,
}

/// Per-instance symbol table.
struct Scope {
    instance: InstanceId,
    prefix: String,
    consts: ConstEnv,
    nets: HashMap<String, NetId>,
    mems: HashMap<String, MemId>,
}

impl Scope {
    fn err(&self, msg: impl Into<String>, span: Span) -> RtlError {
        RtlError::new(RtlErrorKind::Semantic, msg, span)
    }
}

impl<'a> Elaborator<'a> {
    /// Elaborates one instance of `module`; returns its scope so the parent
    /// can wire ports.
    fn instantiate(
        &mut self,
        module: &Module,
        hier_name: String,
        parent: Option<InstanceId>,
        param_overrides: &[(String, LogicVec)],
        depth: u32,
    ) -> RtlResult<Scope> {
        if depth > MAX_HIERARCHY_DEPTH {
            return Err(RtlError::new(
                RtlErrorKind::Elaborate,
                format!("instance hierarchy deeper than {MAX_HIERARCHY_DEPTH} (recursive instantiation?)"),
                module.span,
            ));
        }
        let instance = self.design.add_instance(InstanceInfo {
            name: hier_name.clone(),
            module: module.name.clone(),
            parent,
            params: Vec::new(),
        });
        let mut scope = Scope {
            instance,
            prefix: hier_name,
            consts: ConstEnv::new(),
            nets: HashMap::new(),
            mems: HashMap::new(),
        };
        // Header parameters: overrides win, defaults may reference earlier
        // parameters.
        let mut resolved_params = Vec::new();
        for p in &module.params {
            let value = match param_overrides.iter().find(|(n, _)| n == &p.name) {
                Some((_, v)) => v.clone(),
                None => eval_const(&p.value, &scope.consts)?,
            };
            scope.consts.bind(&p.name, value.clone());
            resolved_params.push((p.name.clone(), value));
        }
        for (name, _) in param_overrides {
            if !module.params.iter().any(|p| &p.name == name) {
                return Err(RtlError::new(
                    RtlErrorKind::Elaborate,
                    format!("module `{}` has no parameter `{name}`", module.name),
                    module.span,
                ));
            }
        }
        // Record resolved parameters on the instance (the entry was added
        // before parameter defaults were folded).
        self.design.instance_mut(instance).params = resolved_params;

        // Ports become nets.
        let is_top = parent.is_none();
        for port in &module.ports {
            let width = self.range_width(port.range.as_ref(), &scope)?;
            let id = self.design.add_net(Net {
                name: format!("{}.{}", scope.prefix, port.name),
                local_name: port.name.clone(),
                width,
                kind: port.kind,
                instance,
                is_top_input: is_top && port.dir == PortDir::Input,
                is_top_output: is_top && port.dir == PortDir::Output,
                init: None,
            });
            scope.nets.insert(port.name.clone(), id);
        }

        // Pass 1: declarations and parameters (in source order, so
        // localparams can use earlier nets' parameters).
        for item in &module.items {
            match item {
                Item::Param(p) => {
                    let value = eval_const(&p.value, &scope.consts)?;
                    scope.consts.bind(&p.name, value);
                }
                Item::Net(decl) => {
                    let width = if decl.kind == NetKind::Integer {
                        32
                    } else {
                        self.range_width(decl.range.as_ref(), &scope)?
                    };
                    for d in &decl.names {
                        self.declare(&mut scope, decl.kind, width, d)?;
                    }
                }
                _ => {}
            }
        }

        // Pass 2: behaviour.
        let mut always_index = 0u32;
        for item in &module.items {
            match item {
                Item::Param(_) | Item::Net(_) => {}
                Item::Assign { lhs, rhs, span } => {
                    self.lower_cont_assign(&mut scope, &module.name, lhs, rhs, *span)?;
                }
                Item::Always(block) => {
                    self.lower_always(&mut scope, &module.name, block, always_index)?;
                    always_index += 1;
                }
                Item::Initial { body, span } => {
                    let pid = self.next_process_id();
                    let body = self.lower_stmt(&mut scope, body, pid)?;
                    self.design.add_process(Process {
                        trigger: Trigger::Once,
                        body,
                        instance: scope.instance,
                        origin: ProcessOrigin {
                            module: module.name.clone(),
                            always_index: None,
                            span: *span,
                        },
                    });
                }
                Item::Instance(inst) => {
                    self.lower_instance(&mut scope, &module.name, inst, depth)?;
                }
            }
        }

        // Wire initializers become constant continuous assignments; reg
        // initializers were stored on the net during `declare`.
        for item in &module.items {
            if let Item::Net(decl) = item {
                if decl.kind == NetKind::Wire {
                    for d in &decl.names {
                        if let Some(init) = &d.init {
                            let net = scope.nets[&d.name];
                            let value = eval_const(init, &scope.consts)?;
                            let width = self.design.net(net).width;
                            let pid = self.next_process_id();
                            let _ = pid;
                            self.design.add_process(Process {
                                trigger: Trigger::Once,
                                body: RStmt::Assign {
                                    lhs: LValue::Net(net),
                                    rhs: RExpr::Const(value.resize(width)),
                                    nonblocking: false,
                                },
                                instance: scope.instance,
                                origin: ProcessOrigin {
                                    module: module.name.clone(),
                                    always_index: None,
                                    span: d.span,
                                },
                            });
                        }
                    }
                }
            }
        }

        Ok(scope)
    }

    fn next_process_id(&self) -> ProcessId {
        ProcessId(self.design.processes().len() as u32)
    }

    fn range_width(&self, range: Option<&Range>, scope: &Scope) -> RtlResult<u32> {
        let Some(r) = range else { return Ok(1) };
        let msb = eval_const_u64(&r.msb, &scope.consts)?;
        let lsb = eval_const_u64(&r.lsb, &scope.consts)?;
        if lsb != 0 {
            return Err(RtlError::new(
                RtlErrorKind::Unsupported,
                "packed ranges must be `[msb:0]` in the subset",
                r.span,
            ));
        }
        if msb >= 1 << 20 {
            return Err(RtlError::new(
                RtlErrorKind::Elaborate,
                "packed range unreasonably wide",
                r.span,
            ));
        }
        Ok(msb as u32 + 1)
    }

    fn declare(
        &mut self,
        scope: &mut Scope,
        kind: NetKind,
        width: u32,
        d: &Declarator,
    ) -> RtlResult<()> {
        if scope.nets.contains_key(&d.name) || scope.mems.contains_key(&d.name) {
            // Redeclaration of an ANSI port (`output reg [3:0] q;` body
            // repeats) is rejected: ANSI headers fully declare ports.
            return Err(scope.err(
                format!("`{}` is already declared in this module", d.name),
                d.span,
            ));
        }
        if let Some(arr) = &d.array {
            if kind != NetKind::Reg {
                return Err(scope.err("memories must be declared `reg`", d.span));
            }
            let a = eval_const_u64(&arr.msb, &scope.consts)?;
            let b = eval_const_u64(&arr.lsb, &scope.consts)?;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let depth = (hi - lo + 1) as u32;
            if d.init.is_some() {
                return Err(scope.err("memories cannot have initializers", d.span));
            }
            let id = self.design.add_memory(Memory {
                name: format!("{}.{}", scope.prefix, d.name),
                local_name: d.name.clone(),
                width,
                depth,
                base: lo as u32,
                instance: scope.instance,
            });
            scope.mems.insert(d.name.clone(), id);
        } else {
            let init = match (&d.init, kind) {
                (Some(e), NetKind::Reg | NetKind::Integer) => {
                    Some(eval_const(e, &scope.consts)?.resize(width))
                }
                _ => None, // wire initializers handled as assigns
            };
            let id = self.design.add_net(Net {
                name: format!("{}.{}", scope.prefix, d.name),
                local_name: d.name.clone(),
                width,
                kind,
                instance: scope.instance,
                is_top_input: false,
                is_top_output: false,
                init,
            });
            scope.nets.insert(d.name.clone(), id);
        }
        Ok(())
    }

    fn lower_cont_assign(
        &mut self,
        scope: &mut Scope,
        module: &str,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> RtlResult<()> {
        let pid = self.next_process_id();
        let lv = self.lower_lvalue(scope, lhs)?;
        let width = lv.width(&self.design);
        let r = self.lower_expr(scope, rhs)?;
        let r = widen(r, width);
        let body = RStmt::Assign {
            lhs: lv,
            rhs: r,
            nonblocking: false,
        };
        let mut reads = Vec::new();
        collect_stmt_reads(&body, &mut reads);
        reads.sort_unstable();
        reads.dedup();
        let _ = pid;
        self.design.add_process(Process {
            trigger: Trigger::AnyChange(reads),
            body,
            instance: scope.instance,
            origin: ProcessOrigin {
                module: module.to_owned(),
                always_index: None,
                span,
            },
        });
        Ok(())
    }

    fn lower_always(
        &mut self,
        scope: &mut Scope,
        module: &str,
        block: &AlwaysBlock,
        always_index: u32,
    ) -> RtlResult<()> {
        let pid = self.next_process_id();
        let body = self.lower_stmt(scope, &block.body, pid)?;
        let trigger = match &block.sensitivity {
            Sensitivity::Star => {
                let mut reads = Vec::new();
                collect_stmt_reads(&body, &mut reads);
                reads.sort_unstable();
                reads.dedup();
                Trigger::AnyChange(reads)
            }
            Sensitivity::List(items) => {
                let any_edge = items.iter().any(|i| i.edge.is_some());
                let all_edge = items.iter().all(|i| i.edge.is_some());
                if any_edge && !all_edge {
                    return Err(RtlError::new(
                        RtlErrorKind::Unsupported,
                        "mixed edge/level sensitivity lists are outside the subset",
                        block.span,
                    ));
                }
                let mut resolved = Vec::new();
                for item in items {
                    let net = *scope.nets.get(&item.signal).ok_or_else(|| {
                        scope.err(
                            format!("undeclared signal `{}` in sensitivity list", item.signal),
                            item.span,
                        )
                    })?;
                    resolved.push((net, item.edge));
                }
                if all_edge {
                    Trigger::Edges(
                        resolved
                            .into_iter()
                            .map(|(n, e)| (n, e.expect("all edges")))
                            .collect(),
                    )
                } else {
                    Trigger::AnyChange(resolved.into_iter().map(|(n, _)| n).collect())
                }
            }
        };
        let added = self.design.add_process(Process {
            trigger,
            body,
            instance: scope.instance,
            origin: ProcessOrigin {
                module: module.to_owned(),
                always_index: Some(always_index),
                span: block.span,
            },
        });
        debug_assert_eq!(added, pid);
        Ok(())
    }

    fn lower_instance(
        &mut self,
        scope: &mut Scope,
        module: &str,
        inst: &Instance,
        depth: u32,
    ) -> RtlResult<()> {
        let child_def = self.unit.module(&inst.module).ok_or_else(|| {
            RtlError::new(
                RtlErrorKind::Elaborate,
                format!("unknown module `{}`", inst.module),
                inst.span,
            )
        })?;
        let mut overrides = Vec::new();
        for p in &inst.params {
            let Some(expr) = &p.expr else {
                continue;
            };
            overrides.push((p.port.clone(), eval_const(expr, &scope.consts)?));
        }
        let child_hier = format!("{}.{}", scope.prefix, inst.name);
        let child_scope = self.instantiate(
            child_def,
            child_hier,
            Some(scope.instance),
            &overrides,
            depth + 1,
        )?;
        // Wire up ports.
        for conn in &inst.conns {
            if child_def.port(&conn.port).is_none() {
                return Err(RtlError::new(
                    RtlErrorKind::Elaborate,
                    format!("module `{}` has no port `{}`", inst.module, conn.port),
                    conn.span,
                ));
            }
        }
        for port in &child_def.ports {
            let Some(conn) = inst.conns.iter().find(|c| c.port == port.name) else {
                continue; // unconnected: input floats X, output dangles
            };
            let Some(actual) = &conn.expr else {
                continue; // explicitly unconnected `.p()`
            };
            let child_net = child_scope.nets[&port.name];
            let child_width = self.design.net(child_net).width;
            match port.dir {
                PortDir::Input => {
                    let r = self.lower_expr(scope, actual)?;
                    let r = widen(r, child_width);
                    let body = RStmt::Assign {
                        lhs: LValue::Net(child_net),
                        rhs: r,
                        nonblocking: false,
                    };
                    let mut reads = Vec::new();
                    collect_stmt_reads(&body, &mut reads);
                    reads.sort_unstable();
                    reads.dedup();
                    self.design.add_process(Process {
                        trigger: Trigger::AnyChange(reads),
                        body,
                        instance: scope.instance,
                        origin: ProcessOrigin {
                            module: module.to_owned(),
                            always_index: None,
                            span: conn.span,
                        },
                    });
                }
                PortDir::Output => {
                    let lv = self.lower_lvalue(scope, actual)?;
                    let width = lv.width(&self.design);
                    let rhs = widen(
                        RExpr::Net {
                            net: child_net,
                            width: child_width,
                        },
                        width,
                    );
                    self.design.add_process(Process {
                        trigger: Trigger::AnyChange(vec![child_net]),
                        body: RStmt::Assign {
                            lhs: lv,
                            rhs,
                            nonblocking: false,
                        },
                        instance: scope.instance,
                        origin: ProcessOrigin {
                            module: module.to_owned(),
                            always_index: None,
                            span: conn.span,
                        },
                    });
                }
            }
        }
        Ok(())
    }

    fn lower_stmt(&mut self, scope: &mut Scope, stmt: &Stmt, pid: ProcessId) -> RtlResult<RStmt> {
        Ok(match stmt {
            Stmt::Block { stmts, .. } => RStmt::Block(
                stmts
                    .iter()
                    .map(|s| self.lower_stmt(scope, s, pid))
                    .collect::<RtlResult<Vec<_>>>()?,
            ),
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
                span,
            } => {
                let cond = self.lower_expr(scope, cond)?;
                let site = self.design.add_site(SiteInfo {
                    process: pid,
                    kind: SiteKind::If,
                    span: *span,
                });
                RStmt::If {
                    site,
                    cond,
                    then_stmt: Box::new(self.lower_stmt(scope, then_stmt, pid)?),
                    else_stmt: match else_stmt {
                        Some(e) => Some(Box::new(self.lower_stmt(scope, e, pid)?)),
                        None => None,
                    },
                }
            }
            Stmt::Case {
                kind,
                selector,
                arms,
                ..
            } => {
                let selector = self.lower_expr(scope, selector)?;
                let sel_width = selector.width();
                let mut rarms = Vec::new();
                for arm in arms {
                    let labels = arm
                        .labels
                        .iter()
                        .map(|l| Ok(eval_const(l, &scope.consts)?.resize(sel_width)))
                        .collect::<RtlResult<Vec<_>>>()?;
                    let site = if labels.is_empty() {
                        None
                    } else {
                        Some(self.design.add_site(SiteInfo {
                            process: pid,
                            kind: SiteKind::CaseArm,
                            span: arm.span,
                        }))
                    };
                    rarms.push(RCaseArm {
                        labels,
                        site,
                        body: self.lower_stmt(scope, &arm.body, pid)?,
                    });
                }
                RStmt::Case {
                    kind: *kind,
                    selector,
                    arms: rarms,
                }
            }
            Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
                let nonblocking = matches!(stmt, Stmt::NonBlocking { .. });
                let lv = self.lower_lvalue(scope, lhs)?;
                let width = lv.width(&self.design);
                let r = self.lower_expr(scope, rhs)?;
                RStmt::Assign {
                    lhs: lv,
                    rhs: widen(r, width),
                    nonblocking,
                }
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
                span,
            } => {
                let var_net = *scope
                    .nets
                    .get(var)
                    .ok_or_else(|| scope.err(format!("undeclared loop variable `{var}`"), *span))?;
                let width = self.design.net(var_net).width;
                let init = widen(self.lower_expr(scope, init)?, width);
                let cond = self.lower_expr(scope, cond)?;
                let step = widen(self.lower_expr(scope, step)?, width);
                RStmt::For {
                    var: var_net,
                    init,
                    cond,
                    step,
                    body: Box::new(self.lower_stmt(scope, body, pid)?),
                }
            }
            Stmt::Null { .. } => RStmt::Null,
        })
    }

    fn lower_lvalue(&mut self, scope: &mut Scope, expr: &Expr) -> RtlResult<LValue> {
        match expr {
            Expr::Ident { name, span } => {
                if let Some(net) = scope.nets.get(name) {
                    Ok(LValue::Net(*net))
                } else if scope.mems.contains_key(name) {
                    Err(scope.err(
                        format!("memory `{name}` must be assigned element-wise"),
                        *span,
                    ))
                } else {
                    Err(scope.err(format!("undeclared identifier `{name}`"), *span))
                }
            }
            Expr::Index { base, index, span } => {
                if let Some(mem) = scope.mems.get(base).copied() {
                    let base_off = self.design.memory(mem).base;
                    let idx = self.lower_expr(scope, index)?;
                    let idx = offset_index(idx, base_off);
                    Ok(LValue::MemWrite { mem, index: idx })
                } else if let Some(net) = scope.nets.get(base).copied() {
                    let idx = self.lower_expr(scope, index)?;
                    if let RExpr::Const(c) = &idx {
                        let lo = c
                            .to_u64()
                            .ok_or_else(|| scope.err("constant index has unknown bits", *span))?
                            as u32;
                        Ok(LValue::Slice { net, lo, width: 1 })
                    } else {
                        Ok(LValue::IndexBit { net, index: idx })
                    }
                } else {
                    Err(scope.err(format!("undeclared identifier `{base}`"), *span))
                }
            }
            Expr::PartSelect {
                base,
                msb,
                lsb,
                span,
            } => {
                let net = *scope
                    .nets
                    .get(base)
                    .ok_or_else(|| scope.err(format!("undeclared identifier `{base}`"), *span))?;
                let m = eval_const_u64(msb, &scope.consts)? as u32;
                let l = eval_const_u64(lsb, &scope.consts)? as u32;
                if m < l {
                    return Err(scope.err("part-select must be [msb:lsb] with msb >= lsb", *span));
                }
                Ok(LValue::Slice {
                    net,
                    lo: l,
                    width: m - l + 1,
                })
            }
            Expr::IndexedPartSelect {
                base,
                start,
                width,
                ascending,
                span,
            } => {
                let net = *scope
                    .nets
                    .get(base)
                    .ok_or_else(|| scope.err(format!("undeclared identifier `{base}`"), *span))?;
                let w = eval_const_u64(width, &scope.consts)? as u32;
                let start = self.lower_expr(scope, start)?;
                let start = normalize_ips_start(start, w, *ascending);
                if let RExpr::Const(c) = &start {
                    let lo = c
                        .to_u64()
                        .ok_or_else(|| scope.err("constant start has unknown bits", *span))?
                        as u32;
                    Ok(LValue::Slice { net, lo, width: w })
                } else {
                    Ok(LValue::DynSlice {
                        net,
                        start,
                        width: w,
                    })
                }
            }
            Expr::Concat { parts, .. } => Ok(LValue::Concat(
                parts
                    .iter()
                    .map(|p| self.lower_lvalue(scope, p))
                    .collect::<RtlResult<Vec<_>>>()?,
            )),
            other => Err(scope.err("expression is not a valid assignment target", other.span())),
        }
    }

    fn lower_expr(&mut self, scope: &mut Scope, expr: &Expr) -> RtlResult<RExpr> {
        match expr {
            Expr::Number { value, .. } => Ok(RExpr::Const(value.clone())),
            Expr::Ident { name, span } => {
                if let Some(v) = scope.consts.get(name) {
                    Ok(RExpr::Const(v.clone()))
                } else if let Some(net) = scope.nets.get(name) {
                    Ok(RExpr::Net {
                        net: *net,
                        width: self.design.net(*net).width,
                    })
                } else if scope.mems.contains_key(name) {
                    Err(scope.err(format!("memory `{name}` must be read element-wise"), *span))
                } else {
                    Err(scope.err(format!("undeclared identifier `{name}`"), *span))
                }
            }
            Expr::Unary { op, operand, span } => {
                let inner = self.lower_expr(scope, operand)?;
                let width = match op {
                    UnaryOp::Not | UnaryOp::Neg | UnaryOp::Plus => inner.width(),
                    _ => 1,
                };
                let _ = span;
                Ok(RExpr::Unary {
                    op: *op,
                    width,
                    operand: Box::new(inner),
                })
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let a = self.lower_expr(scope, lhs)?;
                let b = self.lower_expr(scope, rhs)?;
                match op {
                    BinaryOp::Add
                    | BinaryOp::Sub
                    | BinaryOp::Mul
                    | BinaryOp::Div
                    | BinaryOp::Mod
                    | BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Xor
                    | BinaryOp::Xnor => {
                        let w = a.width().max(b.width());
                        Ok(RExpr::Binary {
                            op: *op,
                            width: w,
                            lhs: Box::new(widen(a, w)),
                            rhs: Box::new(widen(b, w)),
                        })
                    }
                    BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::CaseEq
                    | BinaryOp::CaseNe
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge => {
                        let w = a.width().max(b.width());
                        Ok(RExpr::Binary {
                            op: *op,
                            width: 1,
                            lhs: Box::new(widen(a, w)),
                            rhs: Box::new(widen(b, w)),
                        })
                    }
                    BinaryOp::LogicalAnd | BinaryOp::LogicalOr => Ok(RExpr::Binary {
                        op: *op,
                        width: 1,
                        lhs: Box::new(a),
                        rhs: Box::new(b),
                    }),
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                        let w = a.width();
                        Ok(RExpr::Binary {
                            op: *op,
                            width: w,
                            lhs: Box::new(a),
                            rhs: Box::new(b),
                        })
                    }
                    BinaryOp::Pow => {
                        // Runtime power is outside the subset; constant
                        // powers fold in `eval_const` contexts.
                        Err(RtlError::new(
                            RtlErrorKind::Unsupported,
                            "`**` is only supported in constant expressions",
                            *span,
                        ))
                    }
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let c = self.lower_expr(scope, cond)?;
                let t = self.lower_expr(scope, then_expr)?;
                let e = self.lower_expr(scope, else_expr)?;
                let w = t.width().max(e.width());
                Ok(RExpr::Ternary {
                    width: w,
                    cond: Box::new(c),
                    then_expr: Box::new(widen(t, w)),
                    else_expr: Box::new(widen(e, w)),
                })
            }
            Expr::Concat { parts, span } => {
                if parts.is_empty() {
                    return Err(scope.err("empty concatenation", *span));
                }
                let lowered = parts
                    .iter()
                    .map(|p| self.lower_expr(scope, p))
                    .collect::<RtlResult<Vec<_>>>()?;
                let width = lowered.iter().map(RExpr::width).sum();
                Ok(RExpr::Concat {
                    width,
                    parts: lowered,
                })
            }
            Expr::Repeat { count, expr, span } => {
                let c = eval_const_u64(count, &scope.consts)?;
                if c == 0 {
                    return Err(scope.err("replication count must be positive", *span));
                }
                let inner = self.lower_expr(scope, expr)?;
                Ok(RExpr::Repeat {
                    width: inner.width() * c as u32,
                    count: c as u32,
                    expr: Box::new(inner),
                })
            }
            Expr::Index { base, index, span } => {
                if let Some(mem) = scope.mems.get(base).copied() {
                    let base_off = self.design.memory(mem).base;
                    let width = self.design.memory(mem).width;
                    let idx = self.lower_expr(scope, index)?;
                    Ok(RExpr::MemRead {
                        mem,
                        width,
                        index: Box::new(offset_index(idx, base_off)),
                    })
                } else if let Some(net) = scope.nets.get(base).copied() {
                    let idx = self.lower_expr(scope, index)?;
                    if let RExpr::Const(c) = &idx {
                        let lo = c
                            .to_u64()
                            .ok_or_else(|| scope.err("constant index has unknown bits", *span))?
                            as u32;
                        Ok(RExpr::Slice { net, lo, width: 1 })
                    } else {
                        Ok(RExpr::IndexBit {
                            net,
                            index: Box::new(idx),
                        })
                    }
                } else if scope.consts.get(base).is_some() {
                    let v = eval_const(expr, &scope.consts)?;
                    let _ = v;
                    Err(scope.err("bit-selects on parameters are outside the subset", *span))
                } else {
                    Err(scope.err(format!("undeclared identifier `{base}`"), *span))
                }
            }
            Expr::PartSelect {
                base,
                msb,
                lsb,
                span,
            } => {
                let net = *scope
                    .nets
                    .get(base)
                    .ok_or_else(|| scope.err(format!("undeclared identifier `{base}`"), *span))?;
                let m = eval_const_u64(msb, &scope.consts)? as u32;
                let l = eval_const_u64(lsb, &scope.consts)? as u32;
                if m < l {
                    return Err(scope.err("part-select must be [msb:lsb] with msb >= lsb", *span));
                }
                Ok(RExpr::Slice {
                    net,
                    lo: l,
                    width: m - l + 1,
                })
            }
            Expr::IndexedPartSelect {
                base,
                start,
                width,
                ascending,
                span,
            } => {
                let net = *scope
                    .nets
                    .get(base)
                    .ok_or_else(|| scope.err(format!("undeclared identifier `{base}`"), *span))?;
                let w = eval_const_u64(width, &scope.consts)? as u32;
                let s = self.lower_expr(scope, start)?;
                let s = normalize_ips_start(s, w, *ascending);
                if let RExpr::Const(c) = &s {
                    let lo = c
                        .to_u64()
                        .ok_or_else(|| scope.err("constant start has unknown bits", *span))?
                        as u32;
                    Ok(RExpr::Slice { net, lo, width: w })
                } else {
                    Ok(RExpr::DynSlice {
                        net,
                        start: Box::new(s),
                        width: w,
                    })
                }
            }
        }
    }
}

/// Normalizes an indexed-part-select start expression to a low-bit index:
/// ascending (`+:`) keeps `start`; descending (`-:`) becomes
/// `start - (width-1)`.
fn normalize_ips_start(start: RExpr, width: u32, ascending: bool) -> RExpr {
    if ascending || width == 1 {
        return constfold_rexpr(start);
    }
    let w = start.width().max(32);
    let off = RExpr::Const(LogicVec::from_u64(w, u64::from(width - 1)));
    constfold_rexpr(RExpr::Binary {
        op: BinaryOp::Sub,
        width: w,
        lhs: Box::new(widen(start, w)),
        rhs: Box::new(off),
    })
}

/// Adds a constant base offset subtraction to a memory index (for arrays
/// declared `[base:hi]` with non-zero base).
fn offset_index(index: RExpr, base: u32) -> RExpr {
    if base == 0 {
        return index;
    }
    let w = index.width().max(32);
    constfold_rexpr(RExpr::Binary {
        op: BinaryOp::Sub,
        width: w,
        lhs: Box::new(widen(index, w)),
        rhs: Box::new(RExpr::Const(LogicVec::from_u64(w, u64::from(base)))),
    })
}

/// Shallow constant folding for elaboration-synthesized expressions.
fn constfold_rexpr(e: RExpr) -> RExpr {
    match &e {
        RExpr::Binary {
            op: BinaryOp::Sub,
            width,
            lhs,
            rhs,
        } => {
            if let (RExpr::Const(a), RExpr::Const(b)) = (&**lhs, &**rhs) {
                return RExpr::Const(a.sub(b).resize(*width));
            }
            e
        }
        RExpr::Resize { width, expr } => {
            if let RExpr::Const(c) = &**expr {
                return RExpr::Const(c.resize(*width));
            }
            e
        }
        _ => e,
    }
}

/// Applies Verilog context-width rules: if `w` is wider than the
/// expression's self-determined width, the widening is *pushed into*
/// arithmetic, bitwise, mux and shift operands (so carries are preserved);
/// if `w` is narrower, the value is computed at full width and truncated.
#[must_use]
pub fn widen(e: RExpr, w: u32) -> RExpr {
    let sw = e.width();
    if sw == w {
        return e;
    }
    if w < sw {
        // Truncation happens after evaluation.
        return match e {
            RExpr::Const(c) => RExpr::Const(c.resize(w)),
            other => RExpr::Resize {
                width: w,
                expr: Box::new(other),
            },
        };
    }
    match e {
        RExpr::Const(c) => RExpr::Const(c.resize(w)),
        RExpr::Binary { op, lhs, rhs, .. }
            if matches!(
                op,
                BinaryOp::Add
                    | BinaryOp::Sub
                    | BinaryOp::Mul
                    | BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Xor
                    | BinaryOp::Xnor
            ) =>
        {
            RExpr::Binary {
                op,
                width: w,
                lhs: Box::new(widen(*lhs, w)),
                rhs: Box::new(widen(*rhs, w)),
            }
        }
        RExpr::Binary { op, lhs, rhs, .. }
            if matches!(op, BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr) =>
        {
            RExpr::Binary {
                op,
                width: w,
                lhs: Box::new(widen(*lhs, w)),
                rhs,
            }
        }
        RExpr::Unary { op, operand, .. }
            if matches!(op, UnaryOp::Not | UnaryOp::Neg | UnaryOp::Plus) =>
        {
            RExpr::Unary {
                op,
                width: w,
                operand: Box::new(widen(*operand, w)),
            }
        }
        RExpr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => RExpr::Ternary {
            width: w,
            cond,
            then_expr: Box::new(widen(*then_expr, w)),
            else_expr: Box::new(widen(*else_expr, w)),
        },
        other => RExpr::Resize {
            width: w,
            expr: Box::new(other),
        },
    }
}

/// Collects the nets read anywhere in a lowered statement (conditions,
/// right-hand sides, loop bounds and dynamic-index expressions of targets).
pub fn collect_stmt_reads(stmt: &RStmt, out: &mut Vec<NetId>) {
    match stmt {
        RStmt::Block(stmts) => {
            for s in stmts {
                collect_stmt_reads(s, out);
            }
        }
        RStmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => {
            cond.collect_net_reads(out);
            collect_stmt_reads(then_stmt, out);
            if let Some(e) = else_stmt {
                collect_stmt_reads(e, out);
            }
        }
        RStmt::Case { selector, arms, .. } => {
            selector.collect_net_reads(out);
            for arm in arms {
                collect_stmt_reads(&arm.body, out);
            }
        }
        RStmt::Assign { lhs, rhs, .. } => {
            rhs.collect_net_reads(out);
            collect_lvalue_index_reads(lhs, out);
        }
        RStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            init.collect_net_reads(out);
            cond.collect_net_reads(out);
            step.collect_net_reads(out);
            collect_stmt_reads(body, out);
        }
        RStmt::Null => {}
    }
}

fn collect_lvalue_index_reads(lv: &LValue, out: &mut Vec<NetId>) {
    match lv {
        LValue::Net(_) | LValue::Slice { .. } => {}
        LValue::IndexBit { index, .. } => index.collect_net_reads(out),
        LValue::DynSlice { start, .. } => start.collect_net_reads(out),
        LValue::MemWrite { index, .. } => index.collect_net_reads(out),
        LValue::Concat(parts) => {
            for p in parts {
                collect_lvalue_index_reads(p, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::span::FileId;

    fn elab(src: &str) -> Design {
        let unit = parse(FileId(0), src).expect("parse");
        elaborate(&unit, "top").expect("elaborate")
    }

    fn elab_err(src: &str) -> RtlError {
        let unit = parse(FileId(0), src).expect("parse");
        elaborate(&unit, "top").expect_err("expected elaboration failure")
    }

    #[test]
    fn simple_module() {
        let d = elab("module top(input wire a, output wire y); assign y = ~a; endmodule");
        assert!(d.find_net("top.a").is_some());
        assert!(d.find_net("top.y").is_some());
        assert_eq!(d.processes().len(), 1);
        assert_eq!(d.top_inputs().count(), 1);
        assert_eq!(d.top_outputs().count(), 1);
    }

    #[test]
    fn parameters_resolve_widths() {
        let d = elab(
            "module top #(parameter W = 8)(input [W-1:0] a, output [W-1:0] y);
               assign y = a + {W{1'b1}};
             endmodule",
        );
        let a = d.find_net("top.a").expect("net");
        assert_eq!(d.net(a).width, 8);
    }

    #[test]
    fn hierarchy_and_param_overrides() {
        let d = elab(
            "module leaf #(parameter W = 4)(input [W-1:0] d, output [W-1:0] q);
               assign q = d;
             endmodule
             module top(input [7:0] d, output [7:0] q);
               leaf #(.W(8)) u_leaf (.d(d), .q(q));
             endmodule",
        );
        assert_eq!(d.instances().len(), 2);
        let leaf_d = d.find_net("top.u_leaf.d").expect("net");
        assert_eq!(d.net(leaf_d).width, 8);
        let inst = d.instance(crate::design::InstanceId(1));
        assert_eq!(inst.module, "leaf");
        assert_eq!(inst.params[0].0, "W");
        assert_eq!(inst.params[0].1.to_u64(), Some(8));
        // Two port-binding processes plus the leaf's assign.
        assert_eq!(d.processes().len(), 3);
    }

    #[test]
    fn always_edge_trigger_resolved() {
        let d = elab(
            "module top(input clk, rst_n, output reg [3:0] q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
             endmodule",
        );
        let p = &d.processes()[0];
        match &p.trigger {
            Trigger::Edges(edges) => {
                assert_eq!(edges.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.origin.always_index, Some(0));
        // One site for the `if`.
        assert_eq!(d.sites().len(), 1);
    }

    #[test]
    fn star_sensitivity_computes_read_set() {
        let d = elab(
            "module top(input [3:0] a, b, input s, output reg [3:0] y);
               always @* if (s) y = a; else y = b;
             endmodule",
        );
        match &d.processes()[0].trigger {
            Trigger::AnyChange(reads) => {
                let names: Vec<_> = reads.iter().map(|n| d.net(*n).local_name.clone()).collect();
                assert!(names.contains(&"a".to_owned()));
                assert!(names.contains(&"b".to_owned()));
                assert!(names.contains(&"s".to_owned()));
                assert!(!names.contains(&"y".to_owned()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_declaration() {
        let d = elab(
            "module top(input clk, input [7:0] addr, wdata, input we, output reg [7:0] rdata);
               reg [7:0] mem [0:255];
               always @(posedge clk) begin
                 if (we) mem[addr] <= wdata;
                 rdata <= mem[addr];
               end
             endmodule",
        );
        let m = d.find_memory("top.mem").expect("memory");
        assert_eq!(d.memory(m).depth, 256);
        assert_eq!(d.memory(m).width, 8);
        assert_eq!(d.memory(m).base, 0);
    }

    #[test]
    fn context_width_preserves_carry() {
        // `sum = a + b` with 9-bit sum must widen the operands first.
        let d = elab(
            "module top(input [7:0] a, b, output [8:0] sum);
               assign sum = a + b;
             endmodule",
        );
        match &d.processes()[0].body {
            RStmt::Assign { rhs, .. } => {
                assert_eq!(rhs.width(), 9);
                match rhs {
                    RExpr::Binary {
                        op: BinaryOp::Add,
                        lhs,
                        ..
                    } => {
                        assert_eq!(lhs.width(), 9, "operand must be pre-widened");
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn narrowing_truncates_after_eval() {
        let d = elab(
            "module top(input [7:0] a, b, output [3:0] y);
               assign y = a + b;
             endmodule",
        );
        match &d.processes()[0].body {
            RStmt::Assign { rhs, .. } => {
                assert_eq!(rhs.width(), 4);
                assert!(matches!(rhs, RExpr::Resize { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_labels_fold_and_get_sites() {
        let d = elab(
            "module top(input [1:0] s, output reg [3:0] y);
               localparam SEL2 = 2'd2;
               always @* case (s)
                 2'd0: y = 4'd1;
                 SEL2: y = 4'd2;
                 default: y = 4'd0;
               endcase
             endmodule",
        );
        // Two labelled arms → two case-arm sites.
        assert_eq!(d.sites().len(), 2);
        match &d.processes()[0].body {
            RStmt::Case { arms, .. } => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[1].labels[0].to_u64(), Some(2));
                assert!(arms[2].site.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reg_initializer_stored() {
        let d = elab(
            "module top(output reg [3:0] q); initial q = q; endmodule
                      ",
        );
        let _ = d;
        let d2 = elab("module top(input clk); reg [3:0] q = 4'd5; endmodule");
        let q = d2.find_net("top.q").expect("q");
        assert_eq!(d2.net(q).init.as_ref().and_then(LogicVec::to_u64), Some(5));
    }

    #[test]
    fn errors_reported() {
        assert!(elab_err("module top(input a); assign b = a; endmodule")
            .message
            .contains("undeclared"));
        assert!(elab_err("module top(input a); sub u(.x(a)); endmodule")
            .message
            .contains("unknown module"));
        let e = elab_err(
            "module leaf(input a); endmodule
             module top(input a); leaf u(.nope(a)); endmodule",
        );
        assert!(e.message.contains("no port"));
        let e = elab_err(
            "module leaf #(parameter W=1)(input a); endmodule
             module top(input a); leaf #(.Q(2)) u(.a(a)); endmodule",
        );
        assert!(e.message.contains("no parameter"));
    }

    #[test]
    fn mixed_sensitivity_rejected() {
        let e = elab_err(
            "module top(input clk, d, output reg q);
               always @(posedge clk or d) q <= d;
             endmodule",
        );
        assert_eq!(e.kind, RtlErrorKind::Unsupported);
    }

    #[test]
    fn nonzero_lsb_range_rejected() {
        let e = elab_err("module top(input [8:1] a); endmodule");
        assert_eq!(e.kind, RtlErrorKind::Unsupported);
    }

    #[test]
    fn recursive_instantiation_caught() {
        let e = elab_err("module top(input a); top u(.a(a)); endmodule");
        assert!(e.message.contains("hierarchy"));
    }

    #[test]
    fn memory_with_base_offset() {
        let d = elab(
            "module top(input clk, input [3:0] addr, output reg [7:0] q);
               reg [7:0] mem [4:7];
               always @(posedge clk) q <= mem[addr];
             endmodule",
        );
        let m = d.find_memory("top.mem").expect("m");
        assert_eq!(d.memory(m).depth, 4);
        assert_eq!(d.memory(m).base, 4);
    }

    #[test]
    fn concat_lvalue_widths() {
        let d = elab(
            "module top(input [3:0] a, b, output reg c, output reg [3:0] s);
               always @* {c, s} = a + b;
             endmodule",
        );
        match &d.processes()[0].body {
            RStmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs.width(&d), 5);
                assert_eq!(rhs.width(), 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unconnected_ports_allowed() {
        let d = elab(
            "module leaf(input a, output y); assign y = a; endmodule
             module top(input a); leaf u(.a(a), .y()); endmodule",
        );
        // Only the input binding + leaf assign.
        assert_eq!(d.processes().len(), 2);
    }
}
