//! Property tests for assumption-based incremental solving: one solver
//! answering a *sequence* of assumption sets must agree with a fresh
//! one-shot `check` for each set, with and without budgets. This is the
//! contract the concolic flip loop relies on — reusing the blasted CNF
//! and learnt clauses must never change an answer, only its cost.

use proptest::prelude::*;
use soccar_smt::{model_satisfies, BvVal, CheckResult, SolveBudget, Solver, TermGraph, TermId};

/// Builds a small expression over `n_vars` variables and returns 1-bit
/// goal terms `root == target` for each requested target.
fn build_goals(g: &mut TermGraph, width: u32, seeds: &[u64], targets: &[u64]) -> Vec<TermId> {
    let vars: Vec<TermId> = (0..3).map(|i| g.var(format!("v{i}"), width)).collect();
    // Fold the seeds into an expression mixing all three variables.
    let mut acc = vars[0];
    for (i, s) in seeds.iter().enumerate() {
        let c = g.constant(BvVal::from_u64(width, *s));
        let mixed = match i % 4 {
            0 => g.add(acc, c),
            1 => g.xor(acc, vars[1]),
            2 => g.mul(acc, c),
            _ => g.and(acc, vars[2]),
        };
        acc = mixed;
    }
    targets
        .iter()
        .map(|t| {
            let c = g.constant(BvVal::from_u64(width, *t));
            g.eq(acc, c)
        })
        .collect()
}

/// One-shot reference: a fresh solver asserting `hard ∧ set`.
fn one_shot(g: &TermGraph, budget: SolveBudget, hard: &[TermId], set: &[TermId]) -> CheckResult {
    let mut s = Solver::with_budget(budget);
    for t in hard.iter().chain(set) {
        s.assert(*t);
    }
    s.check(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unlimited budget: every answer is definite, so the incremental
    /// solver must agree exactly (in sat-ness) with a fresh one-shot
    /// check on each assumption set, and its models must be real.
    #[test]
    fn assumption_sequence_agrees_with_one_shot(
        width in 1u32..8,
        seeds in proptest::collection::vec(0u64..128, 1..5),
        targets in proptest::collection::vec(0u64..128, 2..6),
        pin in 0u64..128,
    ) {
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);
        let v0 = g.var("v0", width);
        let pin_c = g.constant(BvVal::from_u64(width, pin));
        let hard = g.eq(v0, pin_c);

        let mut inc = Solver::new();
        inc.assert(hard);
        for (i, goal) in goals.iter().enumerate() {
            // Alternate single goals with pairs so retraction is covered.
            let set: Vec<TermId> = if i % 2 == 0 {
                vec![*goal]
            } else {
                vec![goals[i - 1], *goal]
            };
            let want = one_shot(&g, SolveBudget::UNLIMITED, &[hard], &set);
            let got = inc.check_assuming(&g, &set);
            prop_assert_eq!(
                got.is_sat(),
                want.is_sat(),
                "set {} disagreed: inc {:?} vs one-shot {:?}",
                i,
                got,
                want
            );
            if let CheckResult::Sat(model) = &got {
                let mut asserted = vec![hard];
                asserted.extend(&set);
                prop_assert!(model_satisfies(&g, &asserted, model));
            }
        }
    }

    /// Under a budget the incremental solver stays *sound*: a definite
    /// answer matches the unbudgeted truth, and `Unknown` only appears
    /// where a one-shot check is also Unknown-eligible (i.e. a budget is
    /// actually configured — definite fast paths stay definite).
    #[test]
    fn budgeted_assumption_sequence_is_sound(
        width in 1u32..8,
        seeds in proptest::collection::vec(0u64..128, 1..5),
        targets in proptest::collection::vec(0u64..128, 2..5),
        max_conflicts in 1u64..32,
        max_decisions in 1u64..64,
    ) {
        let budget = SolveBudget {
            max_conflicts: Some(max_conflicts),
            max_decisions: Some(max_decisions),
        };
        let mut g = TermGraph::new();
        let goals = build_goals(&mut g, width, &seeds, &targets);

        let mut inc = Solver::with_budget(budget);
        for (i, goal) in goals.iter().enumerate() {
            let set = [*goal];
            let truth = one_shot(&g, SolveBudget::UNLIMITED, &[], &set);
            match inc.check_assuming(&g, &set) {
                CheckResult::Unknown { reason } => {
                    // Only a configured budget can run out, and the
                    // reason must say so.
                    prop_assert!(!budget.is_unlimited());
                    prop_assert!(reason.contains("budget exhausted"));
                }
                CheckResult::Unsat => prop_assert!(
                    !truth.is_sat(),
                    "set {} incremental Unsat but truth Sat",
                    i
                ),
                CheckResult::Sat(model) => {
                    prop_assert!(truth.is_sat(), "set {i} incremental Sat but truth Unsat");
                    prop_assert!(model_satisfies(&g, &set, &model));
                }
            }
        }
    }
}
