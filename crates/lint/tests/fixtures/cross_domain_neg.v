// Negative: soft_rst_n is generated and consumed in the same clk domain.
module same_domain(input clk, input por_n, input [3:0] d, output reg [3:0] q);
  reg soft_rst_n;
  always @(posedge clk or negedge por_n)
    if (!por_n) soft_rst_n <= 1'b0;
    else soft_rst_n <= 1'b1;
  always @(posedge clk or negedge soft_rst_n)
    if (!soft_rst_n) q <= 4'd0;
    else q <= d;
endmodule
