//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the tiny slice of `rand` it actually uses: a seedable
//! deterministic generator (`StdRng`) plus the `Rng` convenience methods
//! `gen_range`, `gen_bool` and `gen_ratio`. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality and reproducible, which is all
//! the concolic scheduler and the fuzzing baseline need. It is **not** the
//! upstream implementation and makes no cross-version stream guarantees.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-friendly sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 random mantissa bits, same construction as rand's `Open01`.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(
            numerator <= denominator,
            "gen_ratio: {numerator}/{denominator}"
        );
        u64::from(self.next_u32()) * u64::from(denominator) >> 32 < u64::from(numerator)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7u64);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&w));
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_ratio(0, 4));
        assert!(rng.gen_ratio(4, 4));
    }
}
