//! Shared analysis context handed to every lint rule.
//!
//! The context is computed once per lint run: reset identification and the
//! Explicit-mode CFG for every module (so rules can reason about the same
//! events the published extraction sees), plus the Algorithm 2 connection
//! profiles (so rules can follow resets across the hierarchy).

use soccar_cfg::{
    connection_profiles, extract_module_cfg, identify_resets, ConnectionProfile, GovernorAnalysis,
    ModuleCfg, ResetNaming, ResetSignal,
};
use soccar_rtl::ast::{AlwaysBlock, Module, SensItem, SourceUnit};
use soccar_rtl::span::SourceMap;

/// Per-module pre-computed analysis shared by the rules.
#[derive(Debug)]
pub struct ModuleView<'a> {
    /// The module AST.
    pub module: &'a Module,
    /// Identified reset signals (name heuristic + structural).
    pub resets: Vec<ResetSignal>,
    /// The full Explicit-mode CFG (what the published tool extracts).
    pub cfg: ModuleCfg,
}

impl ModuleView<'_> {
    /// `true` if `name` is an identified reset of this module.
    #[must_use]
    pub fn is_reset(&self, name: &str) -> bool {
        self.resets.iter().any(|r| r.name == name)
    }

    /// Edge-qualified sensitivity items of `block` that are identified
    /// resets of this module.
    #[must_use]
    pub fn async_resets_of<'b>(&self, block: &'b AlwaysBlock) -> Vec<&'b SensItem> {
        block
            .edge_items()
            .filter(|i| self.is_reset(&i.signal))
            .collect()
    }

    /// The clock of `block`: the first edge-qualified item that is not an
    /// identified reset.
    #[must_use]
    pub fn clock_of<'b>(&self, block: &'b AlwaysBlock) -> Option<&'b SensItem> {
        block.edge_items().find(|i| !self.is_reset(&i.signal))
    }
}

/// Everything a [`crate::LintRule`] may consult.
#[derive(Debug)]
pub struct LintContext<'a> {
    /// The parsed design.
    pub unit: &'a SourceUnit,
    /// Span resolution for diagnostics.
    pub map: &'a SourceMap,
    /// Naming convention in force.
    pub naming: &'a ResetNaming,
    /// Pre-computed per-module views, in source order.
    pub modules: Vec<ModuleView<'a>>,
    /// Algorithm 2 connection profiles, one per module.
    pub profiles: Vec<ConnectionProfile>,
}

impl<'a> LintContext<'a> {
    /// Builds the context for one source unit.
    #[must_use]
    pub fn build(unit: &'a SourceUnit, map: &'a SourceMap, naming: &'a ResetNaming) -> Self {
        let modules = unit
            .modules
            .iter()
            .map(|m| ModuleView {
                module: m,
                resets: identify_resets(m, naming),
                cfg: extract_module_cfg(m, naming, GovernorAnalysis::Explicit),
            })
            .collect();
        LintContext {
            unit,
            map,
            naming,
            modules,
            profiles: connection_profiles(unit, naming),
        }
    }

    /// The connection profile of `module`, if it exists.
    #[must_use]
    pub fn profile(&self, module: &str) -> Option<&ConnectionProfile> {
        self.profiles.iter().find(|p| p.module == module)
    }
}
