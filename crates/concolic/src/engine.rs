//! The concolic testing engine — the paper's **Algorithm 3**.
//!
//! Each *round* is one concrete simulation of the SoC with a symbolic
//! shadow riding along ([`crate::coalg::CoAlgebra`]):
//!
//! 1. Round 1 drives random inputs with registers initialized to all-ones
//!    (so un-cleared registers are visible), and a power-on pulse on every
//!    controllable reset domain.
//! 2. During the run, every branch whose condition depends on a symbolic
//!    input (reset lines and selected data inputs are symbolic, fresh
//!    variables per cycle) is logged; security properties ("Restricts")
//!    are checked every cycle and produce *invalidation messages* naming
//!    the violating module.
//! 3. After a round, if a target event of the AR_CFG is still uncovered,
//!    the engine picks one of its branch occurrences, conjoins the path
//!    prefix with the flipped condition — clock edges and reset tests are
//!    already equivalences over per-cycle input variables, exactly the
//!    transformation the paper describes — and asks the solver for a new
//!    input schedule.
//! 4. Once coverage saturates (or no flip is solvable), a systematic
//!    *reset sweep* moves an asynchronous pulse across every cycle of
//!    every domain, exploring the reset-timing space the paper calls
//!    "prohibitive" for plain dynamic validation — here it is tractable
//!    because the AR_CFG restricts attention to reset-governed logic.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use soccar_cfg::bind::BoundEvent;
use soccar_cfg::extract::EventArm;
use soccar_exec::{FailurePolicy, FaultPlan, TaskOutcome};
use soccar_rtl::design::{BranchSiteId, Design, NetId, ProcessId};
use soccar_rtl::value::LogicVec;
use soccar_sim::{InitPolicy, SimResult, Simulator};
use soccar_smt::{CheckResult, SolveBudget, Solver, Term, TermGraph, TermId};

use crate::coalg::{from_bv, BranchObservation, CoAlgebra};
use crate::property::{PropertyMonitor, SecurityProperty, Violation};
use crate::schedule::TestSchedule;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ConcolicConfig {
    /// Simulation horizon per round, in cycles.
    pub cycles: u64,
    /// Maximum concolic rounds before the sweep phase.
    pub max_rounds: usize,
    /// Seed for the round-1 random schedule.
    pub seed: u64,
    /// Register initialization policy (the paper uses all-ones).
    pub init: InitPolicy,
    /// Hierarchical names of top-level data inputs to treat symbolically.
    pub symbolic_inputs: Vec<String>,
    /// Stride of the reset sweep (1 = try every cycle).
    pub sweep_stride: u64,
    /// Flip attempts per uncovered target per round.
    pub max_flip_attempts: usize,
    /// Maximum path-prefix observations conjoined per flip query.
    pub max_prefix: usize,
    /// Skip the sweep phase (coverage-only mode, used by ablations).
    pub skip_sweep: bool,
    /// Additional 1-bit asynchronous event lines (hierarchical names of
    /// top-level inputs) to sweep like reset domains — the paper's
    /// future-work extension to "other asynchronous events" (IRQs,
    /// AMS comparator outputs, sensor strobes). Pulsed active-high.
    pub async_events: Vec<String>,
    /// Worker threads for the per-round fan-out of uncovered-event flip
    /// solves (`0` = auto via [`soccar_exec::resolve_jobs`]). Every job
    /// count produces bit-identical reports: candidates are solved
    /// against independent clones of the round's term graph and consumed
    /// in stable target order, never completion order.
    pub jobs: usize,
    /// Resource budget for each flip solve. An exhausted budget yields
    /// [`CheckResult::Unknown`], which the engine records as a *skipped*
    /// flip (degrading the round) instead of aborting. Defaults to
    /// unlimited — the classic run-to-completion behavior.
    pub solver_budget: SolveBudget,
    /// Per-round cap on flip attempts across all uncovered targets
    /// (`0` = unlimited). Candidates beyond the cap are dropped in stable
    /// order and the round is counted degraded.
    pub max_round_flips: usize,
    /// Monotonic wall-clock deadline per concolic round. When a round
    /// exceeds it, flip planning is skipped and the engine falls through
    /// to the systematic sweep. `None` (default) disables the deadline.
    /// A wall-clock deadline is inherently nondeterministic; runs that
    /// need byte-identical reports should leave it off (the
    /// `round_timeout` fault point exercises the same path
    /// deterministically).
    pub round_deadline: Option<Duration>,
    /// What a panicking flip-solve task does to the run.
    /// [`FailurePolicy::FailFast`] (default) rethrows the panic;
    /// [`FailurePolicy::KeepGoing`] records the flip as failed, degrades
    /// the round, and continues — the CLI's `--keep-going`.
    pub failure_policy: FailurePolicy,
    /// Deterministic fault-injection plan (chaos testing). The engine
    /// consults the points `solver_unknown`, `task_panic:flips`, and
    /// `round_timeout`; see `soccar_exec::FaultPlan`.
    pub fault_plan: FaultPlan,
    /// Use assumption-based incremental solving for the per-round flip
    /// fan-out: the round's path prefix is bit-blasted once into a shared
    /// [`Solver`] context and each candidate is discharged with
    /// `check_assuming` against a cheap clone of the *blasted* state,
    /// instead of deep-cloning the raw term graph and re-blasting per
    /// candidate. Identical Sat/Unsat answers, large constant-factor
    /// speedup. Defaults to on; `SOCCAR_INCREMENTAL=0` (or the CLI's
    /// `--no-incremental`) selects the one-shot path as an escape hatch.
    pub incremental: bool,
    /// Race the deterministic solver portfolio
    /// ([`soccar_smt::PORTFOLIO_PROFILES`]) on each incremental flip
    /// solve: diverse `SolverProfile`s (branching seed, phase polarity,
    /// restart schedule) share the call's budget in a deterministic
    /// time-sliced rotation, first definite answer wins. Profile 0 runs
    /// first with a generous opening slice, so healthy workloads answer
    /// identically with the portfolio on or off — byte-identical reports
    /// across `SOCCAR_PORTFOLIO={0,1}`. Only consulted on the incremental
    /// path (one-shot solves are single-profile). Defaults to off;
    /// `SOCCAR_PORTFOLIO=1` (or the CLI's `--portfolio`) enables it.
    pub portfolio: bool,
    /// Cap on symbolic security-check obligations folded into the
    /// incremental window preblast (most recent first, deduplicated by
    /// term). The obligations are blast-only — Tseitin-encoded but never
    /// assumed or asserted, so answers and reports are untouched — and
    /// give `check_assuming` real clauses to carry across candidates.
    /// `0` disables the folding.
    pub max_window_checks: usize,
    /// Bounded variable elimination during solver inprocessing: gate
    /// variables introduced by bit-blasting (carries, comparator
    /// intermediates) are resolved away when the clause database does
    /// not grow, with model reconstruction keeping answers and extracted
    /// models identical. Defaults to on; `SOCCAR_BVE=0` is the escape
    /// hatch.
    pub bve: bool,
    /// Learnt-clause sharing across portfolio profiles: clone profiles
    /// drain their glue clauses (low LBD, short) back into the base
    /// solver between time slices instead of learning alone and being
    /// discarded. Only consulted when [`ConcolicConfig::portfolio`] is
    /// on. Defaults to on; `SOCCAR_CLAUSE_SHARING=0` is the escape
    /// hatch.
    pub clause_sharing: bool,
    /// Trail reuse between `check_assuming` calls: a new call keeps the
    /// longest common prefix of the previous call's assumption trail
    /// instead of backtracking to the assumption floor and
    /// re-propagating it. Answers are unchanged; per-candidate
    /// re-propagation cost drops on the flip fan-out's shared prefixes.
    /// Defaults to on; `SOCCAR_TRAIL_REUSE=0` is the escape hatch.
    pub trail_reuse: bool,
}

/// Reads the `SOCCAR_INCREMENTAL` escape hatch: `0`/`false`/`off`
/// disable incremental flip solving, anything else (or unset) enables it.
#[must_use]
pub fn incremental_default() -> bool {
    !matches!(
        std::env::var("SOCCAR_INCREMENTAL").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

/// Reads the `SOCCAR_PORTFOLIO` opt-in: `1`/`true`/`on` enable the
/// deterministic solver portfolio, anything else (or unset) keeps the
/// single-profile default.
#[must_use]
pub fn portfolio_default() -> bool {
    matches!(
        std::env::var("SOCCAR_PORTFOLIO").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

impl Default for ConcolicConfig {
    fn default() -> ConcolicConfig {
        ConcolicConfig {
            cycles: 24,
            max_rounds: 48,
            seed: 0xC0FFEE,
            init: InitPolicy::Ones,
            symbolic_inputs: Vec::new(),
            sweep_stride: 1,
            max_flip_attempts: 4,
            max_prefix: 256,
            skip_sweep: false,
            async_events: Vec::new(),
            jobs: 1,
            solver_budget: SolveBudget::UNLIMITED,
            max_round_flips: 0,
            round_deadline: None,
            failure_policy: FailurePolicy::FailFast,
            fault_plan: FaultPlan::default(),
            incremental: incremental_default(),
            portfolio: portfolio_default(),
            max_window_checks: 4,
            bve: soccar_smt::sat::bve_default(),
            clause_sharing: soccar_smt::solver::clause_sharing_default(),
            trail_reuse: soccar_smt::sat::trail_reuse_default(),
        }
    }
}

/// What one coverage target demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TargetGoal {
    /// A branch site must be observed taking direction `dir`.
    Site { site: BranchSiteId, dir: bool },
    /// A process (whole-block implicit event) must execute.
    Process(ProcessId),
}

/// A coverage target derived from the AR_CFG.
#[derive(Debug, Clone)]
struct Target {
    goal: TargetGoal,
    /// Index of the controllable domain to pulse, when direct reset
    /// scheduling can reach the target.
    domain_idx: Option<usize>,
    /// Human-readable description (kept for Debug output and diagnostics).
    #[allow(dead_code)]
    desc: String,
}

/// A property violation together with the schedule that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Violated property name.
    pub property: String,
    /// The reproducing schedule.
    pub schedule: TestSchedule,
    /// Round (1-based) at which the violation was first observed.
    pub round: usize,
}

/// The outcome of a full engine run.
#[derive(Debug, Clone)]
pub struct ConcolicReport {
    /// Rounds executed (concolic + sweep).
    pub rounds: usize,
    /// Total coverage targets derived from the AR_CFG.
    pub targets_total: usize,
    /// Targets covered.
    pub targets_covered: usize,
    /// Targets proven out of reach of the controllable inputs.
    pub targets_unreachable: usize,
    /// All distinct invalidation messages.
    pub violations: Vec<Violation>,
    /// Round (1-based) at which the first violation was observed.
    pub first_violation_round: Option<usize>,
    /// One witness schedule per violated property.
    pub witnesses: Vec<Witness>,
    /// Solver invocations: every issued flip query, consumed or
    /// speculative (the candidate set is fixed before the fan-out, so the
    /// count is job-count invariant).
    pub solver_calls: usize,
    /// Of which SAT.
    pub solver_sat: usize,
    /// Consumed flip attempts the solver gave up on (budget exhaustion or
    /// an injected `solver_unknown` fault). Each is a skipped flip, not a
    /// failure; job-count invariant.
    pub solver_unknown: usize,
    /// Flip-solve worker tasks that panicked (kept going under
    /// `FailurePolicy::KeepGoing`); job-count invariant.
    pub flips_failed: usize,
    /// Rounds whose flip planning was degraded (skipped flips, failed
    /// workers, a hit deadline, or a capped candidate list).
    pub degraded_rounds: usize,
    /// Sorted, deduplicated human-readable degradation reasons. Empty on
    /// a healthy run.
    pub degraded_reasons: Vec<String>,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Utilization counters of the flip-solve worker pool (wall-clock
    /// measurements; excluded from canonical report serializations).
    pub flip_exec: soccar_exec::PoolStats,
}

impl ConcolicReport {
    /// `true` if any property was violated.
    #[must_use]
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// `true` if the named property was violated.
    #[must_use]
    pub fn violated(&self, property: &str) -> bool {
        self.violations.iter().any(|v| v.property == property)
    }

    /// `true` if any part of the run was degraded (budget-skipped flips,
    /// failed workers, capped rounds, dropped monitors). A degraded run's
    /// results are honest but partial: absence of violations is *not*
    /// evidence of cleanliness.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.degraded_reasons.is_empty()
    }

    /// Coverage ratio over reachable targets.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let reachable = self.targets_total - self.targets_unreachable;
        if reachable == 0 {
            1.0
        } else {
            self.targets_covered as f64 / reachable as f64
        }
    }
}

/// A pool of retained pre-blasted incremental base solvers, shared
/// across engine instances (and hence across analysis-server requests).
///
/// Each entry is a frozen [`Solver`] whose [`BlastContext`] holds the CNF
/// of one round's observation window, keyed by the structural fingerprint
/// of the window's reachable term DAG plus the solve budget (see
/// [`TermGraph::reachable_fingerprint`]). A fingerprint match guarantees
/// every blasted [`TermId`] means the same thing in the new round's
/// graph, so reusing the context is sound and — because the retained base
/// was never `check`ed, hence carries no learnt clauses — produces
/// bit-identical results to rebuilding it.
///
/// Rounds whose window diverges simply miss; the pool is a pure
/// wall-clock optimization. Bounded FIFO eviction keeps the oldest
/// windows from pinning memory.
///
/// [`BlastContext`]: soccar_smt::BlastContext
#[derive(Debug)]
pub struct WarmBlastPool {
    entries: HashMap<u64, Arc<Solver>>,
    order: VecDeque<u64>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl WarmBlastPool {
    /// Creates a pool retaining at most `cap` base contexts.
    #[must_use]
    pub fn new(cap: usize) -> WarmBlastPool {
        WarmBlastPool {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A pool behind the `Arc<Mutex<…>>` handle the engine consumes.
    #[must_use]
    pub fn shared(cap: usize) -> Arc<Mutex<WarmBlastPool>> {
        Arc::new(Mutex::new(WarmBlastPool::new(cap)))
    }

    /// The retained base for `key`, if present. Bases are shared by
    /// handle — a retained base is frozen (pre-blasted, never `check`ed),
    /// so lookups and stores never deep-copy solver state.
    #[must_use]
    pub fn lookup(&mut self, key: u64) -> Option<Arc<Solver>> {
        match self.entries.get(&key) {
            Some(s) => {
                self.hits += 1;
                Some(Arc::clone(s))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Retains `base` under `key`, evicting the oldest entry at capacity.
    pub fn store(&mut self, key: u64, base: Arc<Solver>) {
        if self.entries.contains_key(&key) {
            return;
        }
        while self.entries.len() >= self.cap {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&old);
            self.evictions += 1;
        }
        self.entries.insert(key, base);
        self.order.push_back(key);
    }

    /// `(hits, misses, evictions)` since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Number of retained contexts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The reset-aware concolic engine. See the [module docs](self).
#[derive(Debug)]
pub struct ConcolicEngine<'d> {
    design: &'d Design,
    properties: Vec<SecurityProperty>,
    config: ConcolicConfig,
    clocks: Vec<NetId>,
    plain_inputs: Vec<NetId>,
    domains: Vec<(String, NetId, bool)>,
    inputs: Vec<(String, NetId, u32)>,
    targets: Vec<Target>,
    covered: Vec<bool>,
    unreachable: Vec<bool>,
    pulse_attempts: HashMap<usize, u64>,
    flip_stats: soccar_exec::PoolStats,
    /// Global flip-candidate sequence number — assigned serially in
    /// Phase A order, so it is the deterministic index the fault plan
    /// keys on.
    flip_seq: u64,
    solver_unknown: usize,
    flips_failed: usize,
    degraded_rounds: usize,
    degraded_reasons: BTreeSet<String>,
    recorder: soccar_obs::Recorder,
    domain_polarity: Vec<(String, bool)>,
    /// Domains owning at least one clock-composed implicit governor
    /// (Refined analysis only); these also get a high-phase sweep.
    clock_composed: Vec<bool>,
    /// Cross-request pool of pre-blasted incremental bases; `None` (the
    /// batch default) builds each round's base from scratch.
    warm_blast: Option<Arc<Mutex<WarmBlastPool>>>,
}

impl<'d> ConcolicEngine<'d> {
    /// Builds an engine from bound AR_CFG events.
    ///
    /// # Errors
    ///
    /// Returns a message if a configured symbolic input does not exist or
    /// is not a top-level input.
    pub fn new(
        design: &'d Design,
        events: &[BoundEvent],
        properties: Vec<SecurityProperty>,
        config: ConcolicConfig,
    ) -> Result<ConcolicEngine<'d>, String> {
        // Clocks & leftover inputs, by name.
        let naming = soccar_cfg::ResetNaming::new();
        let mut clocks = Vec::new();
        let mut plain_inputs = Vec::new();
        // Controllable domains (unique, ordered by name).
        let mut domains: Vec<(String, NetId, bool)> = Vec::new();
        for ev in events {
            if !ev.domain_top_level {
                continue;
            }
            let Some(net) = ev.domain_net else { continue };
            if !design.net(net).is_top_input {
                continue;
            }
            if !domains.iter().any(|(s, _, _)| *s == ev.domain_source) {
                domains.push((ev.domain_source.clone(), net, ev.domain_active_low));
            }
        }
        domains.sort_by(|a, b| a.0.cmp(&b.0));
        // Extra asynchronous event lines become pseudo-domains: swept and
        // randomized like resets, but asserted active-high and carrying no
        // AR_CFG events of their own.
        for name in &config.async_events {
            let net = design
                .find_net(name)
                .ok_or_else(|| format!("async event `{name}` not found"))?;
            let info = design.net(net);
            if !info.is_top_input || info.width != 1 {
                return Err(format!("async event `{name}` must be a 1-bit top input"));
            }
            if !domains.iter().any(|(s, _, _)| s == name) {
                domains.push((name.clone(), net, false));
            }
        }
        // Symbolic data inputs.
        let mut inputs = Vec::new();
        for name in &config.symbolic_inputs {
            let net = design
                .find_net(name)
                .ok_or_else(|| format!("symbolic input `{name}` not found"))?;
            if !design.net(net).is_top_input {
                return Err(format!("symbolic input `{name}` is not a top-level input"));
            }
            inputs.push((name.clone(), net, design.net(net).width));
        }
        for net in design.top_inputs() {
            let info = design.net(net);
            let is_domain = domains.iter().any(|(_, n, _)| *n == net);
            let is_symbolic = inputs.iter().any(|(_, n, _)| *n == net);
            if is_domain || is_symbolic {
                continue;
            }
            if naming.is_clock_name(&info.local_name) {
                clocks.push(net);
            } else {
                plain_inputs.push(net);
            }
        }
        // Targets.
        let mut targets = Vec::new();
        let mut seen = HashSet::new();
        for ev in events {
            let domain_idx = domains.iter().position(|(s, _, _)| *s == ev.domain_source);
            if ev.event.arm == EventArm::WholeBlock {
                let goal = TargetGoal::Process(ev.process);
                if seen.insert(goal) {
                    targets.push(Target {
                        goal,
                        domain_idx,
                        desc: format!(
                            "whole-block reset event in `{}` (always #{})",
                            ev.instance, ev.event.always_index
                        ),
                    });
                }
                continue;
            }
            // Explicit event: its own site both ways, plus every nested
            // site of the process (the subCFGs of the reset-governed
            // block), both ways.
            let mut sites: Vec<BranchSiteId> = design
                .sites()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.process == ev.process)
                .map(|(i, _)| BranchSiteId(i as u32))
                .collect();
            sites.sort_unstable();
            for site in sites {
                for dir in [true, false] {
                    let goal = TargetGoal::Site { site, dir };
                    if seen.insert(goal) {
                        targets.push(Target {
                            goal,
                            domain_idx,
                            desc: format!(
                                "site {} dir {dir} in `{}` (always #{})",
                                site.0, ev.instance, ev.event.always_index
                            ),
                        });
                    }
                }
            }
        }
        let n = targets.len();
        let domain_polarity = domains.iter().map(|(s, _, al)| (s.clone(), *al)).collect();
        let mut clock_composed = vec![false; domains.len()];
        for ev in events {
            let composed = ev
                .event
                .governor
                .as_ref()
                .is_some_and(|g| g.composed_with_clock);
            if composed {
                if let Some(di) = domains.iter().position(|(s, _, _)| *s == ev.domain_source) {
                    clock_composed[di] = true;
                }
            }
        }
        Ok(ConcolicEngine {
            design,
            properties,
            config,
            clocks,
            plain_inputs,
            domains,
            inputs,
            targets,
            covered: vec![false; n],
            unreachable: vec![false; n],
            pulse_attempts: HashMap::new(),
            flip_stats: soccar_exec::PoolStats::default(),
            flip_seq: 0,
            solver_unknown: 0,
            flips_failed: 0,
            degraded_rounds: 0,
            degraded_reasons: BTreeSet::new(),
            recorder: soccar_obs::Recorder::disabled(),
            domain_polarity,
            clock_composed,
            warm_blast: None,
        })
    }

    /// Attaches a shared [`WarmBlastPool`]: when a round's observation
    /// window structurally matches a retained entry, the incremental base
    /// solver is cloned from the pool instead of re-blasted, and the
    /// reuse is counted as `smt.warm_blast_hits`. Results are unchanged
    /// either way; only wall-clock time moves. Used by the analysis
    /// server to keep blast state warm across requests.
    #[must_use]
    pub fn with_warm_blast(mut self, pool: Arc<Mutex<WarmBlastPool>>) -> Self {
        self.warm_blast = Some(pool);
        self
    }

    /// Attaches an observability recorder: each concolic round gets a
    /// `concolic.round` span (sweep phases get per-domain `concolic.sweep`
    /// / `concolic.sweep_high` spans), flip planning feeds the
    /// `concolic.flip_candidates` / `concolic.flip_consumed` /
    /// `concolic.flip_sat` counters, and every flip solve — including the
    /// speculative ones — reports through [`Solver::check_traced`].
    ///
    /// Because `plan_next` always solves *all* collected candidates, the
    /// solver metrics are identical for every job count even though the
    /// solves run on worker threads.
    #[must_use]
    pub fn with_recorder(mut self, recorder: soccar_obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Controllable reset domains `(source, net, active_low)`.
    #[must_use]
    pub fn domains(&self) -> &[(String, NetId, bool)] {
        &self.domains
    }

    /// Number of coverage targets.
    #[must_use]
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Runs Algorithm 3 to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (e.g. an unstable design).
    pub fn run(&mut self) -> SimResult<ConcolicReport> {
        let start = Instant::now();
        let mut schedule = self.base_schedule();
        schedule.randomize(self.config.seed);
        let mut violations: Vec<Violation> = Vec::new();
        let mut witnesses: Vec<Witness> = Vec::new();
        let mut first_violation_round: Option<usize> = None;
        let mut rounds = 0usize;
        let mut solver_calls = 0usize;
        let mut solver_sat = 0usize;

        // Phase 1: concolic coverage loop.
        while rounds < self.config.max_rounds {
            rounds += 1;
            let round_started = Instant::now();
            let mut round_span = soccar_obs::span!(self.recorder, "concolic.round", round = rounds);
            let (mut sim, round_violations) = self.execute_round(&schedule)?;
            self.absorb_coverage(&sim);
            self.merge_violations(
                rounds,
                &schedule,
                round_violations,
                &mut violations,
                &mut witnesses,
            );
            if first_violation_round.is_none() && !violations.is_empty() {
                first_violation_round = Some(rounds);
            }
            round_span.record("covered", self.covered.iter().filter(|c| **c).count());
            round_span.record("violations", violations.len());
            if self.all_covered() {
                break;
            }
            if self.round_deadline_hit(round_started, rounds) {
                self.degraded_rounds += 1;
                self.degraded_reasons.insert(format!(
                    "round {rounds}: round deadline exceeded; flip planning skipped, continuing with sweep"
                ));
                break;
            }
            match self.plan_next(
                &mut sim,
                &schedule,
                rounds,
                &mut solver_calls,
                &mut solver_sat,
            ) {
                Some(next) => schedule = next,
                None => break,
            }
        }

        // Phase 2: systematic reset sweep (assert each domain at each
        // cycle position; catches state-dependent payloads).
        if !self.config.skip_sweep {
            for di in 0..self.domains.len() {
                let sweep_rounds_before = rounds;
                let mut sweep_span = soccar_obs::span!(
                    self.recorder,
                    "concolic.sweep",
                    domain = self.domains[di].0.as_str()
                );
                let mut at = 1;
                while at < self.config.cycles {
                    let mut s = self.base_schedule();
                    s.randomize(self.config.seed.wrapping_add(at));
                    s.power_on_only();
                    s.add_pulse(di, at, 1);
                    rounds += 1;
                    let (sim, round_violations) = self.execute_round(&s)?;
                    self.absorb_coverage(&sim);
                    self.merge_violations(
                        rounds,
                        &s,
                        round_violations,
                        &mut violations,
                        &mut witnesses,
                    );
                    if first_violation_round.is_none() && !violations.is_empty() {
                        first_violation_round = Some(rounds);
                    }
                    at += self.config.sweep_stride;
                }
                sweep_span.record("rounds", rounds - sweep_rounds_before);
                drop(sweep_span);
            }
            // Phase 3: clock-high-phase sweep for domains that the
            // Refined analysis flagged as having clock-composed implicit
            // governors. The Explicit analysis never flags any, so this
            // phase is empty there — which is precisely why the published
            // tool misses the AutoSoC #2 SHA256 bug.
            for di in 0..self.domains.len() {
                if !self.clock_composed[di] {
                    continue;
                }
                let sweep_rounds_before = rounds;
                let mut sweep_span = soccar_obs::span!(
                    self.recorder,
                    "concolic.sweep_high",
                    domain = self.domains[di].0.as_str()
                );
                let mut at = 1;
                while at < self.config.cycles {
                    let mut s = self.base_schedule();
                    s.randomize(self.config.seed.wrapping_add(0x9E37 + at));
                    s.power_on_only();
                    s.add_high_phase_pulse(di, at);
                    rounds += 1;
                    let (sim, round_violations) = self.execute_round(&s)?;
                    self.absorb_coverage(&sim);
                    self.merge_violations(
                        rounds,
                        &s,
                        round_violations,
                        &mut violations,
                        &mut witnesses,
                    );
                    if first_violation_round.is_none() && !violations.is_empty() {
                        first_violation_round = Some(rounds);
                    }
                    at += self.config.sweep_stride;
                }
                sweep_span.record("rounds", rounds - sweep_rounds_before);
                drop(sweep_span);
            }
        }

        let covered = self.covered.iter().filter(|c| **c).count();
        let unreachable = self.unreachable.iter().filter(|u| **u).count();
        self.recorder.counter_add("concolic.rounds", rounds as u64);
        // Resilience counters are only bumped when degradation actually
        // happened, keeping healthy-run traces byte-identical to before.
        if self.solver_unknown > 0 {
            self.recorder
                .counter_add("resilience.solver_unknown", self.solver_unknown as u64);
        }
        if self.flips_failed > 0 {
            self.recorder
                .counter_add("resilience.flips_failed", self.flips_failed as u64);
        }
        if self.degraded_rounds > 0 {
            self.recorder
                .counter_add("resilience.degraded_rounds", self.degraded_rounds as u64);
        }
        Ok(ConcolicReport {
            rounds,
            targets_total: self.targets.len(),
            targets_covered: covered,
            targets_unreachable: unreachable,
            violations,
            first_violation_round,
            witnesses,
            solver_calls,
            solver_sat,
            solver_unknown: self.solver_unknown,
            flips_failed: self.flips_failed,
            degraded_rounds: self.degraded_rounds,
            degraded_reasons: self.degraded_reasons.iter().cloned().collect(),
            elapsed: start.elapsed(),
            flip_exec: self.flip_stats,
        })
    }

    /// `true` if the round's wall-clock deadline is exceeded, or the fault
    /// plan injects a deterministic `round_timeout` for this round.
    fn round_deadline_hit(&self, round_started: Instant, round: usize) -> bool {
        if self
            .config
            .fault_plan
            .should_inject("round_timeout", round as u64)
        {
            return true;
        }
        self.config
            .round_deadline
            .is_some_and(|d| round_started.elapsed() >= d)
    }

    fn base_schedule(&self) -> TestSchedule {
        TestSchedule::quiet(
            self.config.cycles,
            self.domains.clone(),
            self.inputs.clone(),
        )
    }

    /// One `Simulate(Input, Restricts)` call of Algorithm 3.
    ///
    /// Monitors that fail to resolve (or error mid-check) are dropped
    /// into the run's degraded reasons instead of being silently ignored
    /// or panicking: the analysis continues, visibly partial.
    fn execute_round(
        &mut self,
        schedule: &TestSchedule,
    ) -> SimResult<(Simulator<'d, CoAlgebra>, Vec<Violation>)> {
        let mut sim = Simulator::with_algebra(self.design, CoAlgebra::new(), self.config.init);
        let mut monitors: Vec<PropertyMonitor> = Vec::new();
        for p in &self.properties {
            match PropertyMonitor::resolve(self.design, p.clone(), &self.domain_polarity) {
                Ok(m) => monitors.push(m),
                Err(e) => {
                    self.degraded_reasons
                        .insert(format!("property monitor dropped: {e}"));
                }
            }
        }
        let mut violations = Vec::new();

        // Time-zero: deassert resets, park clocks, zero uncontrolled inputs.
        for track in &schedule.resets {
            let deassert = LogicVec::from_u64(1, u64::from(track.active_low));
            sim.write_input(track.net, deassert)?;
        }
        for clk in &self.clocks {
            sim.write_input(*clk, LogicVec::from_u64(1, 0))?;
        }
        for net in &self.plain_inputs {
            let w = self.design.net(*net).width;
            sim.write_input(*net, LogicVec::zeros(w))?;
        }
        sim.settle()?;

        for cycle in 0..schedule.cycles {
            for (i, track) in schedule.inputs.iter().enumerate() {
                let v = sim.algebra_mut().symbolic_input(
                    &format!("in_{i}_{cycle}"),
                    track.values[cycle as usize].clone(),
                );
                sim.write_input_value(track.net, v)?;
            }
            // Asynchronous reset lines change before the clock edge —
            // except high-phase pulses, which assert after the rise.
            for (d, track) in schedule.resets.iter().enumerate() {
                let hp = track
                    .high_phase
                    .get(cycle as usize)
                    .copied()
                    .unwrap_or(false);
                let value = if hp {
                    LogicVec::from_u64(1, u64::from(track.active_low))
                } else {
                    track.value_at(cycle)
                };
                let v = sim
                    .algebra_mut()
                    .symbolic_input(&format!("rst_{d}_{cycle}"), value);
                sim.write_input_value(track.net, v)?;
            }
            sim.settle()?;
            for clk in &self.clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 1))?;
            }
            sim.settle()?;
            // High-phase assertion: the reset edge lands while the clock
            // is high (excites clock-composed implicit governors).
            for (d, track) in schedule.resets.iter().enumerate() {
                if track
                    .high_phase
                    .get(cycle as usize)
                    .copied()
                    .unwrap_or(false)
                {
                    let v = sim
                        .algebra_mut()
                        .symbolic_input(&format!("rsthi_{d}_{cycle}"), track.value_at(cycle));
                    sim.write_input_value(track.net, v)?;
                    sim.settle()?;
                }
            }
            sim.advance_time(1);
            for clk in &self.clocks {
                sim.write_input(*clk, LogicVec::from_u64(1, 0))?;
            }
            sim.settle()?;
            sim.advance_time(1);
            for mon in &mut monitors {
                match mon.check_cycle(&sim, cycle) {
                    Ok(found) => violations.extend(found),
                    Err(e) => {
                        self.degraded_reasons
                            .insert(format!("property check skipped: {e}"));
                    }
                }
            }
            // Shadow the concrete checks with symbolic proof obligations:
            // whenever a monitored net carries a term, record the 1-bit
            // "property holds" formula so flip planning can pre-blast it
            // (blast-only, never assumed — see `ConcolicConfig::
            // max_window_checks`). Serial and in monitor order, so the
            // observation log stays deterministic.
            if self.config.max_window_checks > 0 {
                for mon in &monitors {
                    if let Some(t) = mon.symbolic_obligation(&mut sim) {
                        sim.algebra_mut().record_check(t);
                    }
                }
            }
        }
        Ok((sim, violations))
    }

    fn absorb_coverage(&mut self, sim: &Simulator<'d, CoAlgebra>) {
        let site_cov = sim.algebra().coverage();
        let runs = sim.process_run_counts();
        for (i, t) in self.targets.iter().enumerate() {
            if self.covered[i] {
                continue;
            }
            let hit = match &t.goal {
                TargetGoal::Site { site, dir } => site_cov.contains(&(*site, *dir)),
                TargetGoal::Process(p) => runs[p.0 as usize] > 0,
            };
            if hit {
                self.covered[i] = true;
            }
        }
    }

    fn all_covered(&self) -> bool {
        self.covered
            .iter()
            .zip(&self.unreachable)
            .all(|(c, u)| *c || *u)
    }

    fn merge_violations(
        &self,
        round: usize,
        schedule: &TestSchedule,
        fresh: Vec<Violation>,
        out: &mut Vec<Violation>,
        witnesses: &mut Vec<Witness>,
    ) {
        for v in fresh {
            if out.iter().any(|e| e.property == v.property) {
                continue;
            }
            witnesses.push(Witness {
                property: v.property.clone(),
                schedule: schedule.clone(),
                round,
            });
            out.push(v);
        }
    }

    /// Picks an uncovered target and produces the next schedule, either by
    /// solver-driven branch flipping or by direct reset scheduling.
    ///
    /// The flip solves — the expensive part of a round — fan out over the
    /// worker pool: every uncovered target's candidate occurrences are
    /// collected up front in stable `(target index, occurrence index)`
    /// order, solved speculatively against independent clones of the
    /// round's term graph, and then *consumed* by a serial decision walk
    /// identical to the original single-threaded loop. Because each solve
    /// depends only on its own candidate (never on a sibling's outcome or
    /// scheduling), the chosen schedule, the solver counters, and thus the
    /// whole report are bit-identical for every job count.
    fn plan_next(
        &mut self,
        sim: &mut Simulator<'d, CoAlgebra>,
        schedule: &TestSchedule,
        round: usize,
        solver_calls: &mut usize,
        solver_sat: &mut usize,
    ) -> Option<TestSchedule> {
        let obs: Vec<BranchObservation> = sim.algebra().observations().to_vec();
        // Goals are `Copy` ids interned at construction time, so the
        // per-round bookkeeping copies `(index, goal, domain)` triples
        // instead of deep-cloning `Target`s.
        let targets: Vec<(usize, TargetGoal, Option<usize>)> = self
            .targets
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.covered[*i] && !self.unreachable[*i])
            .map(|(i, t)| (i, t.goal, t.domain_idx))
            .collect();
        let mut round_degraded = false;

        // Phase A: collect flip candidates in deterministic order.
        let mut picks: Vec<(usize, usize, bool)> = Vec::new(); // (target, obs index, dir)
        for (ti, goal, _) in &targets {
            if let TargetGoal::Site { site, dir } = goal {
                picks.extend(
                    obs.iter()
                        .enumerate()
                        .filter(|(_, o)| o.site == *site && o.taken != *dir)
                        .take(self.config.max_flip_attempts)
                        .map(|(k, _)| (*ti, k, *dir)),
                );
            }
        }
        // Per-round cap: drop the tail in stable order, and say so.
        if self.config.max_round_flips > 0 && picks.len() > self.config.max_round_flips {
            let dropped = picks.len() - self.config.max_round_flips;
            picks.truncate(self.config.max_round_flips);
            round_degraded = true;
            self.degraded_reasons.insert(format!(
                "round {round}: flip attempts capped at {} ({dropped} dropped)",
                self.config.max_round_flips
            ));
        }
        // Sequence numbers are assigned serially here — they are the
        // deterministic per-analysis index the fault plan keys on.
        let candidates: Vec<FlipCandidate> = picks
            .into_iter()
            .map(|(target, obs_index, dir)| {
                self.flip_seq += 1;
                FlipCandidate {
                    target,
                    obs_index,
                    dir,
                    seq: self.flip_seq,
                }
            })
            .collect();

        // Phase B: solve all candidates on the pool. Some solves are
        // speculative (a candidate after the consumed SAT one, or after a
        // target that pulses instead) — wasted CPU at worst, never a
        // behavior change, because only consumed results are counted.
        // Solver metrics recorded inside the workers stay deterministic
        // for the same reason: the candidate set never depends on jobs.
        // KeepGoing turns a panicking flip task into an index-ordered
        // Failed slot, so one bad solve degrades the round, not the run.
        self.recorder
            .counter_add("concolic.flip_candidates", candidates.len() as u64);
        // Every issued query counts, consumed or speculative — the old
        // consumed-only count read 0 whenever the decision walk stopped
        // before its first site target. Still job-count invariant: the
        // candidate set is fixed before the fan-out.
        *solver_calls += candidates.len();
        let max_prefix = self.config.max_prefix;
        let portfolio = self.config.portfolio;
        let budget = self.config.solver_budget;
        let tuning = SolverTuning {
            budget,
            bve: self.config.bve,
            clause_sharing: self.config.clause_sharing,
            trail_reuse: self.config.trail_reuse,
        };
        let plan = &self.config.fault_plan;
        let recorder = &self.recorder;
        let (solved, stats) = if self.config.incremental && !candidates.is_empty() {
            // Incremental path: intern the negated conditions into the
            // round's own graph (it is append-only and the simulation is
            // over, so existing TermIds keep their meaning), then blast
            // the whole observation window ONCE into a frozen base
            // solver. Workers clone the blasted state — cheap relative to
            // re-blasting — and discharge their candidate with
            // retractable assumptions. Each solve is still a pure
            // function of the frozen round state, so reports stay
            // bit-identical for every job count.
            let neg: Vec<TermId> = {
                let g = &mut sim.algebra_mut().graph;
                obs.iter().map(|o| g.not(o.cond)).collect()
            };
            let extras = recent_check_terms(
                sim.algebra().check_observations(),
                self.config.max_window_checks,
            );
            let graph = &sim.algebra().graph;
            let max_k = candidates
                .iter()
                .map(|c| c.obs_index)
                .max()
                .expect("candidates is non-empty");
            let window_start = candidates
                .iter()
                .map(|c| c.obs_index.saturating_sub(max_prefix))
                .min()
                .expect("candidates is non-empty");
            let mut window = Vec::with_capacity(2 * (max_k + 1 - window_start) + extras.len());
            for i in window_start..=max_k {
                window.push(obs[i].cond);
                window.push(neg[i]);
            }
            // The round's symbolic security-check obligations ride along:
            // blast-only (Tseitin is satisfiability-preserving and nothing
            // here is assumed), so every answer is unchanged — but the
            // shared context now carries the checks' real clauses, which
            // `check_assuming` re-uses across every candidate.
            window.extend_from_slice(&extras);
            // A retained base is only valid if every window term means
            // the same thing, so the pool key is the structural
            // fingerprint of the window's reachable DAG (plus the budget
            // baked into the solver).
            let warm_key = self.warm_blast.as_ref().map(|_| {
                let mut h = graph.reachable_fingerprint(&window);
                for id in &window {
                    h = h.rotate_left(7) ^ u64::from(id.0);
                }
                h ^ budget.max_conflicts.unwrap_or(u64::MAX).rotate_left(17)
                    ^ budget.max_decisions.unwrap_or(u64::MAX).rotate_left(31)
                    ^ u64::from(self.config.portfolio).rotate_left(43)
                    // The solver-speed knobs are baked into a retained
                    // base's behavior, so they key the pool too.
                    ^ u64::from(self.config.bve).rotate_left(47)
                    ^ u64::from(self.config.clause_sharing).rotate_left(53)
                    ^ u64::from(self.config.trail_reuse).rotate_left(59)
            });
            let warm = warm_key.and_then(|key| {
                let pool = self.warm_blast.as_ref().expect("key implies pool");
                let hit = pool.lock().expect("warm-blast pool poisoned").lookup(key);
                if hit.is_some() {
                    recorder.counter_add("smt.warm_blast_hits", 1);
                }
                hit
            });
            let base = match warm {
                Some(base) => base,
                None => {
                    let mut base = tuning.build();
                    base.preblast(graph, &window);
                    // Shared-prefix blasting work saved while building
                    // the base context (recorded once; per-call hits are
                    // recorded by the workers' `check_assuming_traced`).
                    let base_hits = base.blast_cache_hits();
                    if base_hits > 0 {
                        recorder.counter_add("smt.blast_cache_hits", base_hits);
                    }
                    let base = Arc::new(base);
                    if let (Some(key), Some(pool)) = (warm_key, &self.warm_blast) {
                        pool.lock()
                            .expect("warm-blast pool poisoned")
                            .store(key, Arc::clone(&base));
                    }
                    base
                }
            };
            let base = &*base;
            let neg = &neg;
            soccar_exec::parallel_map_policy(
                self.config.jobs,
                &candidates,
                self.config.failure_policy,
                |c| {
                    if plan.should_inject("task_panic:flips", c.seq) {
                        panic!("injected fault: task_panic@flips:{}", c.seq);
                    }
                    if plan.should_inject("solver_unknown", c.seq) {
                        return FlipOutcome::Unknown(format!(
                            "injected fault: solver_unknown@{}",
                            c.seq
                        ));
                    }
                    solve_flip_assuming(
                        base,
                        graph,
                        &obs,
                        neg,
                        schedule,
                        c.obs_index,
                        c.dir,
                        max_prefix,
                        portfolio,
                        recorder,
                    )
                },
            )
        } else {
            let graph = &sim.algebra().graph;
            soccar_exec::parallel_map_policy(
                self.config.jobs,
                &candidates,
                self.config.failure_policy,
                |c| {
                    if plan.should_inject("task_panic:flips", c.seq) {
                        panic!("injected fault: task_panic@flips:{}", c.seq);
                    }
                    if plan.should_inject("solver_unknown", c.seq) {
                        return FlipOutcome::Unknown(format!(
                            "injected fault: solver_unknown@{}",
                            c.seq
                        ));
                    }
                    let mut g = graph.clone();
                    solve_flip(
                        &mut g,
                        &obs,
                        schedule,
                        c.obs_index,
                        c.dir,
                        max_prefix,
                        tuning,
                        recorder,
                    )
                },
            )
        };
        self.flip_stats.absorb(&stats);

        // Degradation accounting covers EVERY candidate, consumed or
        // speculative — the candidate set and the index-ordered outcome
        // vector are pure functions of the serial round state, so this
        // stays deterministic. A lost flip is a lost flip even when the
        // decision walk below would have skipped past it.
        for (outcome, cand) in solved.iter().zip(&candidates) {
            match outcome {
                TaskOutcome::Ok(FlipOutcome::Sat(_) | FlipOutcome::Unsat) => {}
                TaskOutcome::Ok(FlipOutcome::Unknown(reason)) => {
                    self.solver_unknown += 1;
                    round_degraded = true;
                    self.degraded_reasons.insert(format!(
                        "round {round}: flip {} skipped: {reason}",
                        cand.seq
                    ));
                }
                TaskOutcome::Failed { panic } => {
                    self.flips_failed += 1;
                    round_degraded = true;
                    self.degraded_reasons.insert(format!(
                        "round {round}: flip {} worker panicked: {panic}",
                        cand.seq
                    ));
                }
            }
        }

        // Phase C: the serial decision walk, consuming solver results in
        // candidate order instead of invoking the solver inline. Unknown
        // and panicked slots are *skipped* flips: already recorded above,
        // never fatal, never consumed as answers.
        let mut chosen: Option<TestSchedule> = None;
        let mut ci = 0usize;
        'targets: for (ti, goal, domain_idx) in targets {
            match goal {
                TargetGoal::Site { .. } => {
                    let mine = candidates[ci..]
                        .iter()
                        .take_while(|c| c.target == ti)
                        .count();
                    if mine > 0 {
                        for outcome in &solved[ci..ci + mine] {
                            self.recorder.counter_add("concolic.flip_consumed", 1);
                            match outcome {
                                TaskOutcome::Ok(FlipOutcome::Sat(next)) => {
                                    *solver_sat += 1;
                                    self.recorder.counter_add("concolic.flip_sat", 1);
                                    chosen = Some(next.clone());
                                    break 'targets;
                                }
                                TaskOutcome::Ok(FlipOutcome::Unsat | FlipOutcome::Unknown(_))
                                | TaskOutcome::Failed { .. } => {}
                            }
                        }
                        // No flip solved: keep the target for the sweep.
                        ci += mine;
                        continue;
                    }
                    // Site never ran with a symbolic condition: schedule a
                    // pulse so the process (and its governor test) runs.
                    if let Some(next) = self.schedule_pulse(ti, domain_idx, schedule) {
                        chosen = Some(next);
                        break 'targets;
                    }
                }
                TargetGoal::Process(_) => {
                    if let Some(next) = self.schedule_pulse(ti, domain_idx, schedule) {
                        chosen = Some(next);
                        break 'targets;
                    }
                }
            }
        }
        if round_degraded {
            self.degraded_rounds += 1;
        }
        chosen
    }

    /// Direct reset scheduling: assert the target's domain at a rotating
    /// cycle position.
    fn schedule_pulse(
        &mut self,
        target_idx: usize,
        domain_idx: Option<usize>,
        schedule: &TestSchedule,
    ) -> Option<TestSchedule> {
        let Some(di) = domain_idx else {
            // No controllable domain reaches this target.
            self.unreachable[target_idx] = true;
            return None;
        };
        let attempt = self.pulse_attempts.entry(target_idx).or_insert(0);
        *attempt += 1;
        if *attempt >= self.config.cycles {
            self.unreachable[target_idx] = true;
            return None;
        }
        let at = *attempt; // cycles 1, 2, 3, ...
        let mut next = schedule.clone();
        next.add_pulse(di, at, 1);
        Some(next)
    }

    /// Runs one concrete round and freezes its symbolic state into a
    /// [`FlipWorkload`], so the one-shot and incremental flip-solving
    /// strategies can be compared on identical inputs (the `flip_solving`
    /// benchmark). Does not advance engine coverage state.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors, as [`ConcolicEngine::run`].
    pub fn flip_workload(&mut self) -> SimResult<FlipWorkload> {
        let mut schedule = self.base_schedule();
        schedule.randomize(self.config.seed);
        let (mut sim, _violations) = self.execute_round(&schedule)?;
        let observations = sim.algebra().observations().to_vec();
        let neg: Vec<TermId> = {
            let g = &mut sim.algebra_mut().graph;
            observations.iter().map(|o| g.not(o.cond)).collect()
        };
        let checks = recent_check_terms(
            sim.algebra().check_observations(),
            self.config.max_window_checks,
        );
        Ok(FlipWorkload {
            graph: sim.algebra().graph.clone(),
            neg,
            observations,
            checks,
            schedule,
            max_prefix: self.config.max_prefix,
            tuning: SolverTuning {
                budget: self.config.solver_budget,
                bve: self.config.bve,
                clause_sharing: self.config.clause_sharing,
                trail_reuse: self.config.trail_reuse,
            },
        })
    }
}

/// One round's frozen symbolic state, packaged for the `flip_solving`
/// benchmark: the term graph, branch observations, pre-interned negated
/// conditions, and the schedule they were produced under. Both solve
/// strategies flip each candidate observation towards its untaken
/// direction, so their answers — and SAT counts — must agree.
#[derive(Debug, Clone)]
pub struct FlipWorkload {
    graph: TermGraph,
    neg: Vec<TermId>,
    observations: Vec<BranchObservation>,
    /// Deduplicated, capped symbolic security-check obligations of the
    /// round, folded into the incremental window preblast (blast-only).
    checks: Vec<TermId>,
    schedule: TestSchedule,
    max_prefix: usize,
    tuning: SolverTuning,
}

impl FlipWorkload {
    /// Overrides the trail-reuse knob for this workload's solvers — the
    /// `flip_trail_reuse_q` benchmark control, which re-times the
    /// incremental pass with reuse disabled on otherwise identical
    /// inputs.
    #[must_use]
    pub fn with_trail_reuse(mut self, on: bool) -> Self {
        self.tuning.trail_reuse = on;
        self
    }
    /// Number of flip candidates a `cap`-limited pass solves (the last
    /// `cap` observations of the round, longest path prefixes first-class).
    #[must_use]
    pub fn candidates(&self, cap: usize) -> usize {
        self.observations.len().min(cap)
    }

    /// Solves the candidates one-shot: each clones the term graph and
    /// re-blasts its whole prefix from scratch (the legacy path, kept as
    /// the `SOCCAR_INCREMENTAL=0` escape hatch). Returns the SAT count.
    #[must_use]
    pub fn solve_oneshot(&self, cap: usize, recorder: &soccar_obs::Recorder) -> usize {
        let n = self.candidates(cap);
        let len = self.observations.len();
        let mut sat = 0;
        for k in len - n..len {
            let dir = !self.observations[k].taken;
            let mut g = self.graph.clone();
            let outcome = solve_flip(
                &mut g,
                &self.observations,
                &self.schedule,
                k,
                dir,
                self.max_prefix,
                self.tuning,
                recorder,
            );
            sat += usize::from(matches!(outcome, FlipOutcome::Sat(_)));
        }
        sat
    }

    /// Solves the same candidates incrementally: the shared window is
    /// blasted once into a base solver, each candidate runs
    /// `check_assuming` on a clone of the blasted state. Returns the SAT
    /// count, which must equal [`FlipWorkload::solve_oneshot`]'s.
    #[must_use]
    pub fn solve_incremental(&self, cap: usize, recorder: &soccar_obs::Recorder) -> usize {
        let n = self.candidates(cap);
        let len = self.observations.len();
        let mut base = self.tuning.build();
        let window_start = (len - n).saturating_sub(self.max_prefix);
        let mut window = Vec::with_capacity(2 * (len - window_start) + self.checks.len());
        for i in window_start..len {
            window.push(self.observations[i].cond);
            window.push(self.neg[i]);
        }
        window.extend_from_slice(&self.checks);
        base.preblast(&self.graph, &window);
        let hits = base.blast_cache_hits();
        if hits > 0 {
            recorder.counter_add("smt.blast_cache_hits", hits);
        }
        let mut sat = 0;
        for k in len - n..len {
            let dir = !self.observations[k].taken;
            // Serial, so no per-candidate clone: one context answers every
            // candidate and keeps its learnt clauses between them.
            let outcome = solve_flip_on(
                &mut base,
                &self.graph,
                &self.observations,
                &self.neg,
                &self.schedule,
                k,
                dir,
                self.max_prefix,
                false,
                recorder,
            );
            sat += usize::from(matches!(outcome, FlipOutcome::Sat(_)));
        }
        sat
    }
}

/// One speculative flip attempt: flip observation `obs_index` towards
/// `dir` on behalf of uncovered target `target`. `seq` is the 1-based
/// serial flip-candidate number across the whole analysis — the index
/// the fault plan's `solver_unknown@N` / `task_panic@flips:N` points
/// key on.
#[derive(Debug, Clone, Copy)]
struct FlipCandidate {
    target: usize,
    obs_index: usize,
    dir: bool,
    seq: u64,
}

/// Result of one flip solve: a new schedule, a definite "no", or a
/// budget-exhausted "don't know" the engine records and skips.
#[derive(Debug, Clone)]
enum FlipOutcome {
    Sat(TestSchedule),
    Unsat,
    Unknown(String),
}

/// Solver construction parameters a flip solve inherits from the engine
/// config: the per-query budget plus the solver-speed knobs (BVE,
/// portfolio clause sharing, trail reuse). Bundled so one-shot workers,
/// the incremental base, and the warm-blast pool all build identically
/// tuned solvers.
#[derive(Debug, Clone, Copy)]
struct SolverTuning {
    budget: SolveBudget,
    bve: bool,
    clause_sharing: bool,
    trail_reuse: bool,
}

impl SolverTuning {
    /// A fresh [`Solver`] with this tuning applied.
    fn build(self) -> Solver {
        let mut s = Solver::with_budget(self.budget);
        s.set_bve(self.bve);
        s.set_clause_sharing(self.clause_sharing);
        s.set_trail_reuse(self.trail_reuse);
        s
    }
}

/// Attempts to flip observation `k` towards `dir`, conjoining the path
/// prefix, and rebuilds the schedule from the model.
///
/// Runs on worker threads against a private clone of the round's term
/// graph, so the result is a pure function of `(graph, obs, schedule, k,
/// dir, max_prefix, budget)` — the determinism anchor of the parallel
/// round.
#[allow(clippy::too_many_arguments)]
fn solve_flip(
    graph: &mut TermGraph,
    obs: &[BranchObservation],
    schedule: &TestSchedule,
    k: usize,
    dir: bool,
    max_prefix: usize,
    tuning: SolverTuning,
    recorder: &soccar_obs::Recorder,
) -> FlipOutcome {
    let mut solver = tuning.build();
    let prefix_start = k.saturating_sub(max_prefix);
    for o in &obs[prefix_start..k] {
        let c = if o.taken { o.cond } else { graph.not(o.cond) };
        solver.assert(c);
    }
    let goal = if dir {
        obs[k].cond
    } else {
        graph.not(obs[k].cond)
    };
    solver.assert(goal);
    match solver.check_traced(graph, recorder) {
        CheckResult::Unsat => FlipOutcome::Unsat,
        CheckResult::Unknown { reason } => FlipOutcome::Unknown(reason),
        CheckResult::Sat(model) => FlipOutcome::Sat(schedule_from_model(
            graph,
            schedule,
            solver.assertions(),
            &model,
        )),
    }
}

/// The incremental counterpart of [`solve_flip`]: clones the pre-blasted
/// `base` solver (CNF, learnt clauses, activities — everything but the
/// search trail) and discharges the same prefix-plus-goal constraint as
/// *retractable assumptions* via [`Solver::check_assuming`]. `neg[i]`
/// holds the pre-interned negation of `obs[i].cond`, so workers never
/// mutate the shared graph.
///
/// Still a pure function of the frozen round state `(base, graph, obs,
/// neg, schedule, k, dir, max_prefix)` — the determinism anchor of the
/// parallel round.
#[allow(clippy::too_many_arguments)]
fn solve_flip_assuming(
    base: &Solver,
    graph: &TermGraph,
    obs: &[BranchObservation],
    neg: &[TermId],
    schedule: &TestSchedule,
    k: usize,
    dir: bool,
    max_prefix: usize,
    portfolio: bool,
    recorder: &soccar_obs::Recorder,
) -> FlipOutcome {
    let mut solver = base.clone();
    solve_flip_on(
        &mut solver,
        graph,
        obs,
        neg,
        schedule,
        k,
        dir,
        max_prefix,
        portfolio,
        recorder,
    )
}

/// [`solve_flip_assuming`] without the clone: discharges the candidate
/// directly on `solver`, so a *serial* caller (the `flip_solving`
/// benchmark) accumulates learnt clauses across candidates on one
/// context instead of paying a blast-state copy per candidate.
#[allow(clippy::too_many_arguments)]
fn solve_flip_on(
    solver: &mut Solver,
    graph: &TermGraph,
    obs: &[BranchObservation],
    neg: &[TermId],
    schedule: &TestSchedule,
    k: usize,
    dir: bool,
    max_prefix: usize,
    portfolio: bool,
    recorder: &soccar_obs::Recorder,
) -> FlipOutcome {
    let prefix_start = k.saturating_sub(max_prefix);
    let mut assumptions: Vec<TermId> = Vec::with_capacity(k - prefix_start + 1);
    for (i, o) in obs.iter().enumerate().take(k).skip(prefix_start) {
        assumptions.push(if o.taken { o.cond } else { neg[i] });
    }
    assumptions.push(if dir { obs[k].cond } else { neg[k] });
    let result = if portfolio {
        solver.check_assuming_portfolio_traced(graph, &assumptions, recorder)
    } else {
        solver.check_assuming_traced(graph, &assumptions, recorder)
    };
    match result {
        CheckResult::Unsat => FlipOutcome::Unsat,
        CheckResult::Unknown { reason } => FlipOutcome::Unknown(reason),
        CheckResult::Sat(model) => {
            FlipOutcome::Sat(schedule_from_model(graph, schedule, &assumptions, &model))
        }
    }
}

/// The most recent `cap` distinct symbolic check-obligation terms, in
/// chronological order — the deterministic selection folded into the
/// incremental window preblast.
fn recent_check_terms(checks: &[crate::coalg::CheckObservation], cap: usize) -> Vec<TermId> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for c in checks.iter().rev() {
        if out.len() >= cap {
            break;
        }
        if seen.insert(c.term) {
            out.push(c.term);
        }
    }
    out.reverse();
    out
}

/// Rebuilds a schedule from a flip model. Only variables in the support
/// of the solved constraints are updated; everything else keeps its
/// previous schedule value.
fn schedule_from_model(
    graph: &TermGraph,
    schedule: &TestSchedule,
    constraints: &[TermId],
    model: &soccar_smt::Model,
) -> TestSchedule {
    let mut support = HashSet::new();
    for t in constraints {
        collect_vars(graph, *t, &mut support);
    }
    let mut next = schedule.clone();
    for var in support {
        let Term::Var(name) = graph.term(var) else {
            continue;
        };
        let Some(value) = model.value(var) else {
            continue;
        };
        if let Some((d, c)) = parse_slot(name, "rst_") {
            if d < next.resets.len() && c < next.cycles {
                let track = &mut next.resets[d];
                let line_high = value.to_u64() == Some(1);
                track.asserted[c as usize] = line_high != track.active_low;
            }
        } else if let Some((i, c)) = parse_slot(name, "in_") {
            if i < next.inputs.len() && c < next.cycles {
                next.inputs[i].values[c as usize] = from_bv(value);
            }
        }
    }
    next
}

/// Parses `prefix{index}_{cycle}` variable names.
fn parse_slot(name: &str, prefix: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix(prefix)?;
    let (idx, cycle) = rest.split_once('_')?;
    Some((idx.parse().ok()?, cycle.parse().ok()?))
}

/// Collects variable terms reachable from `t`.
fn collect_vars(graph: &TermGraph, t: TermId, out: &mut HashSet<TermId>) {
    let mut stack = vec![t];
    let mut seen = HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match graph.term(id) {
            Term::Var(_) => {
                out.insert(id);
            }
            Term::Const(_) => {}
            Term::Not(a) | Term::RedAnd(a) | Term::RedOr(a) | Term::RedXor(a) => stack.push(*a),
            Term::Extract { arg, .. } | Term::ZExt { arg, .. } => stack.push(*arg),
            Term::And(a, b)
            | Term::Or(a, b)
            | Term::Xor(a, b)
            | Term::Add(a, b)
            | Term::Sub(a, b)
            | Term::Mul(a, b)
            | Term::Udiv(a, b)
            | Term::Urem(a, b)
            | Term::Shl(a, b)
            | Term::Lshr(a, b)
            | Term::Ashr(a, b)
            | Term::Eq(a, b)
            | Term::Ult(a, b)
            | Term::Ule(a, b)
            | Term::Concat(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Term::Ite(c, a, b) => {
                stack.push(*c);
                stack.push(*a);
                stack.push(*b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::PropertyKind;
    use soccar_cfg::{bind_events, compose_soc, GovernorAnalysis, ResetNaming};
    use soccar_rtl::parser::parse;
    use soccar_rtl::span::FileId;

    fn setup(
        src: &str,
        props: Vec<SecurityProperty>,
        analysis: GovernorAnalysis,
        config: ConcolicConfig,
    ) -> ConcolicReport {
        let unit = parse(FileId(0), src).expect("parse");
        let design = soccar_rtl::elaborate::elaborate(&unit, "top").expect("elaborate");
        let soc = compose_soc(&unit, "top", &ResetNaming::new(), analysis).expect("compose");
        let bound = bind_events(&design, &soc).expect("bind");
        let mut engine = ConcolicEngine::new(&design, &bound, props, config).expect("engine");
        engine.run().expect("run")
    }

    const LEAKY_CRYPTO: &str = "
        module aes(input clk, input rst_n, input load, input [7:0] key_in,
                   output reg [7:0] key_reg, output reg [7:0] busy_ctr);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) begin
              busy_ctr <= 8'd0;          // BUG: key_reg not cleared
            end else begin
              if (load) key_reg <= key_in;
              busy_ctr <= busy_ctr + 8'd1;
            end
        endmodule
        module top(input clk, input crypto_rst_n, input load, input [7:0] key_in,
                   output [7:0] key_reg, output [7:0] busy);
          aes u_aes (.clk(clk), .rst_n(crypto_rst_n), .load(load),
                     .key_in(key_in), .key_reg(key_reg), .busy_ctr(busy));
        endmodule";

    fn leak_property() -> SecurityProperty {
        SecurityProperty {
            name: "aes-key-cleared".into(),
            module: "aes".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "top.crypto_rst_n".into(),
                signal: "top.u_aes.key_reg".into(),
                expected: LogicVec::zeros(8),
                window: 0,
            },
        }
    }

    #[test]
    fn engine_detects_uncleaned_key_register() {
        let report = setup(
            LEAKY_CRYPTO,
            vec![leak_property()],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                cycles: 12,
                max_rounds: 8,
                symbolic_inputs: vec!["top.load".into(), "top.key_in".into()],
                ..ConcolicConfig::default()
            },
        );
        assert!(report.violated("aes-key-cleared"), "report: {report:?}");
        assert!(!report.witnesses.is_empty());
        assert!(report.targets_covered > 0);
    }

    #[test]
    fn clean_design_produces_no_violations() {
        let clean = LEAKY_CRYPTO.replace(
            "busy_ctr <= 8'd0;          // BUG: key_reg not cleared",
            "busy_ctr <= 8'd0; key_reg <= 8'd0;",
        );
        let report = setup(
            &clean,
            vec![leak_property()],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                cycles: 12,
                max_rounds: 16,
                symbolic_inputs: vec!["top.load".into(), "top.key_in".into()],
                ..ConcolicConfig::default()
            },
        );
        assert!(!report.has_violations(), "report: {report:?}");
        assert_eq!(report.coverage(), 1.0, "all targets coverable: {report:?}");
    }

    #[test]
    fn solver_flip_reaches_data_guarded_branch() {
        // The reset arm contains a branch guarded by a *data* condition
        // (magic == 8'h5A) that random inputs are unlikely to hit; the
        // solver must construct it.
        let src = "
            module ip(input clk, input rst_n, input [7:0] magic,
                      output reg flag, output reg [7:0] ctr);
              always @(posedge clk or negedge rst_n)
                if (!rst_n) begin
                  if (magic == 8'h5A) flag <= 1'b1;
                  ctr <= 8'd0;
                end else ctr <= ctr + 8'd1;
            endmodule
            module top(input clk, input dom_rst_n, input [7:0] magic,
                       output flag, output [7:0] ctr);
              ip u (.clk(clk), .rst_n(dom_rst_n), .magic(magic),
                    .flag(flag), .ctr(ctr));
            endmodule";
        let report = setup(
            src,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                cycles: 10,
                max_rounds: 16,
                seed: 7,
                symbolic_inputs: vec!["top.magic".into()],
                skip_sweep: true,
                ..ConcolicConfig::default()
            },
        );
        // Full coverage requires taking the magic branch both ways.
        assert_eq!(
            report.targets_covered, report.targets_total,
            "solver must reach the magic-guarded branch: {report:?}"
        );
        assert!(
            report.solver_sat > 0,
            "at least one flip solved: {report:?}"
        );
    }

    const MAGIC_SRC: &str = "
        module ip(input clk, input rst_n, input [7:0] magic,
                  output reg flag, output reg [7:0] ctr);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) begin
              if (magic == 8'h5A) flag <= 1'b1;
              ctr <= 8'd0;
            end else ctr <= ctr + 8'd1;
        endmodule
        module top(input clk, input dom_rst_n, input [7:0] magic,
                   output flag, output [7:0] ctr);
          ip u (.clk(clk), .rst_n(dom_rst_n), .magic(magic),
                .flag(flag), .ctr(ctr));
        endmodule";

    #[test]
    fn one_shot_escape_hatch_reaches_same_coverage() {
        // `incremental: false` pins the legacy clone-and-reblast path
        // (what `SOCCAR_INCREMENTAL=0` selects); it must still solve the
        // magic-guarded branch.
        let report = setup(
            MAGIC_SRC,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                cycles: 10,
                max_rounds: 16,
                seed: 7,
                symbolic_inputs: vec!["top.magic".into()],
                skip_sweep: true,
                incremental: false,
                ..ConcolicConfig::default()
            },
        );
        assert_eq!(
            report.targets_covered, report.targets_total,
            "one-shot path must reach the magic-guarded branch: {report:?}"
        );
        assert!(report.solver_sat > 0, "report: {report:?}");
    }

    #[test]
    fn flip_workload_strategies_agree() {
        // The benchmark harness relies on this: one-shot and incremental
        // flip solving answer identically (in sat-ness) per candidate.
        let unit = parse(FileId(0), MAGIC_SRC).expect("parse");
        let design = soccar_rtl::elaborate::elaborate(&unit, "top").expect("elaborate");
        let soc = compose_soc(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit,
        )
        .expect("compose");
        let bound = bind_events(&design, &soc).expect("bind");
        let config = ConcolicConfig {
            cycles: 8,
            seed: 7,
            symbolic_inputs: vec!["top.magic".into()],
            ..ConcolicConfig::default()
        };
        let mut engine = ConcolicEngine::new(&design, &bound, vec![], config).expect("engine");
        let workload = engine.flip_workload().expect("workload");
        let cap = 16;
        assert!(workload.candidates(cap) > 0, "round produced no branches");
        let recorder = soccar_obs::Recorder::enabled();
        let oneshot = workload.solve_oneshot(cap, &soccar_obs::Recorder::disabled());
        let incremental = workload.solve_incremental(cap, &recorder);
        assert_eq!(oneshot, incremental, "strategies disagreed on SAT count");
        // The incremental pass actually reused blasting work and went
        // through check_assuming.
        let snap = recorder.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert_eq!(
            counter("smt.incremental_calls"),
            workload.candidates(cap) as u64
        );
        assert!(counter("smt.blast_cache_hits") > 0);
        assert!(counter("smt.clauses_reused") > 0);
    }

    #[test]
    fn warm_blast_pool_reuses_bases_without_changing_results() {
        let unit = parse(FileId(0), MAGIC_SRC).expect("parse");
        let design = soccar_rtl::elaborate::elaborate(&unit, "top").expect("elaborate");
        let soc = compose_soc(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit,
        )
        .expect("compose");
        let bound = bind_events(&design, &soc).expect("bind");
        let config = ConcolicConfig {
            cycles: 10,
            max_rounds: 16,
            seed: 7,
            symbolic_inputs: vec!["top.magic".into()],
            skip_sweep: true,
            incremental: true,
            ..ConcolicConfig::default()
        };
        let cold = {
            let mut engine =
                ConcolicEngine::new(&design, &bound, vec![], config.clone()).expect("engine");
            engine.run().expect("run")
        };

        // Two warm runs against one shared pool: the first fills it, the
        // second replays every round from retained bases.
        let pool = WarmBlastPool::shared(32);
        let run_warm = |recorder: soccar_obs::Recorder| {
            let mut engine = ConcolicEngine::new(&design, &bound, vec![], config.clone())
                .expect("engine")
                .with_recorder(recorder)
                .with_warm_blast(Arc::clone(&pool));
            engine.run().expect("run")
        };
        let first = run_warm(soccar_obs::Recorder::disabled());
        let recorder = soccar_obs::Recorder::enabled();
        let second = run_warm(recorder.clone());

        for r in [&first, &second] {
            assert_eq!(r.rounds, cold.rounds);
            assert_eq!(r.targets_covered, cold.targets_covered);
            assert_eq!(r.solver_calls, cold.solver_calls);
            assert_eq!(r.solver_sat, cold.solver_sat);
            assert_eq!(r.violations.len(), cold.violations.len());
        }
        let (hits, _, _) = pool.lock().expect("pool").stats();
        assert!(hits > 0, "second run must hit retained bases");
        let snap = recorder.snapshot();
        assert!(
            snap.counters
                .get("smt.warm_blast_hits")
                .copied()
                .unwrap_or(0)
                > 0,
            "warm hits must surface as a counter: {:?}",
            snap.counters
        );
    }

    #[test]
    fn explicit_analysis_misses_implicit_governor_refined_catches() {
        // The Section V-C scenario as a minimal engine test.
        let src = "
            module sha(input clk, input sec_rst_n, input [7:0] pt,
                       output reg [7:0] ct);
              always @(negedge sec_rst_n)
                if (clk) ct <= pt;      // implicit governor construct
            endmodule
            module top(input clk, input sec_rst_n, input [7:0] pt, output [7:0] ct);
              sha u (.clk(clk), .sec_rst_n(sec_rst_n), .pt(pt), .ct(ct));
            endmodule";
        let prop = SecurityProperty {
            name: "sha-ct-cleared".into(),
            module: "sha".into(),
            kind: PropertyKind::NeverEqual {
                a: "top.u.ct".into(),
                b: "top.u.pt".into(),
                enable: None,
            },
        };
        // Explicit: no AR_CFG events → no reset domains → reset never
        // pulsed → bug not excited.
        let explicit = setup(
            src,
            vec![prop.clone()],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                cycles: 10,
                max_rounds: 4,
                symbolic_inputs: vec!["top.pt".into()],
                ..ConcolicConfig::default()
            },
        );
        assert_eq!(explicit.targets_total, 0);
        assert!(!explicit.has_violations(), "{explicit:?}");
        // Refined: the whole block is an event; the domain is pulsed and
        // the leak becomes visible.
        let refined = setup(
            src,
            vec![prop],
            GovernorAnalysis::Refined,
            ConcolicConfig {
                cycles: 10,
                max_rounds: 8,
                symbolic_inputs: vec!["top.pt".into()],
                ..ConcolicConfig::default()
            },
        );
        assert!(refined.targets_total > 0);
        assert!(refined.violated("sha-ct-cleared"), "{refined:?}");
    }

    #[test]
    fn flip_fanout_is_job_count_invariant() {
        // The solver-heavy magic-branch design: the round outcome hinges
        // on which flip result is consumed, so any completion-order
        // dependence would show up immediately.
        let src = "
            module ip(input clk, input rst_n, input [7:0] magic,
                      output reg flag, output reg [7:0] ctr);
              always @(posedge clk or negedge rst_n)
                if (!rst_n) begin
                  if (magic == 8'h5A) flag <= 1'b1;
                  ctr <= 8'd0;
                end else ctr <= ctr + 8'd1;
            endmodule
            module top(input clk, input dom_rst_n, input [7:0] magic,
                       output flag, output [7:0] ctr);
              ip u (.clk(clk), .rst_n(dom_rst_n), .magic(magic),
                    .flag(flag), .ctr(ctr));
            endmodule";
        let run = |jobs: usize| {
            setup(
                src,
                vec![],
                GovernorAnalysis::Explicit,
                ConcolicConfig {
                    cycles: 10,
                    max_rounds: 16,
                    seed: 7,
                    symbolic_inputs: vec!["top.magic".into()],
                    jobs,
                    ..ConcolicConfig::default()
                },
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.rounds, parallel.rounds);
        assert_eq!(serial.targets_covered, parallel.targets_covered);
        assert_eq!(serial.targets_unreachable, parallel.targets_unreachable);
        assert_eq!(serial.solver_calls, parallel.solver_calls);
        assert_eq!(serial.solver_sat, parallel.solver_sat);
        assert_eq!(serial.violations, parallel.violations);
        assert_eq!(serial.witnesses, parallel.witnesses);
        assert_eq!(serial.first_violation_round, parallel.first_violation_round);
        assert_eq!(parallel.flip_exec.tasks, serial.flip_exec.tasks);
        assert!(parallel.flip_exec.jobs >= 1);
        assert_eq!(serial.solver_unknown, parallel.solver_unknown);
        assert_eq!(serial.flips_failed, parallel.flips_failed);
        assert_eq!(serial.degraded_rounds, parallel.degraded_rounds);
        assert_eq!(serial.degraded_reasons, parallel.degraded_reasons);
    }

    const MAGIC_BRANCH: &str = "
        module ip(input clk, input rst_n, input [7:0] magic,
                  output reg flag, output reg [7:0] ctr);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) begin
              if (magic == 8'h5A) flag <= 1'b1;
              ctr <= 8'd0;
            end else ctr <= ctr + 8'd1;
        endmodule
        module top(input clk, input dom_rst_n, input [7:0] magic,
                   output flag, output [7:0] ctr);
          ip u (.clk(clk), .rst_n(dom_rst_n), .magic(magic),
                .flag(flag), .ctr(ctr));
        endmodule";

    fn magic_config() -> ConcolicConfig {
        ConcolicConfig {
            cycles: 10,
            max_rounds: 16,
            seed: 7,
            symbolic_inputs: vec!["top.magic".into()],
            skip_sweep: true,
            ..ConcolicConfig::default()
        }
    }

    #[test]
    fn solver_budget_exhaustion_degrades_instead_of_aborting() {
        // A zero-decision budget makes every flip solve return Unknown;
        // the engine must record the skips and still finish the run.
        let report = setup(
            MAGIC_BRANCH,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                solver_budget: SolveBudget {
                    max_conflicts: None,
                    max_decisions: Some(0),
                },
                ..magic_config()
            },
        );
        assert!(report.solver_unknown > 0, "report: {report:?}");
        assert!(report.is_degraded(), "report: {report:?}");
        assert!(report.degraded_rounds > 0, "report: {report:?}");
        assert!(
            report
                .degraded_reasons
                .iter()
                .any(|r| r.contains("budget exhausted")),
            "report: {report:?}"
        );
        // Unknown flips are skipped, never consumed as SAT.
        assert_eq!(report.solver_sat, 0, "report: {report:?}");
    }

    #[test]
    fn injected_solver_unknown_skips_one_flip() {
        let report = setup(
            MAGIC_BRANCH,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                fault_plan: FaultPlan::parse("solver_unknown@1").expect("plan"),
                ..magic_config()
            },
        );
        assert_eq!(report.solver_unknown, 1, "report: {report:?}");
        assert!(report.is_degraded());
        assert!(report
            .degraded_reasons
            .iter()
            .any(|r| r.contains("injected fault: solver_unknown@1")));
        // Later flips still run: the branch is eventually covered.
        assert_eq!(report.targets_covered, report.targets_total);
    }

    #[test]
    fn injected_flip_panic_degrades_round_and_continues() {
        let report = setup(
            MAGIC_BRANCH,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                fault_plan: FaultPlan::parse("task_panic@flips:1").expect("plan"),
                failure_policy: FailurePolicy::KeepGoing,
                ..magic_config()
            },
        );
        assert_eq!(report.flips_failed, 1, "report: {report:?}");
        assert!(report.is_degraded());
        assert!(report
            .degraded_reasons
            .iter()
            .any(|r| r.contains("worker panicked") && r.contains("task_panic@flips:1")));
        assert_eq!(report.targets_covered, report.targets_total);
    }

    #[test]
    fn injected_round_timeout_skips_flip_planning() {
        let report = setup(
            MAGIC_BRANCH,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                fault_plan: FaultPlan::parse("round_timeout@1").expect("plan"),
                ..magic_config()
            },
        );
        assert!(report.is_degraded(), "report: {report:?}");
        assert!(report.degraded_rounds >= 1);
        assert!(report
            .degraded_reasons
            .iter()
            .any(|r| r.contains("round deadline exceeded")));
    }

    #[test]
    fn per_round_flip_cap_drops_tail_candidates() {
        let report = setup(
            MAGIC_BRANCH,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                max_round_flips: 1,
                ..magic_config()
            },
        );
        // The magic design produces several candidates per round; with a
        // cap of 1 at least one round must have dropped candidates.
        assert!(
            report
                .degraded_reasons
                .iter()
                .any(|r| r.contains("flip attempts capped at 1")),
            "report: {report:?}"
        );
        assert!(report.is_degraded());
    }

    #[test]
    fn faulted_runs_are_deterministic_across_job_counts() {
        let run = |jobs: usize| {
            setup(
                MAGIC_BRANCH,
                vec![],
                GovernorAnalysis::Explicit,
                ConcolicConfig {
                    jobs,
                    fault_plan: FaultPlan::parse("solver_unknown@1,task_panic@flips:2")
                        .expect("plan"),
                    failure_policy: FailurePolicy::KeepGoing,
                    ..magic_config()
                },
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.solver_unknown, parallel.solver_unknown);
        assert_eq!(serial.flips_failed, parallel.flips_failed);
        assert_eq!(serial.degraded_rounds, parallel.degraded_rounds);
        assert_eq!(serial.degraded_reasons, parallel.degraded_reasons);
        assert_eq!(serial.rounds, parallel.rounds);
        assert_eq!(serial.targets_covered, parallel.targets_covered);
        assert_eq!(serial.solver_calls, parallel.solver_calls);
        assert_eq!(serial.solver_sat, parallel.solver_sat);
    }

    #[test]
    fn report_accessors() {
        let report = setup(
            LEAKY_CRYPTO,
            vec![],
            GovernorAnalysis::Explicit,
            ConcolicConfig {
                cycles: 6,
                max_rounds: 2,
                ..ConcolicConfig::default()
            },
        );
        assert!(!report.violated("nonexistent"));
        assert!(report.rounds >= 1);
        assert!(report.elapsed.as_nanos() > 0);
    }

    #[test]
    fn parse_slot_names() {
        assert_eq!(parse_slot("rst_0_12", "rst_"), Some((0, 12)));
        assert_eq!(parse_slot("in_3_7", "in_"), Some((3, 7)));
        assert_eq!(parse_slot("rst_x_7", "rst_"), None);
        assert_eq!(parse_slot("other", "rst_"), None);
    }
}
