//! SRAM memory IPs (single- and dual-port) with an address-range
//! protection unit.
//!
//! Writes into the protected region (`addr >= PROT_BASE`) are blocked
//! while `prot_en` is armed; the asynchronous reset is responsible for
//! re-arming the guard. The *Loss of Data Integrity* bug (Table III)
//! makes the reset clear the guard instead: "failure of correct address
//! range check for read/write requests after an asynchronous reset".

/// Data-integrity bug selector for a memory IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryBug {
    /// Correct RTL.
    #[default]
    None,
    /// The reset arm disarms the range check instead of re-arming it.
    RangeCheckLost,
}

fn guard_reset(bug: MemoryBug) -> &'static str {
    match bug {
        MemoryBug::None => "prot_en <= 1'b1;",
        MemoryBug::RangeCheckLost => {
            "prot_en <= 1'b0; // BUG(data-integrity): range check disarmed by reset"
        }
    }
}

/// Single-port SRAM with range protection.
///
/// `DEPTH_LOG2` addresses of `WIDTH`-bit words; the upper half of the
/// address space is the protected region.
#[must_use]
pub fn sram_sp(bug: MemoryBug) -> String {
    format!(
        "module sram_sp #(parameter AW = 8, DW = 32)(
  input clk,
  input rst_n,
  input stb,
  input we,
  input unlock,
  input [AW-1:0] addr,
  input [DW-1:0] wdata,
  output reg [DW-1:0] rdata,
  output reg ack,
  output reg prot_en,
  output reg viol
);
  reg [DW-1:0] mem [0:(1<<AW)-1];
  wire protected_region;
  wire blocked;
  assign protected_region = addr[AW-1];
  assign blocked = protected_region & prot_en & ~unlock;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      ack <= 1'b0;
      rdata <= {{DW{{1'b0}}}};
      viol <= 1'b0;
      {guard}
    end else begin
      ack <= 1'b0;
      viol <= 1'b0;
      if (stb) begin
        ack <= 1'b1;
        if (we) begin
          if (blocked) viol <= 1'b1;
          else mem[addr] <= wdata;
        end else begin
          if (blocked) rdata <= {{DW{{1'b0}}}};
          else rdata <= mem[addr];
        end
      end
    end
endmodule
",
        guard = guard_reset(bug)
    )
}

/// Dual-port SRAM: port A read/write with protection, port B read-only.
#[must_use]
pub fn sram_dp(bug: MemoryBug) -> String {
    format!(
        "module sram_dp #(parameter AW = 8, DW = 32)(
  input clk,
  input rst_n,
  input a_stb,
  input a_we,
  input unlock,
  input [AW-1:0] a_addr,
  input [DW-1:0] a_wdata,
  output reg [DW-1:0] a_rdata,
  output reg a_ack,
  input b_stb,
  input [AW-1:0] b_addr,
  output reg [DW-1:0] b_rdata,
  output reg b_ack,
  output reg prot_en,
  output reg viol
);
  reg [DW-1:0] mem [0:(1<<AW)-1];
  wire a_protected;
  wire a_blocked;
  assign a_protected = a_addr[AW-1];
  assign a_blocked = a_protected & prot_en & ~unlock;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      a_ack <= 1'b0;
      a_rdata <= {{DW{{1'b0}}}};
      viol <= 1'b0;
      {guard}
    end else begin
      a_ack <= 1'b0;
      viol <= 1'b0;
      if (a_stb) begin
        a_ack <= 1'b1;
        if (a_we) begin
          if (a_blocked) viol <= 1'b1;
          else mem[a_addr] <= a_wdata;
        end else begin
          if (a_blocked) a_rdata <= {{DW{{1'b0}}}};
          else a_rdata <= mem[a_addr];
        end
      end
    end

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      b_ack <= 1'b0;
      b_rdata <= {{DW{{1'b0}}}};
    end else begin
      b_ack <= 1'b0;
      if (b_stb) begin
        b_ack <= 1'b1;
        b_rdata <= mem[b_addr];
      end
    end
endmodule
",
        guard = guard_reset(bug)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    fn compile(src: &str, top: &str) -> soccar_rtl::Design {
        soccar_rtl::compile("sram.v", src, top)
            .unwrap_or_else(|e| panic!("compile {top}: {e}"))
            .0
    }

    #[test]
    fn both_srams_compile() {
        for bug in [MemoryBug::None, MemoryBug::RangeCheckLost] {
            compile(&sram_sp(bug), "sram_sp");
            compile(&sram_dp(bug), "sram_dp");
        }
    }

    fn write_then_read(bug: MemoryBug, addr: u64, unlock: bool) -> (u64, u64) {
        // Returns (viol flag after write, read-back value).
        let d = compile(&sram_sp(bug), "sram_sp");
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let n = |s: &str| d.find_net(&format!("sram_sp.{s}")).expect("net");
        let clk = n("clk");
        // Reset pulse (arms or disarms the guard depending on the bug).
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.write_input(n("stb"), LogicVec::from_u64(1, 0))
            .expect("stb");
        sim.write_input(n("we"), LogicVec::from_u64(1, 0))
            .expect("we");
        sim.write_input(n("unlock"), LogicVec::from_u64(1, u64::from(unlock)))
            .expect("ul");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.settle().expect("settle");
        // Write 0xAB at addr.
        sim.write_input(n("addr"), LogicVec::from_u64(8, addr))
            .expect("addr");
        sim.write_input(n("wdata"), LogicVec::from_u64(32, 0xAB))
            .expect("wd");
        sim.write_input(n("stb"), LogicVec::from_u64(1, 1))
            .expect("stb");
        sim.write_input(n("we"), LogicVec::from_u64(1, 1))
            .expect("we");
        sim.settle().expect("settle"); // combinational guard before the edge
        sim.tick(clk).expect("tick");
        let viol = sim.net_logic(n("viol")).to_u64().expect("viol");
        // Read back.
        sim.write_input(n("we"), LogicVec::from_u64(1, 0))
            .expect("we");
        sim.write_input(n("unlock"), LogicVec::from_u64(1, 1))
            .expect("ul");
        sim.settle().expect("settle");
        sim.tick(clk).expect("tick");
        let rd = sim.net_logic(n("rdata")).to_u64().expect("rdata");
        (viol, rd)
    }

    #[test]
    fn unprotected_region_writes_freely() {
        let (viol, rd) = write_then_read(MemoryBug::None, 0x10, false);
        assert_eq!(viol, 0);
        assert_eq!(rd, 0xAB);
    }

    #[test]
    fn protected_region_blocks_without_unlock() {
        let (viol, rd) = write_then_read(MemoryBug::None, 0x90, false);
        assert_eq!(viol, 1, "violation flagged");
        assert_eq!(rd, 0, "write was blocked");
    }

    #[test]
    fn protected_region_allows_with_unlock() {
        let (viol, rd) = write_then_read(MemoryBug::None, 0x90, true);
        assert_eq!(viol, 0);
        assert_eq!(rd, 0xAB);
    }

    #[test]
    fn buggy_reset_disarms_guard() {
        // With the bug, the same protected write goes straight through.
        let (viol, rd) = write_then_read(MemoryBug::RangeCheckLost, 0x90, false);
        assert_eq!(viol, 0, "no violation reported");
        assert_eq!(rd, 0xAB, "unauthorized write landed");
    }

    #[test]
    fn dual_port_b_reads() {
        let d = compile(&sram_dp(MemoryBug::None), "sram_dp");
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let n = |s: &str| d.find_net(&format!("sram_dp.{s}")).expect("net");
        let clk = n("clk");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        for (sig, w) in [("a_stb", 1u32), ("a_we", 1), ("unlock", 1), ("b_stb", 1)] {
            sim.write_input(n(sig), LogicVec::zeros(w)).expect("in");
        }
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("a_addr"), LogicVec::from_u64(8, 5))
            .expect("aa");
        sim.write_input(n("a_wdata"), LogicVec::from_u64(32, 0x77))
            .expect("aw");
        sim.write_input(n("a_stb"), LogicVec::from_u64(1, 1))
            .expect("as");
        sim.write_input(n("a_we"), LogicVec::from_u64(1, 1))
            .expect("awe");
        sim.tick(clk).expect("tick");
        sim.write_input(n("a_stb"), LogicVec::from_u64(1, 0))
            .expect("as");
        sim.write_input(n("b_addr"), LogicVec::from_u64(8, 5))
            .expect("ba");
        sim.write_input(n("b_stb"), LogicVec::from_u64(1, 1))
            .expect("bs");
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("b_rdata")).to_u64(), Some(0x77));
        assert_eq!(sim.net_logic(n("b_ack")).to_u64(), Some(1));
    }
}
