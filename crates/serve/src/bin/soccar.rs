//! The `soccar` command-line tool: run the pipeline on a Verilog file.
//!
//! ```sh
//! soccar design.v --top my_soc \
//!   --property cleared:key-scrub:aes:my_soc.crypto_rst_n:my_soc.u_aes.key_reg:32 \
//!   --property armed:guard:sram:my_soc.mem_rst_n:my_soc.u_sram.prot_en \
//!   --symbolic my_soc.test_data \
//!   --refined --cycles 24 --rounds 12
//! ```
//!
//! With no `--property`, the tool still extracts and reports the AR_CFG
//! and reset domains (`--list-domains` prints them and exits).
//!
//! The default mode can also be spelled `soccar analyze …`, and instead
//! of a file the bundled evaluation SoCs can be named directly — with
//! their catalog security properties and symbolic inputs pre-loaded:
//!
//! ```sh
//! soccar analyze --soc clustersoc --trace-out trace.jsonl
//! soccar analyze --soc autosoc --variant 2 --refined --verbose
//! soccar analyze --soc gen:7:4 --json       # seeded generated topology
//! ```
//!
//! The `gen` subcommand materializes a generated design without
//! analyzing it — the ground-truth manifest goes to stdout and `--rtl`
//! dumps the Verilog:
//!
//! ```sh
//! soccar gen gen:7:4 --rtl gen_7_4.v
//! ```
//!
//! `--trace-out <path>` writes the run's span/metric stream as NDJSON
//! (schema in docs/OBSERVABILITY.md); `--verbose` prints the span tree.
//!
//! The `lint` subcommand runs only the static pre-pass:
//!
//! ```sh
//! soccar lint design.v                 # human-readable diagnostics
//! soccar lint design.v --json          # machine-readable report
//! soccar lint design.v --deny implicit-governor
//! soccar lint --list-rules
//! ```
//!
//! Property specs (colon-separated):
//!
//! * `cleared:<name>:<module>:<domain>:<signal>:<width>` — signal must be
//!   zero while the domain reset is asserted;
//! * `armed:<name>:<module>:<domain>:<signal>` — signal must be non-zero
//!   while the domain reset is asserted;
//! * `oneof:<name>:<module>:<signal>:<width>:<v1|v2|…>` — signal must
//!   always hold one of the listed values (decimal or 0x-hex);
//! * `neverflag:<name>:<module>:<signal>` — a 1-bit observation point
//!   that must never read 1.

use std::io::Write as _;
use std::process::ExitCode;

use soccar::cli::parse_property;
use soccar::{Soccar, SoccarConfig};
use soccar_cfg::{compose_soc, GovernorAnalysis, ResetNaming};
use soccar_concolic::{ConcolicConfig, SecurityProperty};
use soccar_lint::{LintConfig, Linter, Severity};
use soccar_serve::{Request, Server, ServerOptions};

struct Args {
    file: String,
    soc: Option<String>,
    variant: Option<u32>,
    top: String,
    properties: Vec<SecurityProperty>,
    symbolic: Vec<String>,
    refined: bool,
    cycles: u64,
    rounds: usize,
    list_domains: bool,
    verbose: bool,
    json: bool,
    vcd: Option<String>,
    trace_out: Option<String>,
    jobs: usize,
    keep_going: bool,
    solver_budget: Option<u64>,
    round_deadline_ms: Option<u64>,
    no_incremental: bool,
    portfolio: bool,
}

const USAGE: &str = "usage: soccar [analyze] <file.v> --top <module> [options]
       soccar [analyze] --soc <name> [--variant <n>] [options]
       soccar gen <gen:seed:scale> [options]   dump a generated SoC
       soccar serve [options]      run the persistent analysis daemon
       soccar client [options]     drive a running daemon (CI mode)
options:
  --property <spec>   add a security property (repeatable); see --help-properties
  --symbolic <net>    treat a top-level input as symbolic (repeatable)
  --soc <name>        analyze a catalog SoC: `clustersoc`, `autosoc`, or a
                      seeded generated topology `gen:<seed>:<scale>`
                      (catalog properties and symbolic inputs pre-loaded)
  --variant <n>       bug-seeded variant of a bundled SoC (default: clean;
                      generated designs draw bugs from the seed instead)
  --refined           use the refined (implicit-governor) analysis
  --cycles <n>        simulation horizon per round (default 24)
  --rounds <n>        max concolic rounds before the sweep (default 12)
  --list-domains      print reset domains / AR_CFG summary and exit
  --verbose           print witness schedules and the trace span tree
  --json              print the canonical report JSON instead of the
                      human-readable summary (byte-identical across runs
                      and job counts; diagnostics go to stderr)
  --vcd <path>        replay the first witness and write a VCD waveform
  --trace-out <path>  write the span/metric stream as NDJSON
  --jobs <n>          worker threads for the parallel stages
                      (default: $SOCCAR_JOBS, else all cores; results are
                      identical for every value)
  --keep-going        degrade instead of aborting when a worker panics;
                      lost work is reported as per-stage health reasons
  --solver-budget <n> cap each flip solve at <n> SAT conflicts; exhausted
                      solves are skipped (reported, never fatal)
  --round-deadline-ms <n>
                      wall-clock deadline per concolic round; an
                      over-deadline round skips flip planning (note:
                      wall-clock, so reports may differ across machines)
  --no-incremental    solve each flip candidate one-shot instead of with
                      assumption-based incremental solving (escape hatch;
                      same as SOCCAR_INCREMENTAL=0)
  --portfolio         race the deterministic solver portfolio on each
                      incremental flip solve (first definite answer wins;
                      reports stay byte-identical; same as
                      SOCCAR_PORTFOLIO=1)
environment:
  SOCCAR_FAULTS       deterministic fault-injection plan for chaos
                      testing, e.g. solver_unknown@3,task_panic@extract:1
                      (see docs/RESILIENCE.md)
  SOCCAR_INCREMENTAL  set to 0 to disable incremental flip solving
                      (see docs/SOLVER.md)
  SOCCAR_PORTFOLIO    set to 1 to enable the deterministic solver
                      portfolio (see docs/SOLVER.md)";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = args;
    let mut out = Args {
        file: String::new(),
        soc: None,
        variant: None,
        top: String::new(),
        properties: Vec::new(),
        symbolic: Vec::new(),
        refined: false,
        cycles: 24,
        rounds: 12,
        list_domains: false,
        verbose: false,
        json: false,
        vcd: None,
        trace_out: None,
        jobs: 0,
        keep_going: false,
        solver_budget: None,
        round_deadline_ms: None,
        no_incremental: false,
        portfolio: false,
    };
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => out.top = next(&mut args, "--top")?,
            "--property" => out
                .properties
                .push(parse_property(&next(&mut args, "--property")?)?),
            "--symbolic" => out.symbolic.push(next(&mut args, "--symbolic")?),
            "--refined" => out.refined = true,
            "--cycles" => {
                out.cycles = next(&mut args, "--cycles")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?;
            }
            "--rounds" => {
                out.rounds = next(&mut args, "--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--jobs" => {
                out.jobs = next(&mut args, "--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--keep-going" => out.keep_going = true,
            "--solver-budget" => {
                out.solver_budget = Some(
                    next(&mut args, "--solver-budget")?
                        .parse()
                        .map_err(|e| format!("--solver-budget: {e}"))?,
                );
            }
            "--round-deadline-ms" => {
                out.round_deadline_ms = Some(
                    next(&mut args, "--round-deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--round-deadline-ms: {e}"))?,
                );
            }
            "--no-incremental" => out.no_incremental = true,
            "--portfolio" => out.portfolio = true,
            "--list-domains" => out.list_domains = true,
            "--vcd" => out.vcd = Some(next(&mut args, "--vcd")?),
            "--trace-out" => out.trace_out = Some(next(&mut args, "--trace-out")?),
            "--soc" => {
                let name = next(&mut args, "--soc")?;
                match name.as_str() {
                    "clustersoc" | "autosoc" => {}
                    n if n.starts_with("gen:") => {
                        soccar_soc::GenSpec::parse(n).map_err(|e| format!("--soc: {e}"))?;
                    }
                    other => return Err(format!("--soc: unknown model `{other}`")),
                }
                out.soc = Some(name);
            }
            "--variant" => {
                out.variant = Some(
                    next(&mut args, "--variant")?
                        .parse()
                        .map_err(|e| format!("--variant: {e}"))?,
                );
            }
            "--verbose" => out.verbose = true,
            "--json" => out.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if out.file.is_empty() && !other.starts_with('-') => {
                out.file = other.to_owned();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if out.soc.is_some() {
        if !out.file.is_empty() {
            return Err("--soc and a file argument are mutually exclusive".to_owned());
        }
    } else if out.file.is_empty() || out.top.is_empty() {
        return Err(USAGE.to_owned());
    }
    Ok(out)
}

fn run(args: &Args) -> Result<bool, String> {
    // Resolve the design: a file on disk, or a bundled evaluation SoC
    // (which brings its catalog properties and symbolic inputs along).
    let (file_name, source, top, mut properties, mut symbolic) = match &args.soc {
        Some(name) => {
            let soc = soccar_soc::catalog::resolve(name, args.variant)?;
            let props: Vec<SecurityProperty> = soc.checks.iter().map(soccar::property_of).collect();
            let top = if args.top.is_empty() {
                soc.top.clone()
            } else {
                args.top.clone()
            };
            (soc.file_name, soc.source, top, props, soc.symbolic)
        }
        None => {
            let source =
                std::fs::read_to_string(&args.file).map_err(|e| format!("{}: {e}", args.file))?;
            (
                args.file.clone(),
                source,
                args.top.clone(),
                Vec::new(),
                Vec::new(),
            )
        }
    };
    properties.extend(args.properties.iter().cloned());
    symbolic.extend(args.symbolic.iter().cloned());
    let analysis = if args.refined {
        GovernorAnalysis::Refined
    } else {
        GovernorAnalysis::Explicit
    };

    if args.list_domains {
        let unit = soccar_rtl::parser::parse(soccar_rtl::span::FileId(0), &source)
            .map_err(|e| e.to_string())?;
        let soc = compose_soc(&unit, &top, &ResetNaming::new(), analysis)?;
        println!(
            "{}: {} instances, {} reset-governed events",
            top,
            soc.instances.len(),
            soc.event_count()
        );
        for d in &soc.reset_domains {
            println!(
                "domain {} ({}, active-{}): {} members, {} events",
                d.source,
                if d.top_level { "top input" } else { "internal" },
                if d.active_low { "low" } else { "high" },
                d.members.len(),
                d.events.len()
            );
        }
        return Ok(true);
    }

    let fault_plan = soccar_exec::FaultPlan::from_env()?;
    let config = SoccarConfig {
        analysis,
        concolic: ConcolicConfig {
            cycles: args.cycles,
            max_rounds: args.rounds,
            symbolic_inputs: symbolic,
            solver_budget: match args.solver_budget {
                Some(n) => soccar_smt::SolveBudget::conflicts(n),
                None => soccar_smt::SolveBudget::UNLIMITED,
            },
            round_deadline: args.round_deadline_ms.map(std::time::Duration::from_millis),
            incremental: !args.no_incremental && soccar_concolic::incremental_default(),
            portfolio: args.portfolio || soccar_concolic::portfolio_default(),
            ..ConcolicConfig::default()
        },
        jobs: args.jobs,
        keep_going: args.keep_going,
        fault_plan,
        ..SoccarConfig::default()
    };
    // Recording costs a little, so the recorder stays disabled unless a
    // sink will consume it.
    let recorder = if args.trace_out.is_some() || args.verbose {
        soccar_obs::Recorder::enabled()
    } else {
        soccar_obs::Recorder::disabled()
    };
    let report = Soccar::new(config)
        .with_recorder(recorder.clone())
        .analyze(&file_name, &source, &top, properties)
        .map_err(|e| e.to_string())?;
    if let Some(path) = &args.trace_out {
        std::fs::write(path, soccar_obs::to_ndjson(&recorder.snapshot()))
            .map_err(|e| format!("{path}: {e}"))?;
        if args.json {
            eprintln!("trace written to {path}");
        } else {
            println!("trace written to {path}");
        }
    }
    if args.verbose {
        let tree = soccar_obs::render_tree(&recorder.snapshot());
        if args.json {
            eprint!("{tree}");
        } else {
            print!("{tree}");
        }
    }
    if args.json {
        // The canonical report is the machine interface: stdout carries
        // exactly the JSON a `soccar client analyze` body carries.
        println!("{}", report.canonical_json().map_err(|e| e.to_string())?);
        return Ok(report.violations().is_empty());
    }

    for stage in &report.stages {
        println!(
            "[{}] {:.3}s  {}",
            stage.stage,
            stage.elapsed.as_secs_f64(),
            stage.detail
        );
        // Only degraded runs print health lines, so healthy output (and
        // its golden snapshots) is byte-for-byte what it always was.
        for reason in stage.health.reasons() {
            println!("  degraded: {reason}");
        }
        if args.verbose {
            if let Some(exec) = &stage.exec {
                println!(
                    "  pool: {} jobs, {} tasks, {:.0}% utilization",
                    exec.jobs,
                    exec.tasks,
                    exec.utilization * 100.0
                );
            }
        }
    }
    if report.is_degraded() {
        println!(
            "HEALTH: degraded ({} reason(s); coverage may be incomplete)",
            report.health().reasons().len()
        );
    }
    println!(
        "coverage: {}/{} AR_CFG targets ({} unreachable); solver {} calls / {} sat",
        report.concolic.targets_covered,
        report.concolic.targets_total,
        report.concolic.targets_unreachable,
        report.concolic.solver_calls,
        report.concolic.solver_sat,
    );
    if report.violations().is_empty() {
        println!("RESULT: no violations");
        Ok(true)
    } else {
        for v in report.violations() {
            println!("{v}");
        }
        if args.verbose {
            for w in &report.concolic.witnesses {
                println!(
                    "  witness [{}] round {}: {}",
                    w.property,
                    w.round,
                    w.schedule.summary()
                );
            }
        }
        if let Some(path) = &args.vcd {
            if let Some(w) = report.concolic.witnesses.first() {
                // Recompile to replay (the pipeline consumed nothing mutable,
                // but the design lives inside the analysis scope).
                let (design, _) =
                    soccar_rtl::compile(&file_name, &source, &top).map_err(|e| e.to_string())?;
                let naming = ResetNaming::new();
                let clocks: Vec<_> = design
                    .top_inputs()
                    .filter(|n| naming.is_clock_name(&design.net(*n).local_name))
                    .collect();
                let sim = w
                    .schedule
                    .replay_concrete(&design, &clocks)
                    .map_err(|e| e.to_string())?;
                let vcd = soccar_sim::vcd::write_vcd(&design, sim.trace(), &[]);
                std::fs::write(path, vcd).map_err(|e| e.to_string())?;
                println!("witness [{}] waveform written to {path}", w.property);
            }
        }
        println!("RESULT: {} violation(s)", report.violations().len());
        Ok(false)
    }
}

const LINT_USAGE: &str = "usage: soccar lint <file.v> [options]
options:
  --json              emit the report as JSON instead of text
  --allow <rule>      disable a rule (repeatable)
  --deny <rule>       escalate a rule's findings to errors (repeatable)
  --list-rules        print the registered rules and exit
exit status: 0 = no error-level findings, 1 = errors found, 2 = bad input";

struct LintArgs {
    file: String,
    json: bool,
    config: LintConfig,
    list_rules: bool,
}

fn parse_lint_args(args: impl Iterator<Item = String>) -> Result<LintArgs, String> {
    let mut args = args.peekable();
    let mut out = LintArgs {
        file: String::new(),
        json: false,
        config: LintConfig::default(),
        list_rules: false,
    };
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => out.json = true,
            "--allow" => out.config.allow.push(next(&mut args, "--allow")?),
            "--deny" => out.config.deny.push(next(&mut args, "--deny")?),
            "--list-rules" => out.list_rules = true,
            "--help" | "-h" => {
                println!("{LINT_USAGE}");
                std::process::exit(0);
            }
            other if out.file.is_empty() && !other.starts_with('-') => {
                out.file = other.to_owned();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if out.file.is_empty() && !out.list_rules {
        return Err(LINT_USAGE.to_owned());
    }
    Ok(out)
}

fn run_lint(args: &LintArgs) -> Result<bool, String> {
    let linter = Linter::new().with_config(args.config.clone());
    if args.list_rules {
        for rule in linter.rules() {
            println!(
                "{:<28} {:<8} {}",
                rule.id(),
                rule.default_severity().label(),
                rule.description()
            );
        }
        return Ok(true);
    }
    for id in args.config.allow.iter().chain(&args.config.deny) {
        if !linter.is_known_rule(id) {
            return Err(format!("unknown rule `{id}` (see --list-rules)"));
        }
    }
    let source = std::fs::read_to_string(&args.file).map_err(|e| format!("{}: {e}", args.file))?;
    let report = linter.lint_source(&args.file, &source)?;
    if args.json {
        println!(
            "{}",
            soccar::json::to_json_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        for diag in &report.diagnostics {
            println!("{diag}");
        }
        println!("{}", report.summary());
    }
    Ok(report.worst() != Some(Severity::Error))
}

const GEN_USAGE: &str = "usage: soccar gen <gen:seed:scale> [options]
materialize a seeded generated SoC from the catalog: the ground-truth
bug manifest (JSON) goes to stdout, and the design can be analyzed with
`soccar analyze --soc gen:<seed>:<scale>` (see docs/GENERATOR.md)
options:
  --rtl <path>        also write the generated Verilog to <path>
  --manifest <path>   write the manifest to <path> instead of stdout
  --summary           print a one-line topology summary instead of the
                      manifest JSON";

struct GenArgs {
    name: String,
    rtl: Option<String>,
    manifest: Option<String>,
    summary: bool,
}

fn parse_gen_args(args: impl Iterator<Item = String>) -> Result<GenArgs, String> {
    let mut args = args;
    let mut out = GenArgs {
        name: String::new(),
        rtl: None,
        manifest: None,
        summary: false,
    };
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rtl" => out.rtl = Some(next(&mut args, "--rtl")?),
            "--manifest" => out.manifest = Some(next(&mut args, "--manifest")?),
            "--summary" => out.summary = true,
            "--help" | "-h" => {
                println!("{GEN_USAGE}");
                std::process::exit(0);
            }
            other if out.name.is_empty() && !other.starts_with('-') => {
                out.name = other.to_owned();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if out.name.is_empty() {
        return Err(GEN_USAGE.to_owned());
    }
    Ok(out)
}

fn run_gen(args: &GenArgs) -> Result<(), String> {
    let spec = soccar_soc::GenSpec::parse(&args.name)?;
    let soc = soccar_soc::generate::generate(&spec);
    if let Some(path) = &args.rtl {
        std::fs::write(path, &soc.source).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{}: RTL written to {path}", soc.name);
    }
    let manifest_json = soc.manifest.to_json();
    if let Some(path) = &args.manifest {
        std::fs::write(path, format!("{manifest_json}\n")).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("{}: manifest written to {path}", soc.name);
    }
    if args.summary {
        println!(
            "{}: {} modules, {} reset domains, {} seeded bug(s), {} checks, top {}",
            soc.name,
            soc.manifest.modules,
            soc.manifest.reset_domains,
            soc.manifest.bugs.len(),
            soc.checks.len(),
            soc.top
        );
    } else if args.manifest.is_none() {
        println!("{manifest_json}");
    }
    Ok(())
}

const SERVE_USAGE: &str = "usage: soccar serve [options]
options:
  --listen <addr>        bind address (default 127.0.0.1:0)
  --port-file <path>     write the bound address to <path> once listening
  --trace-out <path>     write the server's span/metric stream as NDJSON
                         on shutdown (includes the server.* counters)
  --max-connections <n>  concurrent connections admitted (default 4);
                         connections beyond this queue briefly, then are
                         shed with a structured `busy` envelope
  --jobs <n>             worker threads per request (default: $SOCCAR_JOBS,
                         else all cores; results identical for every value)
  --cache-dir <dir>      persist the cache journal in <dir>; on restart
                         the journal replays and the cache is warm again
                         (corrupt tails degrade, never block startup)
  --idle-timeout-ms <n>  close connections silent for <n> ms between
                         frames (default: never)
  --frame-deadline-ms <n>
                         abort connections whose started frame does not
                         arrive in full within <n> ms — the slow-loris
                         guard (default: never)
  --write-timeout-ms <n> per-connection socket write deadline
                         (default: blocking)
  --admission-wait-ms <n>
                         how long a connection may queue for admission
                         before being shed (default 500)
environment:
  SOCCAR_FAULTS          serve-layer chaos points (frame_truncate@serve:N,
                         conn_drop@respond:N, journal_corrupt@replay:N,
                         shed@admission:N; see docs/RESILIENCE.md)
runs until a client sends `shutdown`, then exits 0 (see docs/SERVER.md)";

struct ServeArgs {
    listen: String,
    port_file: Option<String>,
    trace_out: Option<String>,
    max_connections: usize,
    jobs: usize,
    cache_dir: Option<String>,
    idle_timeout_ms: Option<u64>,
    frame_deadline_ms: Option<u64>,
    write_timeout_ms: Option<u64>,
    admission_wait_ms: u64,
}

fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut args = args;
    let mut out = ServeArgs {
        listen: "127.0.0.1:0".to_owned(),
        port_file: None,
        trace_out: None,
        max_connections: 4,
        jobs: 0,
        cache_dir: None,
        idle_timeout_ms: None,
        frame_deadline_ms: None,
        write_timeout_ms: None,
        admission_wait_ms: 500,
    };
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let ms = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<u64, String> {
        args.next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("{flag}: {e}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => out.listen = next(&mut args, "--listen")?,
            "--port-file" => out.port_file = Some(next(&mut args, "--port-file")?),
            "--trace-out" => out.trace_out = Some(next(&mut args, "--trace-out")?),
            "--cache-dir" => out.cache_dir = Some(next(&mut args, "--cache-dir")?),
            "--max-connections" => {
                out.max_connections = next(&mut args, "--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--jobs" => {
                out.jobs = next(&mut args, "--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--idle-timeout-ms" => {
                out.idle_timeout_ms = Some(ms(&mut args, "--idle-timeout-ms")?);
            }
            "--frame-deadline-ms" => {
                out.frame_deadline_ms = Some(ms(&mut args, "--frame-deadline-ms")?);
            }
            "--write-timeout-ms" => {
                out.write_timeout_ms = Some(ms(&mut args, "--write-timeout-ms")?);
            }
            "--admission-wait-ms" => {
                out.admission_wait_ms = ms(&mut args, "--admission-wait-ms")?;
            }
            "--help" | "-h" => {
                println!("{SERVE_USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(out)
}

fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let recorder = if args.trace_out.is_some() {
        soccar_obs::Recorder::enabled()
    } else {
        soccar_obs::Recorder::disabled()
    };
    let fault_plan = soccar_exec::FaultPlan::from_env()?;
    let defaults = ServerOptions::default();
    let options = ServerOptions {
        listen: args.listen.clone(),
        max_connections: args.max_connections,
        jobs: args.jobs,
        cache_dir: args.cache_dir.clone().map(std::path::PathBuf::from),
        fault_plan,
        idle_timeout: args.idle_timeout_ms.map(std::time::Duration::from_millis),
        frame_deadline: args.frame_deadline_ms.map(std::time::Duration::from_millis),
        write_timeout: args.write_timeout_ms.map(std::time::Duration::from_millis),
        admission_wait: std::time::Duration::from_millis(args.admission_wait_ms),
        ..defaults
    };
    let server = Server::bind_with_recorder(&options, recorder.clone())
        .map_err(|e| format!("bind {}: {e}", args.listen))?;
    // Degraded journal recovery is worth operator attention but must not
    // pollute stdout — the banner below stays the first stdout line.
    for reason in server.journal_degraded() {
        eprintln!("degraded: {reason}");
    }
    let addr = server.local_addr();
    // Flush eagerly: supervisors and tests read this line (or the port
    // file) to learn the ephemeral port before connecting. A supervisor
    // may close our stdout after reading it — a daemon must keep serving
    // (and shut down cleanly) without a console, so never panic on it.
    let _ = writeln!(std::io::stdout(), "soccar-serve listening on {addr}");
    std::io::stdout().flush().ok();
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    let served = server.run().map_err(|e| format!("serve: {e}"))?;
    if let Some(path) = &args.trace_out {
        std::fs::write(path, soccar_obs::to_ndjson(&recorder.snapshot()))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let _ = writeln!(
        std::io::stdout(),
        "soccar-serve shut down cleanly after {served} request(s)"
    );
    Ok(())
}

const CLIENT_USAGE: &str =
    "usage: soccar client [--connect <addr> | --port-file <path>] <command> [options]
commands:
  analyze <file.v> --top <module> [analyze options]
  analyze --soc <name> [--variant <n>] [analyze options]
         (<name>: clustersoc, autosoc, or gen:<seed>:<scale>)
  lint <file.v> [--allow <rule>] [--deny <rule>]
  status
  shutdown
client options:
  --retries <n>       retry connect failures, dropped/torn responses, and
                      `busy` envelopes up to <n> times with deterministic
                      seeded exponential backoff + jitter (default 0)
  --timeout-ms <n>    per-attempt connect/read/write deadline
                      (default: none)
a --port-file that does not exist yet is polled with bounded backoff (the
daemon may still be starting), so `soccar client` can be launched
concurrently with `soccar serve`
analyze options mirror the batch CLI (--property --symbolic --refined
--cycles --rounds --solver-budget --keep-going --round-deadline-ms);
`analyze` prints the canonical report JSON, byte-identical to
`soccar analyze --json`; `lint` prints the lint report JSON,
byte-identical to `soccar lint --json`
exit status: 0 = clean, 1 = violations/errors found, 2 = failure";

struct ClientArgs {
    addr: String,
    port_file: Option<String>,
    retries: u32,
    timeout_ms: Option<u64>,
    request: Request,
}

fn parse_client_args(args: impl Iterator<Item = String>) -> Result<ClientArgs, String> {
    let mut args = args;
    let mut addr = String::new();
    let mut port_file = None;
    let mut retries = 0u32;
    let mut timeout_ms = None;
    let mut request: Option<Request> = None;
    let mut file = String::new();
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = next(&mut args, "--connect")?,
            "--port-file" => port_file = Some(next(&mut args, "--port-file")?),
            "--retries" => {
                retries = next(&mut args, "--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--timeout-ms" => {
                timeout_ms = Some(
                    next(&mut args, "--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!("{CLIENT_USAGE}");
                std::process::exit(0);
            }
            "analyze" | "lint" | "status" | "shutdown" if request.is_none() => {
                request = Some(Request::new(&arg));
            }
            other => {
                let req = request
                    .as_mut()
                    .ok_or_else(|| format!("expected a command before `{other}`"))?;
                match other {
                    "--soc" => req.soc = next(&mut args, "--soc")?,
                    "--variant" => {
                        req.variant = Some(
                            next(&mut args, "--variant")?
                                .parse()
                                .map_err(|e| format!("--variant: {e}"))?,
                        );
                    }
                    "--top" => req.top = next(&mut args, "--top")?,
                    "--property" => req.properties.push(next(&mut args, "--property")?),
                    "--symbolic" => req.symbolic.push(next(&mut args, "--symbolic")?),
                    "--refined" => req.refined = true,
                    "--cycles" => {
                        req.cycles = Some(
                            next(&mut args, "--cycles")?
                                .parse()
                                .map_err(|e| format!("--cycles: {e}"))?,
                        );
                    }
                    "--rounds" => {
                        req.rounds = Some(
                            next(&mut args, "--rounds")?
                                .parse()
                                .map_err(|e| format!("--rounds: {e}"))?,
                        );
                    }
                    "--solver-budget" => {
                        req.solver_budget = Some(
                            next(&mut args, "--solver-budget")?
                                .parse()
                                .map_err(|e| format!("--solver-budget: {e}"))?,
                        );
                    }
                    "--keep-going" => req.keep_going = true,
                    "--round-deadline-ms" => {
                        req.round_deadline_ms = Some(
                            next(&mut args, "--round-deadline-ms")?
                                .parse()
                                .map_err(|e| format!("--round-deadline-ms: {e}"))?,
                        );
                    }
                    "--allow" => req.allow.push(next(&mut args, "--allow")?),
                    "--deny" => req.deny.push(next(&mut args, "--deny")?),
                    path if !path.starts_with('-') && file.is_empty() => {
                        file = path.to_owned();
                    }
                    _ => return Err(format!("unexpected argument `{other}`")),
                }
            }
        }
    }
    let mut request = request.ok_or_else(|| CLIENT_USAGE.to_owned())?;
    if !file.is_empty() {
        request.source = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
        request.file_name = file;
    }
    if addr.is_empty() && port_file.is_none() {
        return Err("need --connect <addr> or --port-file <path>".to_owned());
    }
    Ok(ClientArgs {
        addr,
        port_file,
        retries,
        timeout_ms,
        request,
    })
}

/// Reads the daemon's address from its `--port-file`, polling with
/// bounded backoff: a client launched concurrently with `soccar serve`
/// must not lose the race against the daemon's port-file write. Gives
/// up (naming the path) after ~10 s.
fn read_port_file(path: &str) -> Result<String, String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut delay = std::time::Duration::from_millis(20);
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) if !text.trim().is_empty() => return Ok(text.trim().to_owned()),
            // Missing or still-empty: the daemon is starting up.
            Ok(_) | Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(std::time::Duration::from_millis(500));
            }
            Ok(_) => return Err(format!("{path}: still empty after waiting for the daemon")),
            Err(e) => return Err(format!("{path}: {e} (daemon never wrote its port file)")),
        }
    }
}

fn run_client(args: &ClientArgs) -> Result<bool, String> {
    let addr = if args.addr.is_empty() {
        read_port_file(args.port_file.as_deref().expect("checked at parse"))?
    } else {
        args.addr.clone()
    };
    let policy = soccar_serve::RetryPolicy {
        retries: args.retries,
        timeout: args.timeout_ms.map(std::time::Duration::from_millis),
        ..soccar_serve::RetryPolicy::default()
    };
    let (envelope, body) = soccar_serve::roundtrip_with_retry(&addr, &args.request, &policy)?;
    if !envelope.ok {
        return Err(envelope.error);
    }
    if !body.is_empty() {
        let text = String::from_utf8(body).map_err(|_| "response body is not utf-8".to_owned())?;
        println!("{text}");
    }
    for reason in &envelope.degraded_reasons {
        eprintln!("degraded: {reason}");
    }
    Ok(envelope.violations == 0)
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        // The daemon and its CI driver.
        Some("serve") => {
            return match parse_serve_args(std::env::args().skip(2)) {
                Ok(args) => match run_serve(&args) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::from(2)
                    }
                },
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(2)
                }
            };
        }
        Some("client") => {
            return match parse_client_args(std::env::args().skip(2)) {
                Ok(args) => match run_client(&args) {
                    Ok(true) => ExitCode::SUCCESS,
                    Ok(false) => ExitCode::FAILURE,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::from(2)
                    }
                },
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(2)
                }
            };
        }
        _ => {}
    }
    // `gen` materializes a generated design without analyzing it.
    if std::env::args().nth(1).as_deref() == Some("gen") {
        return match parse_gen_args(std::env::args().skip(2)) {
            Ok(args) => match run_gen(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }
    // `lint` runs only the static pre-pass and has its own flag set.
    if std::env::args().nth(1).as_deref() == Some("lint") {
        return match parse_lint_args(std::env::args().skip(2)) {
            Ok(args) => match run_lint(&args) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }
    // `analyze` is an optional alias for the default mode.
    let skip = if std::env::args().nth(1).as_deref() == Some("analyze") {
        2
    } else {
        1
    };
    let args = match parse_args(std::env::args().skip(skip)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
