//! Source positions and the source map.
//!
//! Every AST node carries a [`Span`] so diagnostics from any later stage
//! (parser, elaborator, CFG extractor, concolic engine) can point back into
//! the original Verilog text.

use std::fmt;

/// Identifies a file registered in a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A half-open byte range `[start, end)` within one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// File the range points into.
    pub file: FileId,
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` in `file`.
    #[must_use]
    pub fn new(file: FileId, start: u32, end: u32) -> Span {
        Span { file, start, end }
    }

    /// A zero-length placeholder span (file 0, offset 0), used for
    /// synthesized nodes such as elaboration-generated port connections.
    #[must_use]
    pub fn dummy() -> Span {
        Span::new(FileId(0), 0, 0)
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the spans are in different files.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        assert_eq!(self.file, other.file, "cannot join spans across files");
        Span::new(
            self.file,
            self.start.min(other.start),
            self.end.max(other.end),
        )
    }
}

/// A line/column pair, both 1-based, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (byte) number.
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

struct SourceFile {
    name: String,
    text: String,
    /// Byte offsets of the start of each line.
    line_starts: Vec<u32>,
}

/// Owns all source text for a design and resolves [`Span`]s to
/// line/column positions.
///
/// # Examples
///
/// ```
/// use soccar_rtl::span::SourceMap;
///
/// let mut map = SourceMap::new();
/// let file = map.add_file("top.v", "module t;\nendmodule\n");
/// let span = soccar_rtl::span::Span::new(file, 10, 19);
/// assert_eq!(map.line_col(span).line, 2);
/// ```
#[derive(Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    #[must_use]
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, text: impl Into<String>) -> FileId {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        self.files.push(SourceFile {
            name: name.into(),
            text,
            line_starts,
        });
        FileId(self.files.len() as u32 - 1)
    }

    /// The registered name of `file`.
    ///
    /// # Panics
    ///
    /// Panics if `file` was not produced by this map.
    #[must_use]
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].name
    }

    /// The full text of `file`.
    ///
    /// # Panics
    ///
    /// Panics if `file` was not produced by this map.
    #[must_use]
    pub fn file_text(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].text
    }

    /// The source text covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of range for its file.
    #[must_use]
    pub fn snippet(&self, span: Span) -> &str {
        &self.files[span.file.0 as usize].text[span.start as usize..span.end as usize]
    }

    /// Line/column of the start of `span` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `span.file` was not produced by this map.
    #[must_use]
    pub fn line_col(&self, span: Span) -> LineCol {
        let f = &self.files[span.file.0 as usize];
        let line_idx = match f.line_starts.binary_search(&span.start) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: span.start - f.line_starts[line_idx] + 1,
        }
    }

    /// Formats `span` as `file:line:col` for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `span.file` was not produced by this map.
    #[must_use]
    pub fn describe(&self, span: Span) -> String {
        let lc = self.line_col(span);
        format!("{}:{}", self.file_name(span.file), lc)
    }
}

impl fmt::Debug for SourceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceMap")
            .field("files", &self.files.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_lookup() {
        let mut map = SourceMap::new();
        let f = map.add_file("a.v", "abc\ndef\nghi");
        assert_eq!(
            map.line_col(Span::new(f, 0, 1)),
            LineCol { line: 1, col: 1 }
        );
        assert_eq!(
            map.line_col(Span::new(f, 4, 5)),
            LineCol { line: 2, col: 1 }
        );
        assert_eq!(
            map.line_col(Span::new(f, 6, 7)),
            LineCol { line: 2, col: 3 }
        );
        assert_eq!(
            map.line_col(Span::new(f, 8, 9)),
            LineCol { line: 3, col: 1 }
        );
        assert_eq!(map.describe(Span::new(f, 6, 7)), "a.v:2:3");
    }

    #[test]
    fn snippet_and_join() {
        let mut map = SourceMap::new();
        let f = map.add_file("a.v", "module top;");
        let a = Span::new(f, 0, 6);
        let b = Span::new(f, 7, 10);
        assert_eq!(map.snippet(a), "module");
        assert_eq!(map.snippet(a.to(b)), "module top");
    }

    #[test]
    fn multiple_files() {
        let mut map = SourceMap::new();
        let a = map.add_file("a.v", "aaa");
        let b = map.add_file("b.v", "bbb");
        assert_ne!(a, b);
        assert_eq!(map.file_name(a), "a.v");
        assert_eq!(map.file_name(b), "b.v");
        assert_eq!(map.file_text(b), "bbb");
    }
}
