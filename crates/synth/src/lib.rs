//! # soccar-synth
//!
//! FPGA area estimation for the SoCCAR reproduction — the stand-in for the
//! Xilinx Vivado synthesis runs behind the paper's **Table I** (see
//! DESIGN.md §3 for the substitution rationale).
//!
//! The mapper walks the elaborated design and applies a deterministic
//! 6-input-LUT technology model:
//!
//! * expression operators cost LUTs by width (carry chains for add/sub,
//!   partial-product arrays for multipliers, borrow chains for
//!   comparators, logarithmic barrel shifters, …);
//! * control flow costs multiplexer LUTs over the widths it merges;
//! * registers written by edge-triggered processes count as flip-flops;
//! * memory arrays map to distributed LUTRAM below the block-RAM
//!   threshold and to RAMB18-equivalent block RAMs above it.
//!
//! Absolute numbers are a model, not a Vivado run; what the benches check
//! is the *shape* — AutoSoC ≈ 2× ClusterSoC, variants within a few
//! percent of each other — which is what Table I evidences.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use soccar_rtl::ast::{BinaryOp, UnaryOp};
use soccar_rtl::design::{Design, LValue, RExpr, RStmt, Trigger};

/// Per-bit thresholds and block parameters of the technology model.
#[derive(Debug, Clone, Copy)]
pub struct TechModel {
    /// Bits per distributed-RAM LUT (RAM64X1S-style).
    pub lutram_bits_per_lut: u32,
    /// Capacity of one block RAM unit (RAMB18-equivalent).
    pub bram_bits: u32,
    /// Memories at or above this bit count use block RAM.
    pub bram_threshold_bits: u32,
}

impl Default for TechModel {
    fn default() -> TechModel {
        TechModel {
            lutram_bits_per_lut: 64,
            bram_bits: 18 * 1024,
            bram_threshold_bits: 4096,
        }
    }
}

/// An area report: the columns of Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaReport {
    /// Logic LUTs.
    pub lut: u64,
    /// Distributed-RAM LUTs.
    pub lutram: u64,
    /// Block RAM units (RAMB18-equivalent).
    pub bram: u64,
    /// Flip-flops (not in Table I but standard in synthesis reports).
    pub ff: u64,
}

impl AreaReport {
    /// Sum of logic and memory LUTs.
    #[must_use]
    pub fn total_luts(&self) -> u64 {
        self.lut + self.lutram
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:>6}  LUTRAM {:>5}  BRAM {:>4}  FF {:>6}",
            self.lut, self.lutram, self.bram, self.ff
        )
    }
}

/// Estimates the post-synthesis area of an elaborated design.
#[must_use]
pub fn estimate(design: &Design, tech: &TechModel) -> AreaReport {
    let mut report = AreaReport::default();

    // Memories: LUTRAM vs BRAM decision per array.
    for mem in design.memories() {
        let bits = u64::from(mem.width) * u64::from(mem.depth);
        if bits >= u64::from(tech.bram_threshold_bits) {
            report.bram += bits.div_ceil(u64::from(tech.bram_bits));
        } else {
            report.lutram += bits.div_ceil(u64::from(tech.lutram_bits_per_lut));
        }
    }

    // Processes: logic LUTs + flip-flops. `initial` processes are memory
    // preload, not logic — synthesis folds them into init contents.
    for p in design.processes() {
        if matches!(p.trigger, Trigger::Once) {
            continue;
        }
        let is_seq = matches!(p.trigger, Trigger::Edges(_));
        report.lut += stmt_cost(design, &p.body).round() as u64;
        if is_seq {
            report.ff += assigned_bits(design, &p.body);
        }
    }
    report
}

/// LUT cost of one statement tree.
fn stmt_cost(design: &Design, stmt: &RStmt) -> f64 {
    match stmt {
        RStmt::Block(stmts) => stmts.iter().map(|s| stmt_cost(design, s)).sum(),
        RStmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => {
            let merged = assigned_bits(design, stmt) as f64;
            expr_cost(cond)
                + stmt_cost(design, then_stmt)
                + else_stmt.as_deref().map_or(0.0, |e| stmt_cost(design, e))
                + merged / 2.0 // 2:1 mux per merged bit-pair
        }
        RStmt::Case { selector, arms, .. } => {
            let sel_w = f64::from(selector.width());
            let label_cost: f64 = arms
                .iter()
                .map(|a| a.labels.len() as f64 * (sel_w / 3.0 + 1.0))
                .sum();
            let arm_cost: f64 = arms.iter().map(|a| stmt_cost(design, &a.body)).sum();
            let merged = assigned_bits(design, stmt) as f64;
            expr_cost(selector) + label_cost + arm_cost + merged * (arms.len() as f64) / 4.0
        }
        RStmt::Assign { lhs, rhs, .. } => expr_cost(rhs) + lvalue_cost(lhs),
        RStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            // Loops are unrolled by synthesis; approximate the trip count
            // from the condition bound when it is a constant comparison.
            let trips = const_trip_bound(cond).unwrap_or(4) as f64;
            expr_cost(init) + trips * (expr_cost(cond) + expr_cost(step) + stmt_cost(design, body))
        }
        RStmt::Null => 0.0,
    }
}

fn const_trip_bound(cond: &RExpr) -> Option<u64> {
    if let RExpr::Binary { op, rhs, lhs, .. } = cond {
        if matches!(
            op,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        ) {
            for side in [rhs, lhs] {
                if let RExpr::Const(c) = &**side {
                    return c.to_u64().map(|v| v.clamp(1, 1024));
                }
            }
        }
    }
    None
}

/// Distinct assigned bits within a statement (width of the merge network
/// / flip-flop count).
fn assigned_bits(design: &Design, stmt: &RStmt) -> u64 {
    let mut nets = Vec::new();
    let mut mems = Vec::new();
    collect_targets(stmt, &mut nets, &mut mems);
    nets.sort_unstable();
    nets.dedup();
    nets.iter().map(|n| u64::from(design.net(*n).width)).sum()
}

fn collect_targets(
    stmt: &RStmt,
    nets: &mut Vec<soccar_rtl::design::NetId>,
    mems: &mut Vec<soccar_rtl::design::MemId>,
) {
    match stmt {
        RStmt::Block(stmts) => {
            for s in stmts {
                collect_targets(s, nets, mems);
            }
        }
        RStmt::If {
            then_stmt,
            else_stmt,
            ..
        } => {
            collect_targets(then_stmt, nets, mems);
            if let Some(e) = else_stmt {
                collect_targets(e, nets, mems);
            }
        }
        RStmt::Case { arms, .. } => {
            for a in arms {
                collect_targets(&a.body, nets, mems);
            }
        }
        RStmt::Assign { lhs, .. } => lhs.collect_targets(nets, mems),
        RStmt::For { body, .. } => collect_targets(body, nets, mems),
        RStmt::Null => {}
    }
}

fn lvalue_cost(lv: &LValue) -> f64 {
    match lv {
        LValue::Net(_) | LValue::Slice { .. } => 0.0,
        LValue::IndexBit { index, .. } => expr_cost(index) + 2.0,
        LValue::DynSlice { start, width, .. } => expr_cost(start) + f64::from(*width),
        LValue::MemWrite { index, .. } => expr_cost(index) + 1.0,
        LValue::Concat(parts) => parts.iter().map(lvalue_cost).sum(),
    }
}

/// LUT cost of one expression tree.
#[must_use]
pub fn expr_cost(e: &RExpr) -> f64 {
    let w = f64::from(e.width());
    match e {
        RExpr::Const(_) | RExpr::Net { .. } | RExpr::Slice { .. } => 0.0,
        RExpr::Resize { expr, .. } => expr_cost(expr),
        RExpr::Unary { op, operand, .. } => {
            let inner = expr_cost(operand);
            let own = match op {
                UnaryOp::Not | UnaryOp::Plus => 0.0, // absorbed into LUTs
                UnaryOp::Neg => f64::from(operand.width()),
                _ => f64::from(operand.width()) / 6.0 + 1.0, // reductions, !
            };
            inner + own
        }
        RExpr::Binary { op, lhs, rhs, .. } => {
            let inner = expr_cost(lhs) + expr_cost(rhs);
            let own = match op {
                BinaryOp::And | BinaryOp::Or | BinaryOp::Xor | BinaryOp::Xnor => w / 2.0,
                BinaryOp::Add | BinaryOp::Sub => w,
                BinaryOp::Mul => {
                    let lw = f64::from(lhs.width());
                    lw * lw / 2.0
                }
                BinaryOp::Div | BinaryOp::Mod => {
                    let lw = f64::from(lhs.width());
                    3.0 * lw
                }
                BinaryOp::Pow => 0.0,
                BinaryOp::LogicalAnd | BinaryOp::LogicalOr => {
                    f64::from(lhs.width()) / 6.0 + f64::from(rhs.width()) / 6.0 + 1.0
                }
                BinaryOp::Eq | BinaryOp::Ne | BinaryOp::CaseEq | BinaryOp::CaseNe => {
                    f64::from(lhs.width()) / 3.0 + 1.0
                }
                BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                    f64::from(lhs.width()) / 2.0 + 1.0
                }
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                    if matches!(**rhs, RExpr::Const(_)) {
                        0.0 // constant shifts are wiring
                    } else {
                        let lw = f64::from(lhs.width()).max(2.0);
                        lw * lw.log2() / 2.0
                    }
                }
            };
            inner + own
        }
        RExpr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => expr_cost(cond) + expr_cost(then_expr) + expr_cost(else_expr) + w / 2.0,
        RExpr::Concat { parts, .. } => parts.iter().map(expr_cost).sum(),
        RExpr::Repeat { expr, .. } => expr_cost(expr),
        RExpr::IndexBit { index, .. } => expr_cost(index) + 2.0,
        RExpr::DynSlice { start, width, .. } => expr_cost(start) + f64::from(*width),
        RExpr::MemRead { index, .. } => expr_cost(index),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(src: &str, top: &str) -> AreaReport {
        let (d, _) = soccar_rtl::compile("t.v", src, top).expect("compile");
        estimate(&d, &TechModel::default())
    }

    #[test]
    fn adder_costs_width_luts() {
        let a = area(
            "module t(input [31:0] a, b, output [31:0] y); assign y = a + b; endmodule",
            "t",
        );
        assert_eq!(a.lut, 32);
        assert_eq!(a.ff, 0);
    }

    #[test]
    fn register_file_is_lutram_big_memory_is_bram() {
        let a = area(
            "module t(input clk, input [4:0] ra, input [31:0] wd, input we, output [31:0] rd);
               reg [31:0] rf [0:31];
               assign rd = rf[ra];
               always @(posedge clk) if (we) rf[ra] <= wd;
             endmodule",
            "t",
        );
        assert_eq!(a.bram, 0);
        assert_eq!(a.lutram, 16); // 1024 bits / 64
        let a = area(
            "module t(input clk, input [13:0] ra, input [31:0] wd, input we, output [31:0] rd);
               reg [31:0] mem [0:16383];
               assign rd = mem[ra];
               always @(posedge clk) if (we) mem[ra] <= wd;
             endmodule",
            "t",
        );
        assert_eq!(a.lutram, 0);
        assert_eq!(a.bram, (16384u64 * 32).div_ceil(18 * 1024));
    }

    #[test]
    fn flip_flops_counted_for_edge_processes_only() {
        let a = area(
            "module t(input clk, input [7:0] d, output reg [7:0] q, output reg [7:0] c);
               always @(posedge clk) q <= d;
               always @* c = d;
             endmodule",
            "t",
        );
        assert_eq!(a.ff, 8);
    }

    #[test]
    fn multiplier_dominates() {
        let small = area(
            "module t(input [7:0] a, b, output [7:0] y); assign y = a * b; endmodule",
            "t",
        );
        let big = area(
            "module t(input [31:0] a, b, output [31:0] y); assign y = a * b; endmodule",
            "t",
        );
        assert!(big.lut > small.lut * 8, "{} vs {}", big.lut, small.lut);
    }

    #[test]
    fn constant_shift_is_free_variable_shift_is_not() {
        let c = area(
            "module t(input [31:0] a, output [31:0] y); assign y = a << 3; endmodule",
            "t",
        );
        let v = area(
            "module t(input [31:0] a, input [4:0] s, output [31:0] y); assign y = a << s; endmodule",
            "t",
        );
        assert_eq!(c.lut, 0);
        assert!(v.lut >= 32);
    }

    #[test]
    fn control_flow_costs_muxes() {
        let plain = area(
            "module t(input clk, input [31:0] d, output reg [31:0] q);
               always @(posedge clk) q <= d;
             endmodule",
            "t",
        );
        let muxed = area(
            "module t(input clk, s, input [31:0] d, e, output reg [31:0] q);
               always @(posedge clk) if (s) q <= d; else q <= e;
             endmodule",
            "t",
        );
        assert!(muxed.lut > plain.lut);
        assert_eq!(muxed.ff, plain.ff);
    }

    #[test]
    fn report_display() {
        let r = AreaReport {
            lut: 100,
            lutram: 20,
            bram: 3,
            ff: 200,
        };
        assert!(r.to_string().contains("100"));
        assert_eq!(r.total_luts(), 120);
    }

    #[test]
    fn soc_scale_shape_holds() {
        // The Table I headline: AutoSoC is substantially (≈2×) bigger than
        // ClusterSoC in logic LUTs; BRAM counts are of the same order.
        let cluster = soccar_soc_area(soccar_soc::SocModel::ClusterSoc);
        let auto = soccar_soc_area(soccar_soc::SocModel::AutoSoc);
        assert!(
            auto.lut as f64 >= cluster.lut as f64 * 1.4,
            "auto {auto} vs cluster {cluster}"
        );
        assert!(cluster.bram >= 40, "cluster {cluster}");
        assert!(auto.bram >= 40, "auto {auto}");
    }

    fn soccar_soc_area(model: soccar_soc::SocModel) -> AreaReport {
        let design = soccar_soc::generate(model, None);
        let (d, _) = soccar_rtl::compile("soc.v", &design.source, &design.top).expect("compile");
        estimate(&d, &TechModel::default())
    }
}
