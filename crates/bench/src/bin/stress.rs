//! The generated-corpus **stress tier**: recall and scale records on
//! seeded `gen:<seed>:<scale>` designs (see docs/GENERATOR.md).
//!
//! Three `BENCH_gen_*.json` reports, all in the pinned `stress` mode:
//!
//! * `BENCH_gen_sweep.json` — the pinned 5-seed × 3-scale sweep with
//!   manifest recall gated at 100% and false alarms at 0;
//! * `BENCH_gen_x10.json` — a ~169-module design (≥10x ClusterSoC)
//!   analyzed in full, with ≥1 real solver call per round asserted;
//! * `BENCH_gen_x50.json` — a ~807-module design: lint recall over the
//!   whole corpus plus the clause-reuse probe on its real flip workload
//!   (`clause_reuse_engaged` recorded either way).
//!
//! ```sh
//! cargo run --release -p soccar-bench --bin stress -- \
//!   --bench-out bench-out --check-baseline crates/bench/baselines
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args = soccar_bench::bench_args();
    let config = soccar_bench::stress_config();

    println!("== generated-corpus stress tier (pinned `stress` mode) ==");
    let sweep = soccar_bench::gen_sweep_report(&config);
    let mut rows = Vec::new();
    for v in &sweep.variants {
        rows.push(vec![
            v.variant.clone(),
            v.counters["gen.modules"].to_string(),
            format!("{}/{}", v.counters["detected"], v.counters["bugs"]),
            v.counters["smt.queries"].to_string(),
            format!("{:.2}", v.seconds_q),
        ]);
    }
    println!(
        "{}",
        soccar_bench::render_table(
            &["design", "modules", "recall", "smt queries", "sec (q)"],
            &rows
        )
    );

    let x10 = soccar_bench::gen_x10_report(&config);
    let v = &x10.variants[0];
    println!(
        "x10 {}: {} modules, recall {}/{}, {} smt queries ({} sat, {} clauses reused), {:.2}s (q)",
        v.variant,
        v.counters["gen.modules"],
        v.counters["detected"],
        v.counters["bugs"],
        v.counters["smt.queries"],
        v.counters["smt.sat"],
        v.counters["smt.clauses_reused"],
        v.seconds_q
    );

    let ft = &x10.variants[1];
    println!(
        "x10 {}: {} candidates, {} sat, trail reuse {} ({} lits kept, {} vars eliminated), \
         incremental {:.3}s vs floor-backtracking {:.3}s (q)",
        ft.variant,
        ft.counters["flip_candidates"],
        ft.counters["flip_sat"],
        if ft.counters["trail_reuse_engaged"] == 1 {
            "ENGAGED"
        } else {
            "not engaged"
        },
        ft.counters["smt.trail_reused"],
        ft.counters["smt.eliminated_vars"],
        ft.timings_q["flip_incremental_q"],
        ft.timings_q["flip_trail_reuse_q"]
    );

    let x50 = soccar_bench::gen_x50_report();
    for v in &x50.variants {
        if let Some(reused) = v.counters.get("smt.clauses_reused") {
            println!(
                "x50 {}: {} candidates, {} sat, clause reuse {} ({} clauses), {:.2}s (q)",
                v.variant,
                v.counters["flip_candidates"],
                v.counters["flip_sat"],
                if v.counters["clause_reuse_engaged"] == 1 {
                    "ENGAGED"
                } else {
                    "not engaged"
                },
                reused,
                v.seconds_q
            );
        } else {
            println!(
                "x50 {}: {} modules linted, {}/{} implicit bugs flagged, {:.2}s (q)",
                v.variant,
                v.counters["gen.modules"],
                v.counters["lint.implicit_flagged"],
                v.counters["lint.implicit_bugs"],
                v.seconds_q
            );
        }
    }

    let reports = [sweep, x10, x50];
    if let Some(dir) = &args.bench_out {
        match soccar_bench::write_bench_reports(std::path::Path::new(dir), &reports) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(dir) = &args.check_baseline {
        let problems = soccar_bench::check_bench_baselines(std::path::Path::new(dir), &reports);
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("baseline mismatch: {p}");
            }
            return ExitCode::FAILURE;
        }
        println!("baseline check passed ({} report(s))", reports.len());
    }
    ExitCode::SUCCESS
}
