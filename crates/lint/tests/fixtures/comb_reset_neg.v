// Negative: the derived reset is registered (driven from a clocked block),
// so no combinational path feeds a reset sink.
module reg_gen(input clk, input por_n, input [3:0] d, output reg [3:0] q);
  reg soft_rst_n;
  always @(posedge clk or negedge por_n)
    if (!por_n) soft_rst_n <= 1'b0;
    else soft_rst_n <= 1'b1;
  always @(posedge clk or negedge soft_rst_n)
    if (!soft_rst_n) q <= 4'd0;
    else q <= d;
endmodule
