//! The concolic co-simulation algebra.
//!
//! [`CoValue`] pairs every simulation value with an optional symbolic term:
//! the concrete half drives execution (branch decisions, memory indices,
//! edge detection), the symbolic half records how the value depends on the
//! symbolic inputs the engine injected. This is the textbook concolic
//! construction — "execute concretely, piggyback symbolic execution".
//!
//! Invariants:
//!
//! * a term is only attached while the concrete value is fully defined
//!   (no X/Z bits) — unknowns drop the shadow;
//! * term width always equals concrete width;
//! * every branch whose condition carries a term is reported through
//!   [`soccar_sim::Algebra::on_branch`] and recorded as a
//!   [`BranchObservation`] in chronological order.

use soccar_rtl::ast::{BinaryOp, UnaryOp};
use soccar_rtl::design::BranchSiteId;
use soccar_rtl::value::LogicVec;
use soccar_sim::algebra::{concrete_binary, concrete_mux, concrete_unary, Algebra};
use soccar_smt::{BvVal, TermGraph, TermId};

/// A concrete value with an optional symbolic shadow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoValue {
    /// The concrete 4-state value.
    pub concrete: LogicVec,
    /// The symbolic term, when the value depends on symbolic inputs and is
    /// fully defined.
    pub term: Option<TermId>,
}

impl CoValue {
    /// A purely concrete value.
    #[must_use]
    pub fn concrete(value: LogicVec) -> CoValue {
        CoValue {
            concrete: value,
            term: None,
        }
    }

    /// `true` if the value carries a symbolic term.
    #[must_use]
    pub fn is_symbolic(&self) -> bool {
        self.term.is_some()
    }
}

/// One recorded branch decision whose condition was symbolic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchObservation {
    /// The static branch site.
    pub site: BranchSiteId,
    /// The (1-bit) condition term at this occurrence.
    pub cond: TermId,
    /// Direction taken by the concrete execution.
    pub taken: bool,
    /// Chronological index within the run.
    pub step: u64,
}

/// One recorded security-check obligation whose monitored net was symbolic.
///
/// `term` is the 1-bit "property holds here" formula built from the
/// monitored net's symbolic shadow at the cycle the check fired. These are
/// never assumed or asserted — they exist so the incremental flip window can
/// pre-blast the real proof obligations and carry their clauses across
/// candidates (see `docs/SOLVER.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckObservation {
    /// The 1-bit holds-term of the property at this occurrence.
    pub term: TermId,
    /// Chronological index within the run (shared with branch steps).
    pub step: u64,
}

/// The co-simulation algebra: owns the term graph and the branch log.
#[derive(Debug, Default)]
pub struct CoAlgebra {
    /// The shared term graph (vars minted by the engine live here too).
    pub graph: TermGraph,
    observations: Vec<BranchObservation>,
    checks: Vec<CheckObservation>,
    coverage: std::collections::HashSet<(BranchSiteId, bool)>,
    step: u64,
}

impl CoAlgebra {
    /// Creates an empty co-algebra.
    #[must_use]
    pub fn new() -> CoAlgebra {
        CoAlgebra::default()
    }

    /// Creates a symbolic value: a fresh (or re-used, by name) variable
    /// whose concrete interpretation is `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` has unknown bits (symbolic inputs must be
    /// two-state).
    pub fn symbolic_input(&mut self, name: &str, value: LogicVec) -> CoValue {
        assert!(
            !value.has_unknown(),
            "symbolic inputs must be fully defined"
        );
        let var = self.graph.var(name, value.width());
        CoValue {
            concrete: value,
            term: Some(var),
        }
    }

    /// Branch observations recorded so far, in chronological order.
    #[must_use]
    pub fn observations(&self) -> &[BranchObservation] {
        &self.observations
    }

    /// Symbolic security-check obligations recorded so far, in
    /// chronological order.
    #[must_use]
    pub fn check_observations(&self) -> &[CheckObservation] {
        &self.checks
    }

    /// Records a symbolic security-check obligation at the current step.
    pub fn record_check(&mut self, term: TermId) {
        self.step += 1;
        self.checks.push(CheckObservation {
            term,
            step: self.step,
        });
    }

    /// Branch coverage: every `(site, direction)` executed this run,
    /// whether or not the condition was symbolic.
    #[must_use]
    pub fn coverage(&self) -> &std::collections::HashSet<(BranchSiteId, bool)> {
        &self.coverage
    }

    /// Clears the branch log and coverage (between rounds). Terms persist —
    /// they are hash-consed and cheap to keep.
    pub fn reset_observations(&mut self) {
        self.observations.clear();
        self.checks.clear();
        self.coverage.clear();
        self.step = 0;
    }

    /// The term of `v`, lifting fully-defined concrete values to constants.
    /// Returns `None` when the concrete value has unknowns.
    fn term_of(&mut self, v: &CoValue) -> Option<TermId> {
        if let Some(t) = v.term {
            return Some(t);
        }
        if v.concrete.has_unknown() {
            return None;
        }
        Some(self.graph.constant(to_bv(&v.concrete)))
    }

    /// Wraps a concrete result with a term, enforcing the no-unknowns
    /// invariant.
    fn wrap(&mut self, concrete: LogicVec, term: Option<TermId>) -> CoValue {
        let term = match term {
            Some(t) if !concrete.has_unknown() => {
                debug_assert_eq!(self.graph.width(t), concrete.width());
                Some(t)
            }
            _ => None,
        };
        CoValue { concrete, term }
    }

    /// A term only matters if at least one operand was genuinely symbolic;
    /// building const-only terms would bloat the graph for nothing.
    fn binary_term(&mut self, op: BinaryOp, a: &CoValue, b: &CoValue) -> Option<TermId> {
        if !a.is_symbolic() && !b.is_symbolic() {
            return None;
        }
        let ta = self.term_of(a)?;
        let tb = self.term_of(b)?;
        let g = &mut self.graph;
        Some(match op {
            BinaryOp::Add => g.add(ta, tb),
            BinaryOp::Sub => g.sub(ta, tb),
            BinaryOp::Mul => g.mul(ta, tb),
            BinaryOp::Div => g.udiv(ta, tb),
            BinaryOp::Mod => g.urem(ta, tb),
            BinaryOp::Pow => return None,
            BinaryOp::And => g.and(ta, tb),
            BinaryOp::Or => g.or(ta, tb),
            BinaryOp::Xor => g.xor(ta, tb),
            BinaryOp::Xnor => {
                let x = g.xor(ta, tb);
                g.not(x)
            }
            BinaryOp::LogicalAnd => {
                let ra = g.red_or(ta);
                let rb = g.red_or(tb);
                g.and(ra, rb)
            }
            BinaryOp::LogicalOr => {
                let ra = g.red_or(ta);
                let rb = g.red_or(tb);
                g.or(ra, rb)
            }
            // Terms are two-state: case equality coincides with equality.
            BinaryOp::Eq | BinaryOp::CaseEq => g.eq(ta, tb),
            BinaryOp::Ne | BinaryOp::CaseNe => g.ne(ta, tb),
            BinaryOp::Lt => g.ult(ta, tb),
            BinaryOp::Le => g.ule(ta, tb),
            BinaryOp::Gt => g.ult(tb, ta),
            BinaryOp::Ge => g.ule(tb, ta),
            BinaryOp::Shl => g.shl(ta, tb),
            BinaryOp::Shr => g.lshr(ta, tb),
            BinaryOp::AShr => g.ashr(ta, tb),
        })
    }
}

/// Converts a fully-defined [`LogicVec`] to a [`BvVal`].
///
/// # Panics
///
/// Panics if `v` has unknown bits.
#[must_use]
pub fn to_bv(v: &LogicVec) -> BvVal {
    assert!(!v.has_unknown(), "cannot convert unknowns to BvVal");
    let bits: Vec<bool> = v.iter_bits().map(|b| b == soccar_rtl::Bit::One).collect();
    BvVal::from_bits(&bits)
}

/// Converts a [`BvVal`] back to a (two-state) [`LogicVec`].
#[must_use]
pub fn from_bv(v: &BvVal) -> LogicVec {
    let bits: Vec<soccar_rtl::Bit> = v
        .iter_bits()
        .map(|b| {
            if b {
                soccar_rtl::Bit::One
            } else {
                soccar_rtl::Bit::Zero
            }
        })
        .collect();
    LogicVec::from_bits(&bits)
}

impl Algebra for CoAlgebra {
    type Value = CoValue;

    fn constant(&mut self, c: LogicVec) -> CoValue {
        CoValue::concrete(c)
    }

    fn concrete<'a>(&self, v: &'a CoValue) -> &'a LogicVec {
        &v.concrete
    }

    fn unary(&mut self, op: UnaryOp, a: &CoValue) -> CoValue {
        let concrete = concrete_unary(op, &a.concrete);
        let term = a.term.map(|t| {
            let g = &mut self.graph;
            match op {
                UnaryOp::Not => g.not(t),
                UnaryOp::LogicalNot => {
                    let r = g.red_or(t);
                    g.not(r)
                }
                UnaryOp::Neg => {
                    let z = g.constant(BvVal::zeros(g.width(t)));
                    g.sub(z, t)
                }
                UnaryOp::Plus => t,
                UnaryOp::RedAnd => g.red_and(t),
                UnaryOp::RedOr => g.red_or(t),
                UnaryOp::RedXor => g.red_xor(t),
                UnaryOp::RedNand => {
                    let r = g.red_and(t);
                    g.not(r)
                }
                UnaryOp::RedNor => {
                    let r = g.red_or(t);
                    g.not(r)
                }
                UnaryOp::RedXnor => {
                    let r = g.red_xor(t);
                    g.not(r)
                }
            }
        });
        self.wrap(concrete, term)
    }

    fn binary(&mut self, op: BinaryOp, a: &CoValue, b: &CoValue) -> CoValue {
        let concrete = concrete_binary(op, &a.concrete, &b.concrete);
        let term = self.binary_term(op, a, b);
        self.wrap(concrete, term)
    }

    fn mux(&mut self, cond: &CoValue, t: &CoValue, e: &CoValue) -> CoValue {
        let concrete = concrete_mux(&cond.concrete, &t.concrete, &e.concrete);
        let term = if cond.is_symbolic() || t.is_symbolic() || e.is_symbolic() {
            (|| {
                let tc = self.term_of(cond)?;
                let tt = self.term_of(t)?;
                let te = self.term_of(e)?;
                let g = &mut self.graph;
                let c1 = g.red_or(tc); // Verilog truthiness
                Some(g.ite(c1, tt, te))
            })()
        } else {
            None
        };
        self.wrap(concrete, term)
    }

    fn concat(&mut self, hi: &CoValue, lo: &CoValue) -> CoValue {
        let concrete = hi.concrete.concat(&lo.concrete);
        let term = if hi.is_symbolic() || lo.is_symbolic() {
            (|| {
                let th = self.term_of(hi)?;
                let tl = self.term_of(lo)?;
                Some(self.graph.concat(th, tl))
            })()
        } else {
            None
        };
        self.wrap(concrete, term)
    }

    fn slice(&mut self, a: &CoValue, lo: u32, width: u32) -> CoValue {
        let concrete = a.concrete.slice(lo, width);
        let term = a.term.and_then(|t| {
            let tw = self.graph.width(t);
            if lo + width <= tw {
                Some(self.graph.extract(lo + width - 1, lo, t))
            } else {
                None // out-of-range slice reads X concretely
            }
        });
        self.wrap(concrete, term)
    }

    fn resize(&mut self, a: &CoValue, width: u32) -> CoValue {
        let concrete = a.concrete.resize(width);
        let term = a.term.map(|t| self.graph.resize(t, width));
        self.wrap(concrete, term)
    }

    fn on_branch(&mut self, site: BranchSiteId, cond: &CoValue, taken: bool) {
        self.step += 1;
        self.coverage.insert((site, taken));
        let Some(t) = cond.term else { return };
        // Normalize the condition to one bit of truthiness.
        let cond1 = self.graph.red_or(t);
        self.observations.push(BranchObservation {
            site,
            cond: cond1,
            taken,
            step: self.step,
        });
    }

    fn changed(old: &CoValue, new: &CoValue) -> bool {
        old.concrete != new.concrete || old.term != new.term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_only_ops_build_no_terms() {
        let mut alg = CoAlgebra::new();
        let a = alg.constant(LogicVec::from_u64(8, 5));
        let b = alg.constant(LogicVec::from_u64(8, 7));
        let s = alg.binary(BinaryOp::Add, &a, &b);
        assert_eq!(s.concrete.to_u64(), Some(12));
        assert!(!s.is_symbolic());
        assert!(alg.graph.is_empty());
    }

    #[test]
    fn symbolic_propagation_and_solving() {
        use soccar_smt::{CheckResult, Solver};
        let mut alg = CoAlgebra::new();
        let x = alg.symbolic_input("x", LogicVec::from_u64(8, 3));
        let c = alg.constant(LogicVec::from_u64(8, 10));
        let sum = alg.binary(BinaryOp::Add, &x, &c);
        assert_eq!(sum.concrete.to_u64(), Some(13));
        let t = sum.term.expect("term");
        // Solve sum == 42 → x == 32.
        let target = alg.graph.const_u64(8, 42);
        let goal = alg.graph.eq(t, target);
        let mut s = Solver::new();
        s.assert(goal);
        match s.check(&alg.graph) {
            CheckResult::Sat(m) => {
                let xvar = alg.graph.var("x", 8);
                assert_eq!(m.value(xvar).and_then(BvVal::to_u64), Some(32));
            }
            other => panic!("must be sat, got {other:?}"),
        }
    }

    #[test]
    fn unknown_concrete_drops_term() {
        let mut alg = CoAlgebra::new();
        let x = alg.symbolic_input("x", LogicVec::from_u64(8, 3));
        let unknown = alg.constant(LogicVec::xes(8));
        let s = alg.binary(BinaryOp::Add, &x, &unknown);
        assert!(s.concrete.is_all_x());
        assert!(!s.is_symbolic());
    }

    #[test]
    fn branch_observations_recorded_in_order() {
        let mut alg = CoAlgebra::new();
        let x = alg.symbolic_input("x", LogicVec::from_u64(1, 1));
        let y = alg.constant(LogicVec::from_u64(1, 0));
        alg.on_branch(BranchSiteId(0), &x, true);
        alg.on_branch(BranchSiteId(1), &y, false); // concrete: not recorded
        alg.on_branch(BranchSiteId(2), &x, false);
        let obs = alg.observations();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].site, BranchSiteId(0));
        assert!(obs[0].taken);
        assert_eq!(obs[1].site, BranchSiteId(2));
        assert!(obs[0].step < obs[1].step);
        alg.reset_observations();
        assert!(alg.observations().is_empty());
    }

    #[test]
    fn slice_and_concat_terms() {
        let mut alg = CoAlgebra::new();
        let x = alg.symbolic_input("x", LogicVec::from_u64(8, 0xA5));
        let hi = alg.slice(&x, 4, 4);
        assert_eq!(hi.concrete.to_u64(), Some(0xA));
        assert!(hi.is_symbolic());
        let lo = alg.slice(&x, 0, 4);
        let cat = alg.concat(&hi, &lo);
        assert_eq!(cat.concrete.to_u64(), Some(0xA5));
        assert!(cat.is_symbolic());
        // Out-of-range slice drops the term (concrete has X).
        let oob = alg.slice(&x, 6, 4);
        assert!(!oob.is_symbolic());
    }

    #[test]
    fn bv_conversions_roundtrip() {
        let v = LogicVec::from_u64(12, 0xABC);
        assert_eq!(from_bv(&to_bv(&v)), v);
        let wide = LogicVec::ones(100);
        assert_eq!(from_bv(&to_bv(&wide)), wide);
    }

    #[test]
    #[should_panic(expected = "fully defined")]
    fn symbolic_input_rejects_unknowns() {
        let mut alg = CoAlgebra::new();
        alg.symbolic_input("x", LogicVec::xes(4));
    }

    #[test]
    fn mux_with_symbolic_condition() {
        let mut alg = CoAlgebra::new();
        let c = alg.symbolic_input("c", LogicVec::from_u64(1, 1));
        let a = alg.constant(LogicVec::from_u64(4, 3));
        let b = alg.constant(LogicVec::from_u64(4, 9));
        let m = alg.mux(&c, &a, &b);
        assert_eq!(m.concrete.to_u64(), Some(3));
        assert!(m.is_symbolic());
    }
}
