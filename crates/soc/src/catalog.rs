//! IP classification — the paper's **Table II**.
//!
//! "Certain bugs are relevant to certain IP types, e.g., an information
//! flow violation that compromises a key or plaintext is relevant to a
//! crypto core while a DoS attack making some privilege modes unavailable
//! would make sense in a processor IP."

use crate::bugs::{SocModel, ViolationType};
use crate::checks::CheckSpec;
use crate::generate::{GenSpec, Manifest};

/// The IP classes of Table II (plus the infrastructure classes the SoCs
/// also contain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpClass {
    /// SRAMs, DMA engines.
    Memory,
    /// RISC-V cores.
    Processor,
    /// Crypto engines.
    Cryptographic,
    /// DSP datapaths (no Table II violation class).
    Dsp,
    /// Communication peripherals (no Table II violation class).
    Communication,
    /// Bus fabrics and bridges (bug target in ClusterSoC #3).
    Interconnect,
}

impl IpClass {
    /// Display name, matching Table II's wording.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IpClass::Memory => "Memory IP",
            IpClass::Processor => "Processor Core",
            IpClass::Cryptographic => "Cryptographic IP",
            IpClass::Dsp => "DSP Core",
            IpClass::Communication => "Communication IP",
            IpClass::Interconnect => "Interconnect",
        }
    }

    /// The violation class relevant to this IP class (Table II's third
    /// column), if any.
    #[must_use]
    pub fn violation(self) -> Option<ViolationType> {
        match self {
            IpClass::Memory | IpClass::Interconnect => Some(ViolationType::DataIntegrity),
            IpClass::Processor => Some(ViolationType::PrivilegeMode),
            IpClass::Cryptographic => Some(ViolationType::InformationLeakage),
            IpClass::Dsp | IpClass::Communication => None,
        }
    }

    /// Example IPs implemented in this testbed (Table II's second column).
    #[must_use]
    pub fn example_ips(self) -> &'static [&'static str] {
        match self {
            IpClass::Memory => &["SRAM(SP)", "SRAM(DP)", "DMA Engine"],
            IpClass::Processor => &["RV32I", "RV32E", "RV32IC", "RV32IM"],
            IpClass::Cryptographic => &["AES192", "SHA256", "RSA", "MD5", "DES3"],
            IpClass::Dsp => &["FIR", "DFT", "IDFT", "IIR"],
            IpClass::Communication => &["UART", "SPI", "Ethernet"],
            IpClass::Interconnect => &["Wishbone B3", "AXI4-Lite"],
        }
    }
}

/// Strips the uniquification suffix the topology generator appends to
/// IP module names: `_c<digits>` (per-cluster copies) and `_shr` (the
/// shared tier). `aes192_c3` → `aes192`, `sram_sp_shr` → `sram_sp`.
#[must_use]
pub fn strip_generated_suffix(module: &str) -> &str {
    if let Some(base) = module.strip_suffix("_shr") {
        return base;
    }
    if let Some(pos) = module.rfind("_c") {
        let digits = &module[pos + 2..];
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            return &module[..pos];
        }
    }
    module
}

/// Classifies a generator module name into its IP class. Generated
/// per-cluster copies (`aes192_c3`) classify as their base IP.
#[must_use]
pub fn classify(module: &str) -> Option<IpClass> {
    let module = strip_generated_suffix(module);
    Some(match module {
        "sram_sp" | "sram_dp" | "dma_engine" => IpClass::Memory,
        m if m.starts_with("rv32") => IpClass::Processor,
        "aes192" | "sha256" | "md5" | "des3" | "rsa" => IpClass::Cryptographic,
        "fir_filter" | "iir_filter" | "dft_core" | "idft_core" => IpClass::Dsp,
        "uart" | "spi_ctrl" | "eth_mac" => IpClass::Communication,
        m if m.starts_with("wb_") || m.starts_with("axi") || m == "wb2axi_shim" => {
            IpClass::Interconnect
        }
        _ => return None,
    })
}

/// The Table II rows (classes that carry a violation type).
#[must_use]
pub fn table_ii() -> Vec<IpClass> {
    vec![IpClass::Memory, IpClass::Processor, IpClass::Cryptographic]
}

/// A catalog design resolved by name, ready for the pipeline: RTL,
/// security regression, symbolic inputs, and (for generated designs)
/// the ground-truth manifest.
#[derive(Debug, Clone)]
pub struct ResolvedSoc {
    /// Canonical catalog name (`clustersoc`, `autosoc`, `gen:<seed>:<scale>`).
    pub name: String,
    /// Pipeline file name — stable, filename-safe (serves as the cache key).
    pub file_name: String,
    /// Display name (`ClusterSoC Variant #2`, `gen:7:4`, ...).
    pub display: String,
    /// Complete Verilog source.
    pub source: String,
    /// Top module name.
    pub top: String,
    /// The security regression shipped with the design.
    pub checks: Vec<CheckSpec>,
    /// Top-level inputs the concolic engine treats symbolically.
    pub symbolic: Vec<String>,
    /// Ground-truth bug manifest (generated designs only; the bundled
    /// SoCs keep theirs in [`crate::bugs::variants`]).
    pub manifest: Option<Manifest>,
}

/// Resolves a catalog name — `clustersoc`, `autosoc`, or
/// `gen:<seed>:<scale>` — into a pipeline-ready design.
///
/// `variant` selects a Table IV bug variant for the bundled SoCs;
/// generated designs draw their bugs from the seed and reject it.
///
/// # Errors
///
/// Returns a human-readable message for unknown names, bad `gen:`
/// specs, unknown variant numbers, or a `variant` on a `gen:` design.
pub fn resolve(name: &str, variant: Option<u32>) -> Result<ResolvedSoc, String> {
    if name.starts_with("gen:") {
        if variant.is_some() {
            return Err(format!(
                "`{name}`: generated designs have no seeded variants; bugs are drawn from the seed"
            ));
        }
        let spec = GenSpec::parse(name)?;
        let gen = crate::generate::generate(&spec);
        return Ok(ResolvedSoc {
            name: gen.name.clone(),
            file_name: format!("{}.v", gen.slug),
            display: gen.name,
            source: gen.source,
            top: gen.top,
            checks: gen.checks,
            symbolic: gen.symbolic,
            manifest: Some(gen.manifest),
        });
    }
    let model = match name {
        "clustersoc" => SocModel::ClusterSoc,
        "autosoc" => SocModel::AutoSoc,
        other => {
            return Err(format!(
                "unknown soc model `{other}` (expected `clustersoc`, `autosoc`, or \
                 `gen:<seed>:<scale>`)"
            ))
        }
    };
    if let Some(n) = variant {
        if crate::bugs::variant(model, n).is_none() {
            return Err(format!("{model:?} has no variant #{n}"));
        }
    }
    let design = crate::generate(model, variant);
    Ok(ResolvedSoc {
        name: name.to_owned(),
        file_name: format!("{model:?}.v").to_lowercase(),
        display: design.name,
        source: design.source,
        top: design.top,
        checks: crate::checks::security_checks(model),
        symbolic: crate::checks::symbolic_inputs(model),
        manifest: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_rows_match_paper() {
        let rows = table_ii();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].violation(), Some(ViolationType::DataIntegrity));
        assert_eq!(rows[1].violation(), Some(ViolationType::PrivilegeMode));
        assert_eq!(rows[2].violation(), Some(ViolationType::InformationLeakage));
    }

    #[test]
    fn classification_covers_bug_targets() {
        for v in crate::bugs::variants() {
            for bug in &v.bugs {
                let class = classify(&bug.ip)
                    .unwrap_or_else(|| panic!("unclassified bug target {}", bug.ip));
                assert_eq!(
                    class.violation(),
                    Some(bug.violation),
                    "{}: bug at {} has mismatched class",
                    v.name(),
                    bug.ip
                );
            }
        }
    }

    #[test]
    fn all_generators_classified() {
        for m in [
            "sram_sp",
            "sram_dp",
            "dma_engine",
            "rv32i_core",
            "rv32imc_core",
            "aes192",
            "rsa",
            "fir_filter",
            "uart",
            "eth_mac",
            "wb_fabric",
            "axi_xbar",
            "wb2axi_shim",
        ] {
            assert!(classify(m).is_some(), "{m}");
        }
        assert!(classify("mystery").is_none());
    }

    #[test]
    fn generated_suffixes_classify_as_their_base_ip() {
        assert_eq!(classify("aes192_c3"), Some(IpClass::Cryptographic));
        assert_eq!(classify("sram_sp_c12"), Some(IpClass::Memory));
        assert_eq!(classify("sram_sp_shr"), Some(IpClass::Memory));
        assert_eq!(classify("dma_engine_c0"), Some(IpClass::Memory));
        assert_eq!(classify("rv32imc_core_c7"), Some(IpClass::Processor));
        assert_eq!(classify("wb_fabric_c2"), Some(IpClass::Interconnect));
        assert_eq!(classify("dft_core_c2"), Some(IpClass::Dsp));
        assert_eq!(classify("eth_mac_c1"), Some(IpClass::Communication));
        // Not a generated suffix: `_c` must be followed by digits only.
        assert_eq!(strip_generated_suffix("dft_core"), "dft_core");
        assert_eq!(classify("tst_gate_c3"), None);
    }

    #[test]
    fn resolve_covers_bundled_and_generated_names() {
        let cluster = resolve("clustersoc", Some(2)).expect("clustersoc");
        assert_eq!(cluster.file_name, "clustersoc.v");
        assert_eq!(cluster.top, "cluster_soc");
        assert_eq!(cluster.display, "ClusterSoC Variant #2");
        assert!(cluster.manifest.is_none());
        assert_eq!(cluster.checks.len(), 18);

        let auto = resolve("autosoc", None).expect("autosoc");
        assert_eq!(auto.file_name, "autosoc.v");
        assert_eq!(auto.display, "AutoSoC (clean)");

        let gen = resolve("gen:7:2", None).expect("gen");
        assert_eq!(gen.file_name, "gen_7_2.v");
        assert_eq!(gen.top, "gen_soc");
        let manifest = gen.manifest.expect("manifest");
        assert_eq!(manifest.scale, 2);
        assert!(!manifest.bugs.is_empty());

        assert!(resolve("toastersoc", None)
            .expect_err("unknown")
            .contains("unknown soc model"));
        assert!(resolve("gen:7:2", Some(1))
            .expect_err("variant")
            .contains("no seeded variants"));
        assert!(resolve("gen:7:x", None).is_err());
        assert!(resolve("clustersoc", Some(9))
            .expect_err("variant")
            .contains("no variant"));
    }

    #[test]
    fn class_metadata_nonempty() {
        for c in [
            IpClass::Memory,
            IpClass::Processor,
            IpClass::Cryptographic,
            IpClass::Dsp,
            IpClass::Communication,
            IpClass::Interconnect,
        ] {
            assert!(!c.name().is_empty());
            assert!(!c.example_ips().is_empty());
        }
    }
}
