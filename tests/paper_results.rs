//! The headline reproduction, as a regression test: Section V-C's
//! detection results across all five bug-seeded variants.
//!
//! * Every ClusterSoC bug detected.
//! * Every AutoSoC bug detected **except** the SHA256 information-leakage
//!   bug of Variant #2 under the Explicit (published) governor analysis.
//! * The Refined extension detects that bug too.
//! * No false alarms anywhere; verification is seconds, not hours.

use soccar::evaluation::{evaluate_variant, render_outcomes};
use soccar::SoccarConfig;
use soccar_cfg::GovernorAnalysis;
use soccar_concolic::ConcolicConfig;
use soccar_sim::InitPolicy;
use soccar_soc::SocModel;

fn test_config(analysis: GovernorAnalysis) -> SoccarConfig {
    SoccarConfig {
        analysis,
        concolic: ConcolicConfig {
            cycles: 10,
            max_rounds: 3,
            sweep_stride: 3,
            init: InitPolicy::Ones,
            ..ConcolicConfig::default()
        },
        ..SoccarConfig::default()
    }
}

#[test]
fn cluster_soc_variants_fully_detected() {
    for n in 1..=3 {
        let spec = soccar_soc::variant(SocModel::ClusterSoc, n).expect("variant");
        let eval =
            evaluate_variant(&spec, test_config(GovernorAnalysis::Explicit)).expect("evaluate");
        assert_eq!(
            eval.detected(),
            eval.outcomes.len(),
            "{}",
            render_outcomes(&eval)
        );
        assert!(eval.false_alarms.is_empty(), "{}", render_outcomes(&eval));
    }
}

#[test]
fn auto_soc_variant1_fully_detected() {
    let spec = soccar_soc::variant(SocModel::AutoSoc, 1).expect("variant");
    let eval = evaluate_variant(&spec, test_config(GovernorAnalysis::Explicit)).expect("evaluate");
    assert_eq!(
        eval.detected(),
        eval.outcomes.len(),
        "{}",
        render_outcomes(&eval)
    );
    assert!(eval.false_alarms.is_empty(), "{}", render_outcomes(&eval));
}

#[test]
fn auto_soc_variant2_misses_exactly_the_implicit_sha_bug() {
    let spec = soccar_soc::variant(SocModel::AutoSoc, 2).expect("variant");
    let eval = evaluate_variant(&spec, test_config(GovernorAnalysis::Explicit)).expect("evaluate");
    assert_eq!(eval.missed(), 1, "{}", render_outcomes(&eval));
    let missed: Vec<_> = eval.outcomes.iter().filter(|o| !o.detected).collect();
    assert_eq!(missed.len(), 1);
    assert_eq!(missed[0].ip, "sha256");
    assert!(missed[0].implicit, "the miss is the implicit-governor bug");
    assert!(eval.false_alarms.is_empty(), "{}", render_outcomes(&eval));
}

#[test]
fn refined_analysis_recovers_the_miss() {
    let spec = soccar_soc::variant(SocModel::AutoSoc, 2).expect("variant");
    let eval = evaluate_variant(&spec, test_config(GovernorAnalysis::Refined)).expect("evaluate");
    assert_eq!(
        eval.detected(),
        eval.outcomes.len(),
        "{}",
        render_outcomes(&eval)
    );
    let sha = eval
        .outcomes
        .iter()
        .find(|o| o.implicit)
        .expect("implicit bug");
    assert_eq!(sha.fired, vec!["sha256-no-leak".to_owned()]);
}

#[test]
fn verification_time_is_seconds_not_hours() {
    let spec = soccar_soc::variant(SocModel::ClusterSoc, 1).expect("variant");
    let eval = evaluate_variant(&spec, test_config(GovernorAnalysis::Explicit)).expect("evaluate");
    // Generous bound for debug builds; release is well under a second.
    assert!(
        eval.verification_time().as_secs() < 120,
        "took {:?}",
        eval.verification_time()
    );
}

#[test]
fn clean_baselines_are_violation_free() {
    for model in [SocModel::ClusterSoc, SocModel::AutoSoc] {
        let report = soccar::evaluate_clean(model, test_config(GovernorAnalysis::Refined))
            .expect("clean run");
        assert!(
            report.violations().is_empty(),
            "{model:?}: {:?}",
            report.violations()
        );
    }
}
