//! The event-driven simulator.
//!
//! [`Simulator`] executes an elaborated [`Design`] with IEEE-1364
//! scheduling semantics restricted to the synthesizable subset:
//!
//! * delta cycles: blocking assignments take effect immediately and wake
//!   sensitive processes; non-blocking assignments are queued and committed
//!   when the active region drains;
//! * edge-sensitive processes wake on 4-state edges of their watched
//!   signals (`0→1`, `0→X`, `X→1` count as posedge, mirrored for negedge) —
//!   this is what makes *asynchronous* resets asynchronous;
//! * level-sensitive processes (`always @*`, continuous assignments, port
//!   bindings) wake whenever a net in their read set changes.
//!
//! The interpreter is generic over an [`Algebra`], so the same code path
//! drives both pure-concrete simulation and the concolic co-simulation.

use std::collections::VecDeque;

use soccar_rtl::ast::{CaseKind, Edge, NetKind};
use soccar_rtl::design::{
    Design, LValue, MemId, NetId, ProcessId, RCaseArm, RExpr, RStmt, Trigger,
};
use soccar_rtl::value::{Bit, LogicVec};

use crate::algebra::{Algebra, ConcreteAlgebra};
use crate::error::{SimError, SimResult};

/// Iteration bound for procedural `for` loops.
const FOR_LOOP_LIMIT: u64 = 1 << 20;
/// Process-execution budget per [`Simulator::settle`] call.
const SETTLE_LIMIT: u64 = 1 << 18;

/// How registers (and memories) are initialized at time zero.
///
/// SoCCAR's Algorithm 3 initializes registers to all-ones "so we can
/// validate the major functionalities of asynchronous resets such as
/// register clearance" — a register that should have been cleared by a
/// reset still reads ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitPolicy {
    /// IEEE-1364 default: everything starts `X`.
    #[default]
    X,
    /// Registers and memory elements start at zero.
    Zeros,
    /// Registers and memory elements start at all-ones (the SoCCAR policy).
    Ones,
}

impl InitPolicy {
    fn value(self, width: u32) -> LogicVec {
        match self {
            InitPolicy::X => LogicVec::xes(width),
            InitPolicy::Zeros => LogicVec::zeros(width),
            InitPolicy::Ones => LogicVec::ones(width),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WakeEntry {
    process: ProcessId,
    edge: Option<Edge>,
}

#[derive(Debug)]
enum PrimWrite<V> {
    Net {
        net: NetId,
        lo: u32,
        width: u32,
        value: V,
    },
    Mem {
        mem: MemId,
        addr: u64,
        value: V,
    },
    /// A write whose dynamic index evaluated to X: dropped, per the
    /// documented subset semantics.
    Dropped,
}

/// A recorded value change, for waveform output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time at which the change committed.
    pub time: u64,
    /// Changed net.
    pub net: NetId,
    /// New concrete value.
    pub value: LogicVec,
}

/// The event-driven simulator. See the [module docs](self) for semantics.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soccar_sim::{InitPolicy, Simulator};
///
/// let (design, _) = soccar_rtl::compile("c.v", "
///   module counter(input clk, input rst_n, output reg [3:0] q);
///     always @(posedge clk or negedge rst_n)
///       if (!rst_n) q <= 4'd0;
///       else        q <= q + 4'd1;
///   endmodule", "counter")?;
/// let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
/// let clk = design.find_net("counter.clk").expect("clk");
/// let rst_n = design.find_net("counter.rst_n").expect("rst_n");
/// let q = design.find_net("counter.q").expect("q");
///
/// sim.write_input(rst_n, soccar_rtl::LogicVec::from_u64(1, 0))?; // async reset
/// sim.settle()?;
/// assert_eq!(sim.net_logic(q).to_u64(), Some(0));
///
/// sim.write_input(rst_n, soccar_rtl::LogicVec::from_u64(1, 1))?;
/// sim.settle()?;
/// for _ in 0..3 { sim.tick(clk)?; }
/// assert_eq!(sim.net_logic(q).to_u64(), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'d, A: Algebra> {
    design: &'d Design,
    algebra: A,
    nets: Vec<A::Value>,
    mems: Vec<Vec<A::Value>>,
    wake_map: Vec<Vec<WakeEntry>>,
    runnable: VecDeque<ProcessId>,
    in_queue: Vec<bool>,
    nba_queue: Vec<PrimWrite<A::Value>>,
    time: u64,
    tracing: bool,
    trace: Vec<TraceEvent>,
    run_counts: Vec<u64>,
}

impl<'d> Simulator<'d, ConcreteAlgebra> {
    /// Creates a concrete simulator with the given register init policy.
    #[must_use]
    pub fn concrete(design: &'d Design, init: InitPolicy) -> Simulator<'d, ConcreteAlgebra> {
        Simulator::with_algebra(design, ConcreteAlgebra::new(), init)
    }
}

impl<'d, A: Algebra> Simulator<'d, A> {
    /// Creates a simulator driving `design` through `algebra`.
    ///
    /// Registers take their declared initializer if present, otherwise the
    /// `init` policy value; wires start `X` until their drivers settle.
    pub fn with_algebra(design: &'d Design, mut algebra: A, init: InitPolicy) -> Simulator<'d, A> {
        let nets: Vec<A::Value> = design
            .nets()
            .iter()
            .map(|n| {
                let v = match (&n.init, n.kind) {
                    (Some(iv), _) => iv.clone(),
                    (None, NetKind::Reg | NetKind::Integer) => init.value(n.width),
                    (None, NetKind::Wire) => LogicVec::xes(n.width),
                };
                algebra.constant(v)
            })
            .collect();
        let mems: Vec<Vec<A::Value>> = design
            .memories()
            .iter()
            .map(|m| {
                (0..m.depth)
                    .map(|_| algebra.constant(init.value(m.width)))
                    .collect()
            })
            .collect();
        let mut wake_map: Vec<Vec<WakeEntry>> = vec![Vec::new(); design.nets().len()];
        for (i, p) in design.processes().iter().enumerate() {
            let pid = ProcessId(i as u32);
            match &p.trigger {
                Trigger::Edges(edges) => {
                    for (net, edge) in edges {
                        wake_map[net.0 as usize].push(WakeEntry {
                            process: pid,
                            edge: Some(*edge),
                        });
                    }
                }
                Trigger::AnyChange(nets) => {
                    for net in nets {
                        wake_map[net.0 as usize].push(WakeEntry {
                            process: pid,
                            edge: None,
                        });
                    }
                }
                Trigger::Once => {}
            }
        }
        let n_procs = design.processes().len();
        let mut sim = Simulator {
            design,
            algebra,
            nets,
            mems,
            wake_map,
            runnable: VecDeque::new(),
            in_queue: vec![false; n_procs],
            nba_queue: Vec::new(),
            time: 0,
            tracing: false,
            trace: Vec::new(),
            run_counts: vec![0; n_procs],
        };
        // Time-zero region: `initial` processes and one evaluation of every
        // level-sensitive process so combinational values are established.
        for (i, p) in design.processes().iter().enumerate() {
            if matches!(p.trigger, Trigger::Once) {
                sim.enqueue(ProcessId(i as u32));
            }
        }
        for (i, p) in design.processes().iter().enumerate() {
            if matches!(p.trigger, Trigger::AnyChange(_)) {
                sim.enqueue(ProcessId(i as u32));
            }
        }
        sim
    }

    /// The design being simulated.
    #[must_use]
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// Current simulation time (advanced by [`Simulator::tick`] and
    /// [`Simulator::advance_time`]).
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Advances the simulation clock label (does not run anything).
    pub fn advance_time(&mut self, delta: u64) {
        self.time += delta;
    }

    /// Enables recording of [`TraceEvent`]s for waveform output.
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// The recorded trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// How many times each process has executed (indexed by `ProcessId`).
    /// The concolic engine uses this as coverage evidence for whole-block
    /// (implicit-governor) events.
    #[must_use]
    pub fn process_run_counts(&self) -> &[u64] {
        &self.run_counts
    }

    /// Immutable access to the algebra.
    #[must_use]
    pub fn algebra(&self) -> &A {
        &self.algebra
    }

    /// Mutable access to the algebra (the concolic engine mints symbolic
    /// variables through this).
    pub fn algebra_mut(&mut self) -> &mut A {
        &mut self.algebra
    }

    /// The current value of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not part of the design.
    #[must_use]
    pub fn net_value(&self, net: NetId) -> &A::Value {
        &self.nets[net.0 as usize]
    }

    /// The current concrete value of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not part of the design.
    #[must_use]
    pub fn net_logic(&self, net: NetId) -> &LogicVec {
        self.algebra.concrete(&self.nets[net.0 as usize])
    }

    /// The current value of a memory element.
    ///
    /// # Panics
    ///
    /// Panics if `mem` is not part of the design or `addr` is out of range.
    #[must_use]
    pub fn mem_value(&self, mem: MemId, addr: u64) -> &A::Value {
        &self.mems[mem.0 as usize][addr as usize]
    }

    /// The current concrete value of a memory element.
    ///
    /// # Panics
    ///
    /// Panics if `mem` is not part of the design or `addr` is out of range.
    #[must_use]
    pub fn mem_logic(&self, mem: MemId, addr: u64) -> &LogicVec {
        self.algebra
            .concrete(&self.mems[mem.0 as usize][addr as usize])
    }

    /// Drives a top-level input with a concrete value. Does not settle;
    /// batch several inputs and then call [`Simulator::settle`].
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnInput`] if the net is not a top input;
    /// [`SimError::WidthMismatch`] on width disagreement.
    pub fn write_input(&mut self, net: NetId, value: LogicVec) -> SimResult<()> {
        let v = self.algebra.constant(value);
        self.write_input_value(net, v)
    }

    /// Drives a top-level input with an algebra value (the concolic engine
    /// passes values carrying symbolic terms).
    ///
    /// # Errors
    ///
    /// [`SimError::NotAnInput`] if the net is not a top input;
    /// [`SimError::WidthMismatch`] on width disagreement.
    pub fn write_input_value(&mut self, net: NetId, value: A::Value) -> SimResult<()> {
        let info = self.design.net(net);
        if !info.is_top_input {
            return Err(SimError::NotAnInput { net });
        }
        let got = self.algebra.concrete(&value).width();
        if got != info.width {
            return Err(SimError::WidthMismatch {
                net,
                expected: info.width,
                got,
            });
        }
        self.commit_net(net, 0, info.width, value);
        Ok(())
    }

    /// Overwrites any net (register poke for test setup). Wakes sensitive
    /// processes exactly like a normal commit.
    ///
    /// # Panics
    ///
    /// Panics if the value width differs from the net width.
    pub fn poke_net(&mut self, net: NetId, value: LogicVec) {
        assert_eq!(
            value.width(),
            self.design.net(net).width,
            "poke width mismatch"
        );
        let v = self.algebra.constant(value);
        let w = self.design.net(net).width;
        self.commit_net(net, 0, w, v);
    }

    /// Overwrites a memory element (no process wakeup: memories are not in
    /// sensitivity lists).
    ///
    /// # Panics
    ///
    /// Panics if the width differs or the address is out of range.
    pub fn poke_mem(&mut self, mem: MemId, addr: u64, value: LogicVec) {
        assert_eq!(
            value.width(),
            self.design.memory(mem).width,
            "poke width mismatch"
        );
        let v = self.algebra.constant(value);
        self.mems[mem.0 as usize][addr as usize] = v;
    }

    /// Runs the active and NBA regions until the design stabilizes.
    ///
    /// # Errors
    ///
    /// [`SimError::Unstable`] if the activity budget is exhausted
    /// (combinational loop), or any error from process execution.
    pub fn settle(&mut self) -> SimResult<()> {
        let mut executed: u64 = 0;
        loop {
            while let Some(pid) = self.runnable.pop_front() {
                self.in_queue[pid.0 as usize] = false;
                executed += 1;
                if executed > SETTLE_LIMIT {
                    return Err(SimError::Unstable { executed });
                }
                self.run_process(pid)?;
            }
            if self.nba_queue.is_empty() {
                return Ok(());
            }
            let queue = std::mem::take(&mut self.nba_queue);
            for w in queue {
                self.apply_prim_write(w);
            }
        }
    }

    /// One full clock cycle on `clk`: rise, settle, fall, settle. Advances
    /// time by 2.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulator::settle`] errors.
    pub fn tick(&mut self, clk: NetId) -> SimResult<()> {
        self.write_input(clk, LogicVec::from_u64(1, 1))?;
        self.settle()?;
        self.time += 1;
        self.write_input(clk, LogicVec::from_u64(1, 0))?;
        self.settle()?;
        self.time += 1;
        Ok(())
    }

    fn enqueue(&mut self, pid: ProcessId) {
        if !self.in_queue[pid.0 as usize] {
            self.in_queue[pid.0 as usize] = true;
            self.runnable.push_back(pid);
        }
    }

    /// Commits a (possibly partial) net write and wakes sensitive
    /// processes if the value changed.
    fn commit_net(&mut self, net: NetId, lo: u32, width: u32, value: A::Value) {
        let net_w = self.design.net(net).width;
        let old = self.nets[net.0 as usize].clone();
        let new = if lo == 0 && width >= net_w {
            self.algebra.resize(&value, net_w)
        } else {
            self.splice(&old, net_w, lo, width, &value)
        };
        if !A::changed(&old, &new) {
            return;
        }
        let old_c = self.algebra.concrete(&old).clone();
        let new_c = self.algebra.concrete(&new).clone();
        self.nets[net.0 as usize] = new;
        if self.tracing && old_c != new_c {
            self.trace.push(TraceEvent {
                time: self.time,
                net,
                value: new_c.clone(),
            });
        }
        // Wake processes (index loop avoids cloning the wake list).
        // Level-sensitive entries fire on any algebra-visible change (for
        // the concolic co-algebra that includes symbolic-only changes, so
        // shadow terms propagate even when concrete values are stable);
        // edge entries consult the concrete 4-state edge table.
        for i in 0..self.wake_map[net.0 as usize].len() {
            let WakeEntry { process, edge } = self.wake_map[net.0 as usize][i];
            let fire = match edge {
                None => true,
                Some(edge) => edge_fired(edge, old_c.bit(0), new_c.bit(0)),
            };
            if fire {
                self.enqueue(process);
            }
        }
    }

    /// Read-modify-write splice of `value` into `old[lo +: width]`.
    fn splice(
        &mut self,
        old: &A::Value,
        net_w: u32,
        lo: u32,
        width: u32,
        value: &A::Value,
    ) -> A::Value {
        if lo >= net_w {
            return old.clone();
        }
        let width = width.min(net_w - lo);
        let mid = self.algebra.resize(value, width);
        let mut acc = if lo > 0 {
            let low = self.algebra.slice(old, 0, lo);
            self.algebra.concat(&mid, &low)
        } else {
            mid
        };
        if lo + width < net_w {
            let high = self.algebra.slice(old, lo + width, net_w - lo - width);
            acc = self.algebra.concat(&high, &acc);
        }
        acc
    }

    fn apply_prim_write(&mut self, w: PrimWrite<A::Value>) {
        match w {
            PrimWrite::Net {
                net,
                lo,
                width,
                value,
            } => self.commit_net(net, lo, width, value),
            PrimWrite::Mem { mem, addr, value } => {
                let depth = self.design.memory(mem).depth;
                if addr < u64::from(depth) {
                    self.mems[mem.0 as usize][addr as usize] = value;
                }
            }
            PrimWrite::Dropped => {}
        }
    }

    fn run_process(&mut self, pid: ProcessId) -> SimResult<()> {
        // Copy the `&'d Design` out of `self` first so the statement borrow
        // has lifetime 'd rather than borrowing `self`.
        let design: &'d Design = self.design;
        let body = &design.process(pid).body;
        self.run_counts[pid.0 as usize] += 1;
        self.exec(body, pid)
    }

    fn exec(&mut self, stmt: &RStmt, pid: ProcessId) -> SimResult<()> {
        match stmt {
            RStmt::Block(stmts) => {
                for s in stmts {
                    self.exec(s, pid)?;
                }
                Ok(())
            }
            RStmt::If {
                site,
                cond,
                then_stmt,
                else_stmt,
            } => {
                let c = self.eval(cond);
                let taken = self.algebra.concrete(&c).truthy() == Some(true);
                self.algebra.on_branch(*site, &c, taken);
                if taken {
                    self.exec(then_stmt, pid)
                } else if let Some(e) = else_stmt {
                    self.exec(e, pid)
                } else {
                    Ok(())
                }
            }
            RStmt::Case {
                kind,
                selector,
                arms,
            } => self.exec_case(*kind, selector, arms, pid),
            RStmt::Assign {
                lhs,
                rhs,
                nonblocking,
            } => {
                let value = self.eval(rhs);
                let writes = self.flatten_writes(lhs, value);
                if *nonblocking {
                    self.nba_queue.extend(writes);
                } else {
                    for w in writes {
                        self.apply_prim_write(w);
                    }
                }
                Ok(())
            }
            RStmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let var_w = self.design.net(*var).width;
                let iv = self.eval(init);
                self.commit_net(*var, 0, var_w, iv);
                let mut iters: u64 = 0;
                loop {
                    let c = self.eval(cond);
                    if self.algebra.concrete(&c).truthy() != Some(true) {
                        return Ok(());
                    }
                    iters += 1;
                    if iters > FOR_LOOP_LIMIT {
                        return Err(SimError::LoopLimit { process: pid });
                    }
                    self.exec(body, pid)?;
                    let sv = self.eval(step);
                    self.commit_net(*var, 0, var_w, sv);
                }
            }
            RStmt::Null => Ok(()),
        }
    }

    fn exec_case(
        &mut self,
        kind: CaseKind,
        selector: &RExpr,
        arms: &[RCaseArm],
        pid: ProcessId,
    ) -> SimResult<()> {
        let sel = self.eval(selector);
        let sel_w = self.algebra.concrete(&sel).width();
        for arm in arms {
            if arm.labels.is_empty() {
                continue; // default handled after all labels
            }
            let mut matched = false;
            for label in &arm.labels {
                let m = self.case_label_match(kind, &sel, sel_w, label);
                let hit = self.algebra.concrete(&m).truthy() == Some(true);
                if let Some(site) = arm.site {
                    self.algebra.on_branch(site, &m, hit);
                }
                if hit {
                    matched = true;
                    break;
                }
            }
            if matched {
                return self.exec(&arm.body, pid);
            }
        }
        if let Some(default) = arms.iter().find(|a| a.labels.is_empty()) {
            return self.exec(&default.body, pid);
        }
        Ok(())
    }

    /// Builds the match condition of one case label, honouring wildcard
    /// bits for `casez` (Z/?) and `casex` (X and Z).
    fn case_label_match(
        &mut self,
        kind: CaseKind,
        sel: &A::Value,
        sel_w: u32,
        label: &LogicVec,
    ) -> A::Value {
        let care_mask = match kind {
            CaseKind::Case => None,
            CaseKind::Casez => Some(mask_of(label, |b| b != Bit::Z)),
            CaseKind::Casex => Some(mask_of(label, |b| !b.is_unknown())),
        };
        match care_mask {
            None => {
                let l = self.algebra.constant(label.clone().resize(sel_w));
                self.algebra
                    .binary(soccar_rtl::ast::BinaryOp::CaseEq, sel, &l)
            }
            Some(mask) => {
                let mask = mask.resize(sel_w);
                let masked_label = label.resize(sel_w).and(&mask);
                let m = self.algebra.constant(mask);
                let l = self.algebra.constant(masked_label);
                let masked_sel = self.algebra.binary(soccar_rtl::ast::BinaryOp::And, sel, &m);
                self.algebra
                    .binary(soccar_rtl::ast::BinaryOp::CaseEq, &masked_sel, &l)
            }
        }
    }

    /// Flattens an assignment of `value` to `lhs` into primitive writes.
    /// Dynamic indices are evaluated now (IEEE: at scheduling time).
    fn flatten_writes(&mut self, lhs: &LValue, value: A::Value) -> Vec<PrimWrite<A::Value>> {
        let total = lhs.width(self.design);
        let value = self.algebra.resize(&value, total);
        let mut out = Vec::new();
        self.flatten_into(lhs, &value, total, &mut out);
        out
    }

    fn flatten_into(
        &mut self,
        lhs: &LValue,
        value: &A::Value,
        hi_off: u32,
        out: &mut Vec<PrimWrite<A::Value>>,
    ) -> u32 {
        // Returns the offset *below* this lvalue after carving its bits
        // from `value` starting at `hi_off` (exclusive upper bound).
        match lhs {
            LValue::Concat(parts) => {
                let mut off = hi_off;
                for p in parts {
                    off = self.flatten_into(p, value, off, out);
                }
                off
            }
            _ => {
                let w = lhs.width(self.design);
                let lo_off = hi_off - w;
                let part = self.algebra.slice(value, lo_off, w);
                out.push(self.prim_write(lhs, part));
                lo_off
            }
        }
    }

    fn prim_write(&mut self, lhs: &LValue, value: A::Value) -> PrimWrite<A::Value> {
        match lhs {
            LValue::Net(net) => PrimWrite::Net {
                net: *net,
                lo: 0,
                width: self.design.net(*net).width,
                value,
            },
            LValue::Slice { net, lo, width } => PrimWrite::Net {
                net: *net,
                lo: *lo,
                width: *width,
                value,
            },
            LValue::IndexBit { net, index } => {
                let idx = self.eval(index);
                match self.algebra.concrete(&idx).to_u64() {
                    Some(i) => PrimWrite::Net {
                        net: *net,
                        lo: i as u32,
                        width: 1,
                        value,
                    },
                    None => PrimWrite::Dropped,
                }
            }
            LValue::DynSlice { net, start, width } => {
                let idx = self.eval(start);
                match self.algebra.concrete(&idx).to_u64() {
                    Some(i) => PrimWrite::Net {
                        net: *net,
                        lo: i as u32,
                        width: *width,
                        value,
                    },
                    None => PrimWrite::Dropped,
                }
            }
            LValue::MemWrite { mem, index } => {
                let idx = self.eval(index);
                match self.algebra.concrete(&idx).to_u64() {
                    Some(addr) => PrimWrite::Mem {
                        mem: *mem,
                        addr,
                        value,
                    },
                    None => PrimWrite::Dropped,
                }
            }
            LValue::Concat(_) => unreachable!("concat flattened by caller"),
        }
    }

    /// Evaluates an expression against the current state.
    pub fn eval(&mut self, e: &RExpr) -> A::Value {
        match e {
            RExpr::Const(c) => self.algebra.constant(c.clone()),
            RExpr::Net { net, .. } => self.nets[net.0 as usize].clone(),
            RExpr::Resize { width, expr } => {
                let v = self.eval(expr);
                self.algebra.resize(&v, *width)
            }
            RExpr::Unary { op, operand, .. } => {
                let v = self.eval(operand);
                self.algebra.unary(*op, &v)
            }
            RExpr::Binary { op, lhs, rhs, .. } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                self.algebra.binary(*op, &a, &b)
            }
            RExpr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let c = self.eval(cond);
                let t = self.eval(then_expr);
                let f = self.eval(else_expr);
                self.algebra.mux(&c, &t, &f)
            }
            RExpr::Concat { parts, .. } => {
                let mut vals: Vec<A::Value> = parts.iter().map(|p| self.eval(p)).collect();
                // parts are MSB first; fold from the LSB side.
                let mut acc = vals.pop().expect("concat is non-empty");
                while let Some(hi) = vals.pop() {
                    acc = self.algebra.concat(&hi, &acc);
                }
                acc
            }
            RExpr::Repeat { count, expr, .. } => {
                let v = self.eval(expr);
                let mut acc = v.clone();
                for _ in 1..*count {
                    acc = self.algebra.concat(&acc, &v);
                }
                acc
            }
            RExpr::Slice { net, lo, width } => {
                let v = self.nets[net.0 as usize].clone();
                self.algebra.slice(&v, *lo, *width)
            }
            RExpr::IndexBit { net, index } => {
                let v = self.nets[net.0 as usize].clone();
                let idx = self.eval(index);
                let shifted = self
                    .algebra
                    .binary(soccar_rtl::ast::BinaryOp::Shr, &v, &idx);
                self.algebra.slice(&shifted, 0, 1)
            }
            RExpr::DynSlice { net, start, width } => {
                let v = self.nets[net.0 as usize].clone();
                let idx = self.eval(start);
                let shifted = self
                    .algebra
                    .binary(soccar_rtl::ast::BinaryOp::Shr, &v, &idx);
                self.algebra.slice(&shifted, 0, *width)
            }
            RExpr::MemRead { mem, width, index } => {
                let idx = self.eval(index);
                let depth = self.design.memory(*mem).depth;
                match self.algebra.concrete(&idx).to_u64() {
                    Some(addr) if addr < u64::from(depth) => {
                        self.mems[mem.0 as usize][addr as usize].clone()
                    }
                    _ => self.algebra.constant(LogicVec::xes(*width)),
                }
            }
        }
    }
}

/// 4-state edge detection per IEEE 1364: a posedge is any transition that
/// ends higher than it started among `{0, X/Z, 1}`.
#[must_use]
pub fn edge_fired(edge: Edge, old: Bit, new: Bit) -> bool {
    let rank = |b: Bit| match b {
        Bit::Zero => 0u8,
        Bit::X | Bit::Z => 1,
        Bit::One => 2,
    };
    match edge {
        Edge::Pos => rank(new) > rank(old),
        Edge::Neg => rank(new) < rank(old),
    }
}

fn mask_of(label: &LogicVec, care: impl Fn(Bit) -> bool) -> LogicVec {
    let mut m = LogicVec::zeros(label.width());
    for (i, b) in label.iter_bits().enumerate() {
        if care(b) {
            m.set_bit(i as u32, Bit::One);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str, top: &str) -> soccar_rtl::Design {
        soccar_rtl::compile("t.v", src, top).expect("compile").0
    }

    fn net(d: &soccar_rtl::Design, name: &str) -> NetId {
        d.find_net(name).unwrap_or_else(|| panic!("no net {name}"))
    }

    #[test]
    fn combinational_settles() {
        let d = compile(
            "module t(input [3:0] a, b, output [3:0] y); assign y = a & b; endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.write_input(net(&d, "t.a"), LogicVec::from_u64(4, 0b1100))
            .expect("a");
        s.write_input(net(&d, "t.b"), LogicVec::from_u64(4, 0b1010))
            .expect("b");
        s.settle().expect("settle");
        assert_eq!(s.net_logic(net(&d, "t.y")).to_u64(), Some(0b1000));
    }

    #[test]
    fn counter_counts_and_resets_asynchronously() {
        let d = compile(
            "module t(input clk, rst_n, output reg [3:0] q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 4'd0; else q <= q + 4'd1;
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::Ones);
        let clk = net(&d, "t.clk");
        let rst = net(&d, "t.rst_n");
        let q = net(&d, "t.q");
        s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        s.write_input(rst, LogicVec::from_u64(1, 1)).expect("rst");
        s.settle().expect("settle");
        // Ones policy: counter starts at 15.
        assert_eq!(s.net_logic(q).to_u64(), Some(15));
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(q).to_u64(), Some(0)); // wrapped
        s.tick(clk).expect("tick");
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(q).to_u64(), Some(2));
        // Async reset while the clock is idle.
        s.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
        s.settle().expect("settle");
        assert_eq!(s.net_logic(q).to_u64(), Some(0));
        // Held in reset: clocking does not count.
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(q).to_u64(), Some(0));
        s.write_input(rst, LogicVec::from_u64(1, 1)).expect("rst");
        s.settle().expect("settle");
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(q).to_u64(), Some(1));
    }

    #[test]
    fn nonblocking_semantics_swap() {
        let d = compile(
            "module t(input clk, output reg [3:0] a, b);
               initial begin a = 4'd1; b = 4'd2; end
               always @(posedge clk) begin a <= b; b <= a; end
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        let clk = net(&d, "t.clk");
        s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        s.settle().expect("settle");
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(net(&d, "t.a")).to_u64(), Some(2));
        assert_eq!(s.net_logic(net(&d, "t.b")).to_u64(), Some(1));
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(net(&d, "t.a")).to_u64(), Some(1));
        assert_eq!(s.net_logic(net(&d, "t.b")).to_u64(), Some(2));
    }

    #[test]
    fn blocking_chains_within_process() {
        let d = compile(
            "module t(input clk, input [3:0] d, output reg [3:0] y);
               reg [3:0] tmp;
               always @(posedge clk) begin tmp = d + 4'd1; y = tmp + 4'd1; end
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
        let clk = net(&d, "t.clk");
        s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        s.write_input(net(&d, "t.d"), LogicVec::from_u64(4, 3))
            .expect("d");
        s.settle().expect("settle");
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(net(&d, "t.y")).to_u64(), Some(5));
    }

    #[test]
    fn memory_read_write() {
        let d = compile(
            "module t(input clk, we, input [3:0] addr, input [7:0] wd, output reg [7:0] rd);
               reg [7:0] mem [0:15];
               always @(posedge clk) begin
                 if (we) mem[addr] <= wd;
                 rd <= mem[addr];
               end
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
        let clk = net(&d, "t.clk");
        for (n, v, w) in [("t.we", 1u64, 1u32), ("t.addr", 5, 4), ("t.wd", 0xAB, 8)] {
            s.write_input(net(&d, n), LogicVec::from_u64(w, v))
                .expect("in");
        }
        s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        s.settle().expect("settle");
        s.tick(clk).expect("tick");
        // NBA ordering: rd sampled old value (0), mem updated.
        assert_eq!(s.net_logic(net(&d, "t.rd")).to_u64(), Some(0));
        let mem = d.find_memory("t.mem").expect("mem");
        assert_eq!(s.mem_logic(mem, 5).to_u64(), Some(0xAB));
        s.write_input(net(&d, "t.we"), LogicVec::from_u64(1, 0))
            .expect("we");
        s.settle().expect("settle");
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(net(&d, "t.rd")).to_u64(), Some(0xAB));
    }

    #[test]
    fn hierarchical_design_simulates() {
        let d = compile(
            "module half_adder(input a, b, output s, c);
               assign s = a ^ b; assign c = a & b;
             endmodule
             module t(input [1:0] x, output [1:0] out);
               half_adder u (.a(x[0]), .b(x[1]), .s(out[0]), .c(out[1]));
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.write_input(net(&d, "t.x"), LogicVec::from_u64(2, 0b11))
            .expect("x");
        s.settle().expect("settle");
        assert_eq!(s.net_logic(net(&d, "t.out")).to_u64(), Some(0b10));
    }

    #[test]
    fn for_loop_executes() {
        let d = compile(
            "module t(input clk, output reg [7:0] sum);
               integer i;
               always @(posedge clk) begin
                 sum = 8'd0;
                 for (i = 0; i < 5; i = i + 1) sum = sum + 8'd2;
               end
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
        let clk = net(&d, "t.clk");
        s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        s.settle().expect("settle");
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(net(&d, "t.sum")).to_u64(), Some(10));
    }

    #[test]
    fn case_dispatch_with_wildcards() {
        let d = compile(
            "module t(input [3:0] s, output reg [1:0] y);
               always @* casez (s)
                 4'b1???: y = 2'd3;
                 4'b01??: y = 2'd2;
                 4'b001?: y = 2'd1;
                 default: y = 2'd0;
               endcase
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        let sn = net(&d, "t.s");
        let y = net(&d, "t.y");
        for (input, expect) in [(0b1000u64, 3u64), (0b0101, 2), (0b0011, 1), (0b0001, 0)] {
            s.write_input(sn, LogicVec::from_u64(4, input)).expect("s");
            s.settle().expect("settle");
            assert_eq!(s.net_logic(y).to_u64(), Some(expect), "input {input:b}");
        }
    }

    #[test]
    fn x_propagates_through_uninitialized_register() {
        let d = compile(
            "module t(input clk, input [3:0] d, output reg [3:0] q, output [3:0] y);
               always @(posedge clk) q <= d;
               assign y = q + 4'd1;
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.write_input(net(&d, "t.clk"), LogicVec::from_u64(1, 0))
            .expect("clk");
        s.settle().expect("settle");
        assert!(s.net_logic(net(&d, "t.y")).is_all_x());
    }

    #[test]
    fn ones_policy_reveals_missing_clear() {
        // A "register clearance" scenario: with ones-init, a register that
        // the reset fails to clear still reads ones after reset.
        let d = compile(
            "module t(input clk, rst_n, output reg [7:0] key, output reg [7:0] ctr);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) ctr <= 8'd0;   // BUG: key not cleared
                 else begin ctr <= ctr + 8'd1; key <= key; end
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::Ones);
        let rst = net(&d, "t.rst_n");
        s.write_input(net(&d, "t.clk"), LogicVec::from_u64(1, 0))
            .expect("clk");
        s.write_input(rst, LogicVec::from_u64(1, 1)).expect("rst");
        s.settle().expect("settle");
        s.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
        s.settle().expect("settle");
        assert_eq!(s.net_logic(net(&d, "t.ctr")).to_u64(), Some(0));
        assert!(s.net_logic(net(&d, "t.key")).is_all_ones(), "leak visible");
    }

    #[test]
    fn part_select_assignment() {
        let d = compile(
            "module t(input [7:0] d, output reg [7:0] q);
               always @* begin q = 8'd0; q[7:4] = d[3:0]; end
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.write_input(net(&d, "t.d"), LogicVec::from_u64(8, 0x0A))
            .expect("d");
        s.settle().expect("settle");
        assert_eq!(s.net_logic(net(&d, "t.q")).to_u64(), Some(0xA0));
    }

    #[test]
    fn concat_lvalue_distributes_msb_first() {
        let d = compile(
            "module t(input [3:0] a, b, output reg c, output reg [3:0] s);
               always @* {c, s} = a + b;
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.write_input(net(&d, "t.a"), LogicVec::from_u64(4, 9))
            .expect("a");
        s.write_input(net(&d, "t.b"), LogicVec::from_u64(4, 8))
            .expect("b");
        s.settle().expect("settle");
        assert_eq!(s.net_logic(net(&d, "t.c")).to_u64(), Some(1));
        assert_eq!(s.net_logic(net(&d, "t.s")).to_u64(), Some(1));
    }

    #[test]
    fn dynamic_bit_select_read_write() {
        let d = compile(
            "module t(input [2:0] idx, input [7:0] d, output y, output reg [7:0] q);
               assign y = d[idx];
               always @* begin q = 8'd0; q[idx] = 1'b1; end
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.write_input(net(&d, "t.d"), LogicVec::from_u64(8, 0b0100_0000))
            .expect("d");
        s.write_input(net(&d, "t.idx"), LogicVec::from_u64(3, 6))
            .expect("idx");
        s.settle().expect("settle");
        assert_eq!(s.net_logic(net(&d, "t.y")).to_u64(), Some(1));
        assert_eq!(s.net_logic(net(&d, "t.q")).to_u64(), Some(0b0100_0000));
    }

    #[test]
    fn not_an_input_rejected() {
        let d = compile("module t(input a, output y); assign y = a; endmodule", "t");
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        let y = net(&d, "t.y");
        assert_eq!(
            s.write_input(y, LogicVec::from_u64(1, 1)),
            Err(SimError::NotAnInput { net: y })
        );
        let a = net(&d, "t.a");
        assert!(matches!(
            s.write_input(a, LogicVec::from_u64(2, 1)),
            Err(SimError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn combinational_loop_detected() {
        // Pure X feedback reaches a fixed point; to oscillate, the loop must
        // carry *known* values. Seed p with 0 (s=0), then close the loop.
        let d = compile(
            "module t(input s, output y);
               wire p;
               assign p = s ? ~p : 1'b0;
               assign y = p;
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.write_input(net(&d, "t.s"), LogicVec::from_u64(1, 0))
            .expect("s");
        s.settle().expect("settle with loop open");
        assert_eq!(s.net_logic(net(&d, "t.y")).to_u64(), Some(0));
        s.write_input(net(&d, "t.s"), LogicVec::from_u64(1, 1))
            .expect("s");
        let r = s.settle();
        assert!(matches!(r, Err(SimError::Unstable { .. })), "got {r:?}");
    }

    #[test]
    fn edge_table() {
        use Bit::*;
        assert!(edge_fired(Edge::Pos, Zero, One));
        assert!(edge_fired(Edge::Pos, Zero, X));
        assert!(edge_fired(Edge::Pos, X, One));
        assert!(!edge_fired(Edge::Pos, One, Zero));
        assert!(!edge_fired(Edge::Pos, One, One));
        assert!(edge_fired(Edge::Neg, One, Zero));
        assert!(edge_fired(Edge::Neg, One, Z));
        assert!(edge_fired(Edge::Neg, X, Zero));
        assert!(!edge_fired(Edge::Neg, Zero, One));
    }

    #[test]
    fn tracing_records_changes() {
        let d = compile("module t(input a, output y); assign y = ~a; endmodule", "t");
        let mut s = Simulator::concrete(&d, InitPolicy::X);
        s.enable_tracing();
        s.write_input(net(&d, "t.a"), LogicVec::from_u64(1, 0))
            .expect("a");
        s.settle().expect("settle");
        assert!(s.trace().iter().any(|e| e.net == net(&d, "t.y")));
    }

    #[test]
    fn initial_blocks_preload_memory() {
        let d = compile(
            "module t(input clk, input [1:0] addr, output reg [7:0] q);
               reg [7:0] rom [0:3];
               integer i;
               initial for (i = 0; i < 4; i = i + 1) rom[i] = 8'd10 + i[7:0];
               always @(posedge clk) q <= rom[addr];
             endmodule",
            "t",
        );
        let mut s = Simulator::concrete(&d, InitPolicy::Zeros);
        let clk = net(&d, "t.clk");
        s.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        s.write_input(net(&d, "t.addr"), LogicVec::from_u64(2, 2))
            .expect("addr");
        s.settle().expect("settle");
        s.tick(clk).expect("tick");
        assert_eq!(s.net_logic(net(&d, "t.q")).to_u64(), Some(12));
    }
}
