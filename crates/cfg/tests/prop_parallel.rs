//! Property test: parallel AR_CFG extraction is indistinguishable from
//! serial extraction. For random small module sets — mixed reset
//! polarities, widths, scrubbed and unscrubbed arms, reset-free blocks —
//! `extract_all_jobs` at any worker count must return exactly the
//! per-module CFG/AR_CFG pairs (same events, same edges, same order)
//! that the serial path produces.

use proptest::prelude::*;
use soccar_cfg::{extract_all, extract_all_jobs, GovernorAnalysis, ResetNaming};
use soccar_rtl::parser::parse;
use soccar_rtl::span::FileId;

/// Renders one random module from `seed`'s bits: reset polarity, data
/// width, register count, whether the reset arm scrubs, and whether an
/// extra reset-free always block rides along (it must never reach the
/// AR projection).
fn module_source(index: usize, seed: u64) -> String {
    let active_low = seed & 1 != 0;
    let scrub = seed & 2 != 0;
    let width = 1 + (seed >> 2) % 8;
    let regs = 1 + (seed >> 5) % 3;
    let plain_block = seed & (1 << 7) != 0;

    let (rst, edge, test) = if active_low {
        ("rst_n", "negedge rst_n", "!rst_n")
    } else {
        ("rst", "posedge rst", "rst")
    };
    let top = width - 1;
    let mut src = format!("module m{index}(input clk, input {rst}, input [{top}:0] d");
    for r in 0..regs {
        src.push_str(&format!(", output reg [{top}:0] q{r}"));
    }
    src.push_str(");\n");
    for r in 0..regs {
        let cleared = if scrub {
            format!("{width}'d0")
        } else {
            format!("q{r}") // unscrubbed: holds its value through reset
        };
        src.push_str(&format!(
            "  always @(posedge clk or {edge})\n    if ({test}) q{r} <= {cleared}; else q{r} <= d;\n"
        ));
    }
    if plain_block {
        src.push_str("  reg [3:0] free;\n  always @(posedge clk) free <= free + 4'd1;\n");
    }
    src.push_str("endmodule\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_extraction_matches_serial(
        seeds in proptest::collection::vec(0u64..1u64 << 32, 1..7),
        jobs in 2usize..9,
    ) {
        let src: String = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| module_source(i, *s))
            .collect();
        let unit = parse(FileId(0), &src).expect("generated module set parses");
        let naming = ResetNaming::new();

        for analysis in [GovernorAnalysis::Explicit, GovernorAnalysis::Refined] {
            let serial = extract_all(&unit, &naming, analysis);
            let (parallel, stats) = extract_all_jobs(&unit, &naming, analysis, jobs);
            prop_assert_eq!(&serial, &parallel);
            prop_assert_eq!(stats.tasks, unit.modules.len());
            // Module order tracks source order for every job count.
            for (i, (cfg, ar)) in parallel.iter().enumerate() {
                prop_assert_eq!(&cfg.module, &format!("m{i}"));
                prop_assert_eq!(&ar.module, &cfg.module);
            }
        }
    }
}
