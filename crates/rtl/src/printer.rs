//! Verilog pretty-printer: AST → source text.
//!
//! The inverse of [`crate::parser::parse`] up to formatting: for every
//! tree the parser produces, `parse(print(tree))` yields an equal tree
//! (checked by the round-trip tests in `tests/` and a property test over
//! the generated benchmark SoCs). Useful for emitting mutated designs,
//! dumping elaboration inputs for external tools, and debugging.

use std::fmt::Write as _;

use crate::ast::*;
use crate::value::{Bit, LogicVec};

/// Prints a full source unit.
#[must_use]
pub fn print_unit(unit: &SourceUnit) -> String {
    let mut out = String::new();
    for m in &unit.modules {
        out.push_str(&print_module(m));
        out.push('\n');
    }
    out
}

/// Prints one module definition.
#[must_use]
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = write!(out, "module {}", m.name);
    if !m.params.is_empty() {
        let ps: Vec<String> = m
            .params
            .iter()
            .map(|p| format!("parameter {} = {}", p.name, print_expr(&p.value)))
            .collect();
        let _ = write!(out, " #({})", ps.join(", "));
    }
    if m.ports.is_empty() {
        out.push_str("();\n");
    } else {
        out.push_str("(\n");
        let ports: Vec<String> = m.ports.iter().map(print_port).collect();
        out.push_str(&ports.join(",\n"));
        out.push_str("\n);\n");
    }
    for item in &m.items {
        out.push_str(&print_item(item, 1));
    }
    out.push_str("endmodule\n");
    out
}

fn indent(level: usize) -> String {
    "  ".repeat(level)
}

fn print_port(p: &Port) -> String {
    let mut s = format!("  {}", p.dir);
    if p.kind == NetKind::Reg {
        s.push_str(" reg");
    } else {
        s.push_str(" wire");
    }
    if let Some(r) = &p.range {
        let _ = write!(s, " [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb));
    }
    let _ = write!(s, " {}", p.name);
    s
}

fn print_item(item: &Item, level: usize) -> String {
    let ind = indent(level);
    match item {
        Item::Net(d) => {
            let mut s = format!("{ind}{}", d.kind);
            if let Some(r) = &d.range {
                let _ = write!(s, " [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb));
            }
            let names: Vec<String> = d
                .names
                .iter()
                .map(|n| {
                    let mut t = n.name.clone();
                    if let Some(a) = &n.array {
                        let _ = write!(t, " [{}:{}]", print_expr(&a.msb), print_expr(&a.lsb));
                    }
                    if let Some(init) = &n.init {
                        let _ = write!(t, " = {}", print_expr(init));
                    }
                    t
                })
                .collect();
            format!("{s} {};\n", names.join(", "))
        }
        Item::Param(p) => {
            let kw = if p.local { "localparam" } else { "parameter" };
            format!("{ind}{kw} {} = {};\n", p.name, print_expr(&p.value))
        }
        Item::Assign { lhs, rhs, .. } => {
            format!("{ind}assign {} = {};\n", print_expr(lhs), print_expr(rhs))
        }
        Item::Always(a) => {
            let sens = match &a.sensitivity {
                Sensitivity::Star => "*".to_owned(),
                Sensitivity::List(items) => {
                    let parts: Vec<String> = items
                        .iter()
                        .map(|i| match i.edge {
                            Some(e) => format!("{e} {}", i.signal),
                            None => i.signal.clone(),
                        })
                        .collect();
                    format!("({})", parts.join(" or "))
                }
            };
            format!("{ind}always @{sens}\n{}", print_stmt(&a.body, level + 1))
        }
        Item::Initial { body, .. } => {
            format!("{ind}initial\n{}", print_stmt(body, level + 1))
        }
        Item::Instance(i) => {
            let mut s = format!("{ind}{} ", i.module);
            if !i.params.is_empty() {
                let ps: Vec<String> = i
                    .params
                    .iter()
                    .map(|c| {
                        format!(
                            ".{}({})",
                            c.port,
                            c.expr.as_ref().map(print_expr).unwrap_or_default()
                        )
                    })
                    .collect();
                let _ = write!(s, "#({}) ", ps.join(", "));
            }
            let conns: Vec<String> = i
                .conns
                .iter()
                .map(|c| {
                    format!(
                        ".{}({})",
                        c.port,
                        c.expr.as_ref().map(print_expr).unwrap_or_default()
                    )
                })
                .collect();
            let _ = writeln!(s, "{} ({});", i.name, conns.join(", "));
            s
        }
    }
}

/// Prints a statement at the given indentation level.
#[must_use]
pub fn print_stmt(stmt: &Stmt, level: usize) -> String {
    let ind = indent(level);
    match stmt {
        Stmt::Block { stmts, .. } => {
            let mut s = format!("{}begin\n", indent(level.saturating_sub(1)));
            for st in stmts {
                s.push_str(&print_stmt(st, level));
            }
            let _ = writeln!(s, "{}end", indent(level.saturating_sub(1)));
            s
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => {
            let mut s = format!("{ind}if ({})\n", print_expr(cond));
            s.push_str(&print_stmt(then_stmt, level + 1));
            if let Some(e) = else_stmt {
                let _ = writeln!(s, "{ind}else");
                s.push_str(&print_stmt(e, level + 1));
            }
            s
        }
        Stmt::Case {
            kind,
            selector,
            arms,
            ..
        } => {
            let kw = match kind {
                CaseKind::Case => "case",
                CaseKind::Casez => "casez",
                CaseKind::Casex => "casex",
            };
            let mut s = format!("{ind}{kw} ({})\n", print_expr(selector));
            for arm in arms {
                if arm.labels.is_empty() {
                    let _ = writeln!(s, "{ind}  default:");
                } else {
                    let labels: Vec<String> = arm.labels.iter().map(print_expr).collect();
                    let _ = writeln!(s, "{ind}  {}:", labels.join(", "));
                }
                s.push_str(&print_stmt(&arm.body, level + 2));
            }
            let _ = writeln!(s, "{ind}endcase");
            s
        }
        Stmt::Blocking { lhs, rhs, .. } => {
            format!("{ind}{} = {};\n", print_expr(lhs), print_expr(rhs))
        }
        Stmt::NonBlocking { lhs, rhs, .. } => {
            format!("{ind}{} <= {};\n", print_expr(lhs), print_expr(rhs))
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
            ..
        } => {
            let mut s = format!(
                "{ind}for ({var} = {}; {}; {var} = {})\n",
                print_expr(init),
                print_expr(cond),
                print_expr(step)
            );
            s.push_str(&print_stmt(body, level + 1));
            s
        }
        Stmt::Null { .. } => format!("{ind};\n"),
    }
}

fn print_literal(v: &LogicVec) -> String {
    // Binary form is lossless for 4-state values.
    let mut bits = String::new();
    for i in (0..v.width()).rev() {
        let c = match v.bit(i) {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'x',
            Bit::Z => 'z',
        };
        bits.push(c);
    }
    format!("{}'b{bits}", v.width())
}

/// Prints an expression (fully parenthesized: correctness over beauty).
#[must_use]
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Number { value, .. } => print_literal(value),
        Expr::Ident { name, .. } => name.clone(),
        Expr::Unary { op, operand, .. } => {
            let sym = match op {
                UnaryOp::Not => "~",
                UnaryOp::LogicalNot => "!",
                UnaryOp::Neg => "-",
                UnaryOp::Plus => "+",
                UnaryOp::RedAnd => "&",
                UnaryOp::RedOr => "|",
                UnaryOp::RedXor => "^",
                UnaryOp::RedNand => "~&",
                UnaryOp::RedNor => "~|",
                UnaryOp::RedXnor => "~^",
            };
            format!("({sym}{})", print_expr(operand))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let sym = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Mod => "%",
                BinaryOp::Pow => "**",
                BinaryOp::And => "&",
                BinaryOp::Or => "|",
                BinaryOp::Xor => "^",
                BinaryOp::Xnor => "~^",
                BinaryOp::LogicalAnd => "&&",
                BinaryOp::LogicalOr => "||",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
                BinaryOp::CaseEq => "===",
                BinaryOp::CaseNe => "!==",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::AShr => ">>>",
            };
            format!("({} {sym} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => format!(
            "({} ? {} : {})",
            print_expr(cond),
            print_expr(then_expr),
            print_expr(else_expr)
        ),
        Expr::Concat { parts, .. } => {
            let ps: Vec<String> = parts.iter().map(print_expr).collect();
            format!("{{{}}}", ps.join(", "))
        }
        Expr::Repeat { count, expr, .. } => {
            format!("{{{}{{{}}}}}", print_expr(count), print_expr(expr))
        }
        Expr::Index { base, index, .. } => format!("{base}[{}]", print_expr(index)),
        Expr::PartSelect { base, msb, lsb, .. } => {
            format!("{base}[{}:{}]", print_expr(msb), print_expr(lsb))
        }
        Expr::IndexedPartSelect {
            base,
            start,
            width,
            ascending,
            ..
        } => format!(
            "{base}[{} {}: {}]",
            print_expr(start),
            if *ascending { "+" } else { "-" },
            print_expr(width)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::span::FileId;

    /// Structural equality modulo spans and literal `sized` flags: compare
    /// the printed forms of two parses.
    fn roundtrip(src: &str) {
        let unit1 = parse(FileId(0), src).expect("first parse");
        let printed = print_unit(&unit1);
        let unit2 = parse(FileId(0), &printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        let printed2 = print_unit(&unit2);
        assert_eq!(printed, printed2, "printing must be a fixed point");
        assert_eq!(unit1.modules.len(), unit2.modules.len());
    }

    #[test]
    fn roundtrips_basic_constructs() {
        roundtrip(
            "module m #(parameter W = 8)(input clk, input rst_n, input [W-1:0] d,
                        output reg [W-1:0] q, output wire y);
               localparam ZERO = 0;
               wire [W-1:0] t;
               reg [7:0] mem [0:15];
               integer i;
               assign t = d ^ {W{1'b1}};
               assign y = t[0];
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= {W{1'b0}};
                 else begin
                   q <= q + d;
                   for (i = 0; i < 4; i = i + 1) mem[i] <= d[7:0];
                 end
               always @* begin
                 casez (d[3:0])
                   4'b1???: q[0] = 1'b1;
                   4'd2, 4'd3: q[0] = 1'b0;
                   default: ;
                 endcase
               end
             endmodule",
        );
    }

    #[test]
    fn roundtrips_instances_and_selects() {
        roundtrip(
            "module leaf(input [7:0] a, output [7:0] y);
               assign y = a[3:0] + a[7 -: 4] + {2{a[1 +: 2]}};
             endmodule
             module top(input [7:0] a, output [7:0] y);
               leaf #(.X(2)) u (.a(a), .y(y));
             endmodule",
        );
    }

    #[test]
    fn roundtrips_four_state_literals() {
        roundtrip(
            "module m(input [3:0] s, output reg q);
               always @* q = (s === 4'b1x0z) ? 1'bx : 1'b0;
             endmodule",
        );
    }

    #[test]
    fn roundtrips_soc_style_module() {
        // A condensed slice of the benchmark-SoC idioms (the full SoCs are
        // round-tripped in the workspace integration tests, where the
        // generator crate is available).
        roundtrip(
            "module engine(input clk, input rst_n, input start,
                           input [63:0] key_in, output reg [63:0] ct_out,
                           output leak_obs);
               reg [191:0] key_reg;
               reg [1:0] fsm;
               localparam IDLE = 2'd0;
               assign leak_obs = (ct_out == key_in) & (|key_in) & ~(&key_in);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) begin
                   fsm <= IDLE;
                   key_reg <= 192'd0;
                 end else begin
                   case (fsm)
                     IDLE: if (start) begin
                       key_reg <= {key_reg[127:0], key_in};
                       fsm <= 2'd1;
                     end
                     2'd1: begin
                       ct_out <= ({ct_out[55:0], ct_out[63:56]} ^ key_reg[63:0])
                               + 64'h9E3779B97F4A7C15;
                       fsm <= IDLE;
                     end
                     default: fsm <= IDLE;
                   endcase
                 end
               always @(negedge rst_n)
                 if (clk) ct_out <= key_reg[63:0];
             endmodule",
        );
    }
}
