//! AXI4-Lite system fabric and AXI→Wishbone bridge (AutoSoC only).
//!
//! AutoSoC's system bus "implements a variation of AMBA bus protocol i.e.,
//! AXI4-Lite, and the subsystems incorporate their own Wishbone (B3) bus"
//! connected through bus bridges (Section V-A). The interconnect here is a
//! single-outstanding-transaction AXI4-Lite switch; the bridge converts a
//! completed AXI transaction into one Wishbone strobe.

/// Generates an AXI4-Lite interconnect named `name` with `masters` master
/// ports and `slaves` slave ports; the top address nibble selects the
/// slave.
///
/// # Panics
///
/// Panics unless `1 <= masters <= 4` and `1 <= slaves <= 8`.
#[must_use]
pub fn axi_interconnect(name: &str, masters: u32, slaves: u32) -> String {
    assert!((1..=4).contains(&masters));
    assert!((1..=8).contains(&slaves));
    let mut ports = String::new();
    for m in 0..masters {
        ports.push_str(&format!(
            "  input m{m}_awvalid,\n  input [31:0] m{m}_awaddr,\n  input [31:0] m{m}_wdata,\n  \
             output reg m{m}_bvalid,\n  input m{m}_arvalid,\n  input [31:0] m{m}_araddr,\n  \
             output reg [31:0] m{m}_rdata,\n  output reg m{m}_rvalid,\n"
        ));
    }
    for s in 0..slaves {
        ports.push_str(&format!(
            "  output reg s{s}_awvalid,\n  output reg [31:0] s{s}_awaddr,\n  \
             output reg [31:0] s{s}_wdata,\n  input s{s}_bvalid,\n  \
             output reg s{s}_arvalid,\n  output reg [31:0] s{s}_araddr,\n  \
             input [31:0] s{s}_rdata,\n  input s{s}_rvalid,\n"
        ));
    }
    let mut grant = String::from("  always @* begin\n    grant = 3'd7;\n");
    for m in (0..masters).rev() {
        grant.push_str(&format!(
            "    if (m{m}_awvalid | m{m}_arvalid) grant = 3'd{m};\n"
        ));
    }
    grant.push_str("  end\n");

    let gm = |field: &str, default: &str| {
        let mut s = format!("  always @* begin\n    g_{field} = {default};\n");
        for m in 0..masters {
            s.push_str(&format!(
                "    if (grant == 3'd{m}) g_{field} = m{m}_{field};\n"
            ));
        }
        s.push_str("  end\n");
        s
    };

    let mut route = String::from("  always @* begin\n");
    for s in 0..slaves {
        route.push_str(&format!(
            "    s{s}_awvalid = 1'b0;\n    s{s}_awaddr = g_awaddr;\n    \
             s{s}_wdata = g_wdata;\n    s{s}_arvalid = 1'b0;\n    s{s}_araddr = g_araddr;\n"
        ));
    }
    route.push_str("    sel_bvalid = 1'b0;\n    sel_rvalid = 1'b0;\n    sel_rdata = 32'd0;\n");
    for s in 0..slaves {
        route.push_str(&format!(
            "    if (g_awvalid & (g_awaddr[31:28] == 4'd{s})) begin\n      \
             s{s}_awvalid = 1'b1;\n      sel_bvalid = s{s}_bvalid;\n    end\n    \
             if (g_arvalid & (g_araddr[31:28] == 4'd{s})) begin\n      \
             s{s}_arvalid = 1'b1;\n      sel_rvalid = s{s}_rvalid;\n      \
             sel_rdata = s{s}_rdata;\n    end\n"
        ));
    }
    route.push_str("  end\n");

    let mut back = String::from("  always @* begin\n");
    for m in 0..masters {
        back.push_str(&format!(
            "    m{m}_bvalid = 1'b0;\n    m{m}_rvalid = 1'b0;\n    m{m}_rdata = 32'd0;\n"
        ));
    }
    for m in 0..masters {
        back.push_str(&format!(
            "    if (grant == 3'd{m}) begin\n      m{m}_bvalid = sel_bvalid;\n      \
             m{m}_rvalid = sel_rvalid;\n      m{m}_rdata = sel_rdata;\n    end\n"
        ));
    }
    back.push_str("  end\n");

    format!(
        "module {name}(
  input clk,
  input rst_n,
{ports}  output reg [7:0] xact_count
);
  reg [2:0] grant;
  reg g_awvalid;
  reg [31:0] g_awaddr;
  reg [31:0] g_wdata;
  reg g_arvalid;
  reg [31:0] g_araddr;
  reg sel_bvalid;
  reg sel_rvalid;
  reg [31:0] sel_rdata;

{grant}{gaw}{gawaddr}{gwdata}{gar}{garaddr}{route}{back}
  always @(posedge clk or negedge rst_n)
    if (!rst_n) xact_count <= 8'd0;
    else if (sel_bvalid | sel_rvalid) xact_count <= xact_count + 8'd1;
endmodule
",
        gaw = gm("awvalid", "1'b0"),
        gawaddr = gm("awaddr", "32'd0"),
        gwdata = gm("wdata", "32'd0"),
        gar = gm("arvalid", "1'b0"),
        garaddr = gm("araddr", "32'd0"),
    )
}

/// AXI4-Lite slave → Wishbone master bridge.
#[must_use]
pub fn axi2wb_bridge() -> String {
    "module axi2wb_bridge(
  input clk,
  input rst_n,
  // AXI4-Lite slave side.
  input awvalid,
  input [31:0] awaddr,
  input [31:0] wdata,
  output reg bvalid,
  input arvalid,
  input [31:0] araddr,
  output reg [31:0] rdata,
  output reg rvalid,
  // Wishbone master side.
  output reg [31:0] wb_addr,
  output reg [31:0] wb_wdata,
  input [31:0] wb_rdata,
  output reg wb_we,
  output reg wb_stb,
  input wb_ack
);
  localparam IDLE = 2'd0;
  localparam WRITE = 2'd1;
  localparam READ = 2'd2;
  reg [1:0] state;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      state <= IDLE;
      bvalid <= 1'b0;
      rvalid <= 1'b0;
      rdata <= 32'd0;
      wb_addr <= 32'd0;
      wb_wdata <= 32'd0;
      wb_we <= 1'b0;
      wb_stb <= 1'b0;
    end else begin
      bvalid <= 1'b0;
      rvalid <= 1'b0;
      case (state)
        IDLE: begin
          wb_stb <= 1'b0;
          wb_we <= 1'b0;
          if (awvalid) begin
            wb_addr <= awaddr;
            wb_wdata <= wdata;
            wb_we <= 1'b1;
            wb_stb <= 1'b1;
            state <= WRITE;
          end else if (arvalid) begin
            wb_addr <= araddr;
            wb_we <= 1'b0;
            wb_stb <= 1'b1;
            state <= READ;
          end
        end
        WRITE: if (wb_ack) begin
          wb_stb <= 1'b0;
          wb_we <= 1'b0;
          bvalid <= 1'b1;
          state <= IDLE;
        end
        READ: if (wb_ack) begin
          wb_stb <= 1'b0;
          rdata <= wb_rdata;
          rvalid <= 1'b1;
          state <= IDLE;
        end
        default: state <= IDLE;
      endcase
    end
endmodule
"
    .to_owned()
}

/// Wishbone slave → AXI4-Lite master shim (lets a Wishbone master — e.g.
/// a CPU-subsystem fabric port — originate AXI transactions).
#[must_use]
pub fn wb2axi_shim() -> String {
    "module wb2axi_shim(
  input clk,
  input rst_n,
  // Wishbone slave side.
  input [31:0] wb_addr,
  input [31:0] wb_wdata,
  output reg [31:0] wb_rdata,
  input wb_we,
  input wb_stb,
  output reg wb_ack,
  // AXI4-Lite master side.
  output reg awvalid,
  output reg [31:0] awaddr,
  output reg [31:0] wdata,
  input bvalid,
  output reg arvalid,
  output reg [31:0] araddr,
  input [31:0] rdata,
  input rvalid
);
  localparam IDLE = 2'd0;
  localparam WR = 2'd1;
  localparam RD = 2'd2;
  reg [1:0] st;

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      st <= IDLE;
      awvalid <= 1'b0;
      arvalid <= 1'b0;
      wb_ack <= 1'b0;
      awaddr <= 32'd0;
      araddr <= 32'd0;
      wdata <= 32'd0;
      wb_rdata <= 32'd0;
    end else begin
      wb_ack <= 1'b0;
      case (st)
        IDLE: if (wb_stb) begin
          if (wb_we) begin
            awvalid <= 1'b1;
            awaddr <= wb_addr;
            wdata <= wb_wdata;
            st <= WR;
          end else begin
            arvalid <= 1'b1;
            araddr <= wb_addr;
            st <= RD;
          end
        end
        WR: if (bvalid) begin
          awvalid <= 1'b0;
          wb_ack <= 1'b1;
          st <= IDLE;
        end
        RD: if (rvalid) begin
          arvalid <= 1'b0;
          wb_rdata <= rdata;
          wb_ack <= 1'b1;
          st <= IDLE;
        end
        default: st <= IDLE;
      endcase
    end
endmodule
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    #[test]
    fn interconnect_compiles_various_shapes() {
        for (m, s) in [(1, 1), (3, 5), (4, 8)] {
            let src = axi_interconnect("axi", m, s);
            soccar_rtl::compile("axi.v", &src, "axi").unwrap_or_else(|e| panic!("{m}x{s}: {e}"));
        }
    }

    #[test]
    fn interconnect_routes_by_address_nibble() {
        let src = axi_interconnect("axi", 2, 3);
        let d = soccar_rtl::compile("axi.v", &src, "axi")
            .expect("compile")
            .0;
        let mut sim = Simulator::concrete(&d, InitPolicy::Zeros);
        let n = |s: &str| d.find_net(&format!("axi.{s}")).expect("net");
        for net in d.top_inputs().collect::<Vec<_>>() {
            let w = d.net(net).width;
            sim.write_input(net, LogicVec::zeros(w)).expect("zero");
        }
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.write_input(n("m1_awvalid"), LogicVec::from_u64(1, 1))
            .expect("aw");
        sim.write_input(n("m1_awaddr"), LogicVec::from_u64(32, 0x2000_0010))
            .expect("addr");
        sim.write_input(n("m1_wdata"), LogicVec::from_u64(32, 0x99))
            .expect("wd");
        sim.write_input(n("s2_bvalid"), LogicVec::from_u64(1, 1))
            .expect("bv");
        sim.settle().expect("settle");
        assert_eq!(sim.net_logic(n("s2_awvalid")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("s2_wdata")).to_u64(), Some(0x99));
        assert_eq!(sim.net_logic(n("m1_bvalid")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("s0_awvalid")).to_u64(), Some(0));
    }

    #[test]
    fn bridge_converts_write_and_read() {
        let d = soccar_rtl::compile("b.v", &axi2wb_bridge(), "axi2wb_bridge")
            .expect("compile")
            .0;
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("axi2wb_bridge.{s}")).expect("net");
        let clk = n("clk");
        for net in d.top_inputs().collect::<Vec<_>>() {
            let w = d.net(net).width;
            sim.write_input(net, LogicVec::zeros(w)).expect("zero");
        }
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        // Write transaction.
        sim.write_input(n("awvalid"), LogicVec::from_u64(1, 1))
            .expect("aw");
        sim.write_input(n("awaddr"), LogicVec::from_u64(32, 0x44))
            .expect("a");
        sim.write_input(n("wdata"), LogicVec::from_u64(32, 0x1234))
            .expect("w");
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("wb_stb")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("wb_we")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("wb_addr")).to_u64(), Some(0x44));
        sim.write_input(n("awvalid"), LogicVec::from_u64(1, 0))
            .expect("aw");
        sim.write_input(n("wb_ack"), LogicVec::from_u64(1, 1))
            .expect("ack");
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("bvalid")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("wb_stb")).to_u64(), Some(0));
        // Read transaction.
        sim.write_input(n("wb_ack"), LogicVec::from_u64(1, 0))
            .expect("ack");
        sim.write_input(n("arvalid"), LogicVec::from_u64(1, 1))
            .expect("ar");
        sim.write_input(n("araddr"), LogicVec::from_u64(32, 0x48))
            .expect("a");
        sim.tick(clk).expect("tick");
        sim.write_input(n("arvalid"), LogicVec::from_u64(1, 0))
            .expect("ar");
        sim.write_input(n("wb_rdata"), LogicVec::from_u64(32, 0xCAFE))
            .expect("rd");
        sim.write_input(n("wb_ack"), LogicVec::from_u64(1, 1))
            .expect("ack");
        sim.tick(clk).expect("tick");
        assert_eq!(sim.net_logic(n("rvalid")).to_u64(), Some(1));
        assert_eq!(sim.net_logic(n("rdata")).to_u64(), Some(0xCAFE));
    }
}
