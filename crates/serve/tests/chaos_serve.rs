//! Serve-layer chaos, in process: load shedding and the `busy`
//! envelope, deterministic serve-layer fault points
//! (`shed@admission`, `conn_drop@respond`, `frame_truncate@serve`),
//! the client retry contract, transport guards (idle timeout,
//! slow-loris frame deadline, oversized frames), and warm-restart
//! parity through the persistent journal.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use soccar_exec::FaultPlan;
use soccar_serve::{
    read_frame, roundtrip_with_retry, Client, Json, Request, RetryPolicy, Server, ServerOptions,
    MAX_FRAME,
};

const KEY_PROPERTY: &str = "cleared:key-cleared:ip:top.sec_rst_n:top.u.key:8";

fn leaky() -> String {
    "module ip(input clk, input rst_n, output reg [7:0] key);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) key <= key;
    else key <= 8'hA5;
endmodule
module top(input clk, input sec_rst_n);
  ip u (.clk(clk), .rst_n(sec_rst_n));
endmodule
"
    .to_owned()
}

fn analyze_request() -> Request {
    let mut req = Request::new("analyze");
    req.file_name = "t.v".to_owned();
    req.source = leaky();
    req.top = "top".to_owned();
    req.properties = vec![KEY_PROPERTY.to_owned()];
    req
}

fn with_server<T>(options: ServerOptions, body: impl FnOnce(&str) -> T) -> T {
    let server = Arc::new(Server::bind(&options).expect("bind"));
    let addr = server.local_addr().to_string();
    let runner = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.run().expect("run"))
    };
    let result = body(&addr);
    // The shutdown connection itself may be shed while a permit is
    // still draining — exactly the behavior under test — so back off
    // and retry like a well-behaved client.
    let mut attempts = 0;
    loop {
        let mut client = Client::connect(&addr).expect("connect for shutdown");
        let (envelope, _) = client
            .roundtrip(&Request::new("shutdown"))
            .expect("shutdown");
        if envelope.ok {
            break;
        }
        assert!(envelope.is_busy(), "shutdown failed: {}", envelope.error);
        attempts += 1;
        assert!(attempts < 100, "shutdown shed forever");
        thread::sleep(Duration::from_millis(50));
    }
    runner.join().expect("server thread");
    result
}

fn status_json(addr: &str) -> Json {
    let mut client = Client::connect(addr).expect("connect");
    let (envelope, body) = client.roundtrip(&Request::new("status")).expect("status");
    assert!(envelope.ok);
    Json::parse(std::str::from_utf8(&body).expect("utf-8")).expect("json")
}

fn fast_retry(retries: u32) -> RetryPolicy {
    RetryPolicy {
        retries,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(20),
        timeout: Some(Duration::from_secs(30)),
        ..RetryPolicy::default()
    }
}

#[test]
fn saturated_admission_sheds_with_a_busy_envelope() {
    let options = ServerOptions {
        max_connections: 1,
        admission_wait: Duration::ZERO,
        retry_after_ms: 70,
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        // Take the only permit and prove it is held (a full roundtrip
        // means the handler is running).
        let mut holder = Client::connect(addr).expect("connect holder");
        let (envelope, _) = holder.roundtrip(&Request::new("status")).expect("status");
        assert!(envelope.ok);

        // The second connection is shed immediately, with the hint.
        let mut shed = Client::connect(addr).expect("connect shed");
        let (envelope, body) = shed.roundtrip(&Request::new("status")).expect("busy");
        assert!(envelope.is_busy(), "expected busy, got: {}", envelope.error);
        assert_eq!(envelope.retry_after_ms, 70);
        assert!(body.is_empty());

        // Free the permit; the shed count is visible in status.
        drop(holder);
        drop(shed);
        thread::sleep(Duration::from_millis(300));
        let status = status_json(addr);
        assert_eq!(status.u64_field("shed"), Some(1));
    });
}

#[test]
fn shed_fault_point_sheds_the_indexed_admission_and_retry_recovers() {
    let options = ServerOptions {
        fault_plan: FaultPlan::parse("shed@admission:1").expect("plan"),
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        // Admission #1 is forcibly shed; the retry (admission #2) gets
        // through — the client sees only the final success.
        let (envelope, _) =
            roundtrip_with_retry(addr, &Request::new("status"), &fast_retry(2)).expect("retry");
        assert!(
            envelope.ok,
            "retry must recover from a shed: {}",
            envelope.error
        );

        let status = status_json(addr);
        assert_eq!(status.u64_field("shed"), Some(1));
        assert_eq!(
            status.u64_field("retries"),
            Some(1),
            "attempt>0 was counted"
        );
    });
}

#[test]
fn conn_drop_fault_point_is_recovered_by_retry() {
    let options = ServerOptions {
        // Responses #1 and #2 are dropped: #1 for the bare client, #2
        // for the retrying client's first attempt.
        fault_plan: FaultPlan::parse("conn_drop@respond:1,conn_drop@respond:2").expect("plan"),
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        // Without retries the drop surfaces as a closed connection.
        let mut bare = Client::connect(addr).expect("connect");
        let err = bare
            .roundtrip(&Request::new("status"))
            .expect_err("response #1 is dropped");
        assert!(err.contains("closed"), "{err}");

        // With retries the second response goes through.
        let (envelope, _) =
            roundtrip_with_retry(addr, &Request::new("status"), &fast_retry(2)).expect("retry");
        assert!(envelope.ok);
        let status = status_json(addr);
        assert!(status.u64_field("retries").unwrap_or(0) >= 1);
    });
}

#[test]
fn frame_truncate_fault_point_is_recovered_by_retry() {
    let options = ServerOptions {
        fault_plan: FaultPlan::parse("frame_truncate@serve:1").expect("plan"),
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        // Frame #1 (the first response's envelope) is cut mid-payload:
        // the bare client sees a torn frame, the retrying client the
        // clean second answer.
        let mut bare = Client::connect(addr).expect("connect");
        assert!(bare.roundtrip(&Request::new("status")).is_err());
        let (envelope, _) =
            roundtrip_with_retry(addr, &Request::new("status"), &fast_retry(2)).expect("retry");
        assert!(envelope.ok);
    });
}

#[test]
fn analyze_results_are_byte_identical_through_retries() {
    // The fault plan tears the first analyze response; the retried
    // request must serve the *same bytes* (now from the report cache).
    let options = ServerOptions {
        fault_plan: FaultPlan::parse("conn_drop@respond:1").expect("plan"),
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        let req = analyze_request();
        let (envelope, body) =
            roundtrip_with_retry(addr, &req, &fast_retry(2)).expect("retried analyze");
        assert!(envelope.ok, "{}", envelope.error);
        assert!(envelope.violations > 0);
        // An unfaulted roundtrip returns the identical body.
        let mut clean = Client::connect(addr).expect("connect");
        let (_, again) = clean.roundtrip(&req).expect("clean analyze");
        assert_eq!(body, again, "retried body diverged");
    });
}

#[test]
fn idle_connections_are_closed_and_the_server_keeps_serving() {
    let options = ServerOptions {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        let mut idle = TcpStream::connect(addr).expect("connect");
        idle.set_read_timeout(Some(Duration::from_secs(10))).ok();
        // Send nothing. The server closes us at the idle deadline.
        let got = read_frame(&mut idle).expect("clean close, not an error");
        assert!(got.is_none(), "expected EOF from the idle timeout");
        // The freed handler still serves new connections.
        let status = status_json(addr);
        assert!(status.u64_field("uptime_ms").is_some());
    });
}

#[test]
fn slow_loris_frames_are_cut_at_the_frame_deadline() {
    let options = ServerOptions {
        frame_deadline: Some(Duration::from_millis(200)),
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        let mut loris = TcpStream::connect(addr).expect("connect");
        loris.set_read_timeout(Some(Duration::from_secs(10))).ok();
        // Start a frame, then stall: two header bytes and silence.
        loris.write_all(&[0x00, 0x00]).expect("dribble");
        loris.flush().ok();
        let mut buf = [0u8; 1];
        let closed = matches!(std::io::Read::read(&mut loris, &mut buf), Ok(0) | Err(_));
        assert!(closed, "the server must drop a mid-frame staller");
        let status = status_json(addr);
        assert!(status.u64_field("uptime_ms").is_some());
    });
}

#[test]
fn oversized_frames_get_an_error_naming_the_length() {
    with_server(ServerOptions::default(), |addr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let huge = MAX_FRAME + 7;
        stream.write_all(&huge.to_be_bytes()).expect("header");
        stream.flush().ok();
        let envelope = read_frame(&mut stream)
            .expect("error envelope")
            .expect("frame");
        let envelope = Json::parse(std::str::from_utf8(&envelope).expect("utf-8")).expect("json");
        assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(false));
        let error = envelope.str_field("error").expect("error field");
        assert!(
            error.contains(&huge.to_string()),
            "error must name the offending length: {error}"
        );
    });
}

#[test]
fn journal_replay_restores_warm_cache_in_process() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("soccar-chaos-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let req = analyze_request();

    let options = ServerOptions {
        cache_dir: Some(dir.clone()),
        ..ServerOptions::default()
    };
    let first_body = with_server(options.clone(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let (envelope, body) = client.roundtrip(&req).expect("analyze");
        assert!(envelope.ok, "{}", envelope.error);
        body
    });

    // A second server on the same cache dir starts warm: the journal
    // replays, status reports it, and the request is a report-tier hit
    // with byte-identical output.
    with_server(options, |addr| {
        let status = status_json(addr);
        let journal = status.get("journal").expect("journal status");
        assert_eq!(journal.get("enabled").and_then(Json::as_bool), Some(true));
        assert_eq!(journal.u64_field("replayed"), Some(1));
        assert_eq!(journal.u64_field("skipped"), Some(0));

        let mut client = Client::connect(addr).expect("connect");
        let (envelope, body) = client.roundtrip(&req).expect("warm analyze");
        assert!(envelope.ok);
        assert_eq!(body, first_body, "warm-restart body diverged");
        let counters = status_json(addr).get("counters").cloned();
        let hits = counters
            .as_ref()
            .and_then(|c| c.u64_field("cache_hits"))
            .unwrap_or(0);
        assert!(hits >= 1, "the replayed request must warm the report tier");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_replay_fault_degrades_but_serves() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("soccar-chaos-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let req = analyze_request();
    let seed_options = ServerOptions {
        cache_dir: Some(dir.clone()),
        ..ServerOptions::default()
    };
    let clean_body = with_server(seed_options, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let (envelope, body) = client.roundtrip(&req).expect("analyze");
        assert!(envelope.ok);
        body
    });

    let options = ServerOptions {
        cache_dir: Some(dir.clone()),
        fault_plan: FaultPlan::parse("journal_corrupt@replay:1").expect("plan"),
        ..ServerOptions::default()
    };
    with_server(options, |addr| {
        let status = status_json(addr);
        let journal = status.get("journal").expect("journal status");
        assert_eq!(journal.u64_field("replayed"), Some(0));
        assert_eq!(journal.u64_field("skipped"), Some(1));
        let degraded = journal.str_list_field("degraded");
        assert!(
            degraded.iter().any(|r| r.contains("injected fault")),
            "named degradation reason, got: {degraded:?}"
        );
        // Cold again — but correct, and re-journaled for next time.
        let mut client = Client::connect(addr).expect("connect");
        let (envelope, body) = client.roundtrip(&req).expect("cold analyze");
        assert!(envelope.ok);
        assert_eq!(body, clean_body);
    });
    let _ = std::fs::remove_dir_all(&dir);
}
