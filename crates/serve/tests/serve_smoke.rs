//! End-to-end smoke test: the real `soccar serve` daemon as a
//! subprocess, driven by the real `soccar client` — the exact shape the
//! CI `serve-smoke` job uses. Verifies the daemon starts, serves
//! analyze/lint/status byte-identically to the batch CLI, shuts down on
//! request, and exits 0 with no orphan process.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_soccar");

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn() -> Daemon {
        let mut child = Command::new(BIN)
            .args(["serve", "--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn soccar serve");
        // The first stdout line announces the bound (ephemeral) port.
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("daemon printed nothing")
            .expect("read daemon stdout");
        let addr = first
            .strip_prefix("soccar-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .to_owned();
        Daemon { child, addr }
    }

    fn client(&self, args: &[&str]) -> std::process::Output {
        Command::new(BIN)
            .args(["client", "--connect", &self.addr])
            .args(args)
            .output()
            .expect("run soccar client")
    }

    /// Requests shutdown and asserts a clean exit within the deadline.
    fn shutdown(mut self) {
        let out = self.client(&["shutdown"]);
        assert!(
            out.status.success(),
            "shutdown client failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    self.child.kill().ok();
                    panic!("daemon did not exit within 30s of shutdown — orphan process");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt-and-braces: never leak a daemon past a failing test.
        self.child.kill().ok();
    }
}

fn batch(args: &[&str]) -> std::process::Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("run soccar batch")
}

#[test]
fn daemon_serves_both_socs_byte_identically_and_shuts_down_cleanly() {
    let daemon = Daemon::spawn();

    for soc in ["clustersoc", "autosoc"] {
        let served = daemon.client(&["analyze", "--soc", soc, "--cycles", "12", "--rounds", "3"]);
        let batched = batch(&[
            "analyze", "--soc", soc, "--cycles", "12", "--rounds", "3", "--json",
        ]);
        assert_eq!(
            served.status.code(),
            batched.status.code(),
            "{soc}: exit codes must agree (server stderr: {})",
            String::from_utf8_lossy(&served.stderr)
        );
        assert!(!served.stdout.is_empty(), "{soc}: empty served report");
        assert_eq!(
            String::from_utf8_lossy(&served.stdout),
            String::from_utf8_lossy(&batched.stdout),
            "{soc}: served stdout diverged from `soccar analyze --json`"
        );
        // Warm repeat: same bytes again, now from the report cache.
        let warm = daemon.client(&["analyze", "--soc", soc, "--cycles", "12", "--rounds", "3"]);
        assert_eq!(warm.stdout, served.stdout, "{soc}: warm body changed");
    }

    // Lint parity on a scratch file, exercising the client's file path.
    let dir = std::env::temp_dir().join(format!("soccar-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("smoke.v");
    std::fs::write(
        &file,
        "module top(input clk, input rst_n, output reg q);\n\
         always @(posedge clk) q <= ~q;\nendmodule\n",
    )
    .expect("write scratch design");
    let path = file.to_str().expect("utf-8 path");
    let served = daemon.client(&["lint", path]);
    let batched = batch(&["lint", path, "--json"]);
    assert_eq!(served.status.code(), batched.status.code());
    assert_eq!(
        String::from_utf8_lossy(&served.stdout),
        String::from_utf8_lossy(&batched.stdout),
        "lint: served stdout diverged from `soccar lint --json`"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Status is well-formed and counts the four analyses.
    let status = daemon.client(&["status"]);
    assert!(status.status.success());
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("\"requests\": 4"), "status: {text}");

    daemon.shutdown();
}
