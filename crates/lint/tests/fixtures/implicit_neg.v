// Negative: the classic explicit-governor template — reset edge in the
// sensitivity list AND a leading reset test.
module sha(input clk, input rst_n, input [7:0] pt, output reg [7:0] ct);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) ct <= 8'd0;
    else ct <= pt;
endmodule
