//! Frontend error types.

use std::error::Error;
use std::fmt;

use crate::span::Span;

/// The kind of a frontend diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtlErrorKind {
    /// Lexical error (bad character, malformed literal).
    Lex,
    /// Syntax error.
    Parse,
    /// Semantic error (undeclared identifier, width mismatch, bad lvalue).
    Semantic,
    /// Elaboration error (unknown module, bad parameter, port mismatch).
    Elaborate,
    /// The construct is valid Verilog but outside the supported subset.
    Unsupported,
}

impl fmt::Display for RtlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RtlErrorKind::Lex => "lexical error",
            RtlErrorKind::Parse => "syntax error",
            RtlErrorKind::Semantic => "semantic error",
            RtlErrorKind::Elaborate => "elaboration error",
            RtlErrorKind::Unsupported => "unsupported construct",
        };
        f.write_str(s)
    }
}

/// A diagnostic produced by the RTL frontend.
///
/// Implements [`std::error::Error`] and is `Send + Sync` so it composes
/// with downstream error handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlError {
    /// What stage rejected the input.
    pub kind: RtlErrorKind,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Where in the source the problem is.
    pub span: Span,
}

impl RtlError {
    /// Creates a new diagnostic.
    #[must_use]
    pub fn new(kind: RtlErrorKind, message: impl Into<String>, span: Span) -> RtlError {
        RtlError {
            kind,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl Error for RtlError {}

/// Convenience alias for frontend results.
pub type RtlResult<T> = Result<T, RtlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = RtlError::new(RtlErrorKind::Parse, "expected `;`", Span::dummy());
        assert_eq!(e.to_string(), "syntax error: expected `;`");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
