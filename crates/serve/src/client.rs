//! Client side of the `soccar serve` protocol — what `soccar client`
//! and CI harnesses use to talk to a running daemon.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use crate::proto::{read_frame, write_frame, Envelope, Request};

/// A connection to a running `soccar serve` daemon. One connection can
/// pipeline any number of requests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr` (`host:port`, as printed by the daemon or
    /// written to its `--port-file`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the two response frames:
    /// `(envelope, body)`. The body is the deliverable verbatim —
    /// print it as-is for byte-identical parity with the batch CLI.
    ///
    /// # Errors
    ///
    /// On I/O failure, a server-closed connection, or an undecodable
    /// envelope.
    pub fn roundtrip(&mut self, request: &Request) -> Result<(Envelope, Vec<u8>), String> {
        let payload = request.to_json().map_err(|e| e.to_string())?;
        write_frame(&mut self.writer, payload.as_bytes()).map_err(|e| e.to_string())?;
        let envelope_frame = read_frame(&mut self.reader)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "server closed the connection before responding".to_owned())?;
        let envelope_text = String::from_utf8(envelope_frame)
            .map_err(|_| "envelope frame is not utf-8".to_owned())?;
        let envelope = Envelope::from_json(&envelope_text)?;
        let body = read_frame(&mut self.reader)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "server closed the connection before the body frame".to_owned())?;
        Ok((envelope, body))
    }
}
