//! Explore the reset-domain structure of a benchmark SoC: AR_CFG
//! extraction and composition without running any simulation — the static
//! half of SoCCAR (Algorithms 1–2) used as an analysis tool.
//!
//! ```sh
//! cargo run --example reset_domain_explorer [cluster|auto]
//! ```

use soccar_cfg::{compose_soc, GovernorAnalysis, ResetNaming};
use soccar_rtl::{parser::parse, span::FileId};
use soccar_soc::SocModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = match std::env::args().nth(1).as_deref() {
        Some("auto") => SocModel::AutoSoc,
        _ => SocModel::ClusterSoc,
    };
    let design = soccar_soc::generate(model, None);
    let unit = parse(FileId(0), &design.source)?;
    let soc = compose_soc(
        &unit,
        &design.top,
        &ResetNaming::new(),
        GovernorAnalysis::Explicit,
    )
    .map_err(std::io::Error::other)?;

    println!("{}: AR(S) composition", design.name);
    println!(
        "  {} instances, {} reset-governed events, {} reset domains\n",
        soc.instances.len(),
        soc.event_count(),
        soc.reset_domains.len()
    );
    for domain in &soc.reset_domains {
        println!(
            "reset domain `{}` ({}, active-{})",
            domain.source,
            if domain.top_level {
                "top-level input"
            } else {
                "internal"
            },
            if domain.active_low { "low" } else { "high" },
        );
        println!("  members:");
        for (inst, local) in &domain.members {
            println!("    {inst}.{local}");
        }
        println!("  governed events: {}", domain.events.len());
        for ev in domain.events.iter().take(4) {
            let inst = soc.instance(&ev.instance).expect("instance exists");
            let e = &inst.cfg.events[ev.event_index];
            println!(
                "    {} always#{} ({:?}, assigns {})",
                ev.instance,
                e.always_index,
                e.arm,
                e.assigned.join("/")
            );
        }
        if domain.events.len() > 4 {
            println!("    … and {} more", domain.events.len() - 4);
        }
        println!();
    }
    Ok(())
}
