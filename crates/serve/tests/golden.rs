//! Golden-snapshot tests for the `soccar` CLI: `soccar lint --json` and
//! the default analyze mode, run on one generated fixture per bundled
//! SoC. Snapshots live in `tests/golden/`; wall-clock tokens (`0.123s`)
//! are normalized to `#.###s` before comparison so only real output
//! changes trip the tests.
//!
//! To update the snapshots after an intentional output change:
//!
//! ```sh
//! SOCCAR_BLESS=1 cargo test -p soccar-serve --test golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use soccar_soc::SocModel;

/// Writes the generated fixture into a per-test scratch directory and
/// returns (scratch dir, relative fixture file name). Running the CLI
/// with `current_dir` set to the scratch dir keeps the file paths in its
/// output relative, so snapshots are machine-independent.
fn fixture(test: &str, model: SocModel, variant: u32) -> (PathBuf, String) {
    let soc = soccar_soc::generate(model, Some(variant));
    let dir = std::env::temp_dir().join(format!("soccar-golden-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let file = "soc.v".to_owned();
    std::fs::write(dir.join(&file), &soc.source).expect("write fixture");
    (dir, file)
}

fn run_soccar(dir: &Path, args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_soccar"))
        .args(args)
        .current_dir(dir)
        .env_remove("SOCCAR_JOBS")
        .output()
        .expect("run soccar");
    assert!(
        out.stderr.is_empty(),
        "soccar wrote to stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// Replaces every `<digits>.<digits>s` wall-clock token with `#.###s`.
fn normalize_timing(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let mut k = j;
            if k < bytes.len() && bytes[k] == b'.' {
                k += 1;
                let frac = k;
                while k < bytes.len() && bytes[k].is_ascii_digit() {
                    k += 1;
                }
                if k > frac && k < bytes.len() && bytes[k] == b's' {
                    out.push_str("#.###s");
                    i = k + 1;
                    continue;
                }
            }
            out.push_str(&s[i..j]);
            i = j;
        } else {
            let c = s[i..].chars().next().expect("char boundary");
            out.push(c);
            i += c.len_utf8();
        }
    }
    out
}

/// Compares `actual` against the stored snapshot, or rewrites the
/// snapshot when `SOCCAR_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("SOCCAR_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}; run with SOCCAR_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "`{name}` drifted from its snapshot; if the change is intentional, \
         rerun with SOCCAR_BLESS=1 to update"
    );
}

#[test]
fn lint_json_cluster_soc_matches_snapshot() {
    let (dir, file) = fixture("lint-cluster", SocModel::ClusterSoc, 1);
    let out = run_soccar(&dir, &["lint", &file, "--json"]);
    check_golden("cluster_lint.json", &out);
}

#[test]
fn lint_json_auto_soc_matches_snapshot() {
    let (dir, file) = fixture("lint-auto", SocModel::AutoSoc, 2);
    let out = run_soccar(&dir, &["lint", &file, "--json"]);
    check_golden("auto_lint.json", &out);
}

#[test]
fn analyze_cluster_soc_matches_snapshot() {
    let (dir, file) = fixture("analyze-cluster", SocModel::ClusterSoc, 1);
    let top = soccar_soc::generate(SocModel::ClusterSoc, Some(1)).top;
    let out = run_soccar(
        &dir,
        &[
            &file, "--top", &top, "--cycles", "8", "--rounds", "2", "--jobs", "2",
        ],
    );
    check_golden("cluster_analyze.txt", &normalize_timing(&out));
}

#[test]
fn analyze_auto_soc_matches_snapshot() {
    let (dir, file) = fixture("analyze-auto", SocModel::AutoSoc, 2);
    let top = soccar_soc::generate(SocModel::AutoSoc, Some(2)).top;
    let out = run_soccar(
        &dir,
        &[
            &file, "--top", &top, "--cycles", "8", "--rounds", "2", "--jobs", "2",
        ],
    );
    check_golden("auto_analyze.txt", &normalize_timing(&out));
}
