//! Hand-written lexer for the Verilog subset.
//!
//! Handles line (`//`) and block (`/* */`) comments, based literals with
//! optional size (`8'hA5`, `'b1x0z`, `4'd12`), bare decimals, identifiers,
//! escaped identifiers (`\foo+bar `), strings, system names (`$display`)
//! and all subset operators with maximal-munch disambiguation
//! (`===` vs `==` vs `=`, `>>>` vs `>>`, `<=` etc).

use crate::error::{RtlError, RtlErrorKind, RtlResult};
use crate::span::{FileId, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::value::{Bit, LogicVec};

/// Lexes `text` (belonging to `file`) into a token stream terminated by
/// a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns an [`RtlError`] of kind [`RtlErrorKind::Lex`] on malformed
/// input (stray characters, unterminated comments/strings, bad digits
/// for the literal base, zero-width literals).
pub fn lex(file: FileId, text: &str) -> RtlResult<Vec<Token>> {
    Lexer {
        file,
        bytes: text.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    file: FileId,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> RtlResult<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(start),
                b'0'..=b'9' => self.lex_number(start)?,
                b'\'' => self.lex_based_literal(start, None)?,
                b'\\' => self.lex_escaped_ident(start)?,
                b'"' => self.lex_string(start)?,
                b'$' => self.lex_sysname(start),
                _ => self.lex_punct(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(self.file, start as u32, self.pos as u32)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let span = self.span_from(start);
        self.tokens.push(Token { kind, span });
    }

    fn err(&self, msg: impl Into<String>, start: usize) -> RtlError {
        RtlError::new(RtlErrorKind::Lex, msg, self.span_from(start))
    }

    fn skip_trivia(&mut self) -> RtlResult<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => return Err(self.err("unterminated block comment", start)),
                        }
                    }
                }
                // Compiler directives (`timescale etc.) are skipped to
                // end of line; the subset does not interpret them.
                Some(b'`') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_word(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("lexer input is ascii here");
        let kind = match Keyword::lookup(word) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word.to_owned()),
        };
        self.push(kind, start);
    }

    fn lex_escaped_ident(&mut self, start: usize) -> RtlResult<()> {
        self.pos += 1; // backslash
        let id_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if self.pos == id_start {
            return Err(self.err("empty escaped identifier", start));
        }
        let word = std::str::from_utf8(&self.bytes[id_start..self.pos])
            .map_err(|_| self.err("non-ascii escaped identifier", start))?
            .to_owned();
        self.push(TokenKind::Ident(word), start);
        Ok(())
    }

    fn lex_string(&mut self, start: usize) -> RtlResult<()> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(c) => out.push(c as char),
                    None => return Err(self.err("unterminated string", start)),
                },
                Some(c) => out.push(c as char),
                None => return Err(self.err("unterminated string", start)),
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    fn lex_sysname(&mut self, start: usize) {
        self.pos += 1; // $
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .to_owned();
        self.push(TokenKind::SysName(word), start);
    }

    fn lex_number(&mut self, start: usize) -> RtlResult<()> {
        // Leading decimal digits: either a bare decimal or the size of a
        // based literal.
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'_' {
                if c != b'_' {
                    digits.push(c as char);
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        // Allow whitespace between size and base per IEEE 1364.
        let save = self.pos;
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'\'') {
            let size: u32 = digits
                .parse()
                .map_err(|_| self.err("literal size too large", start))?;
            if size == 0 {
                return Err(self.err("zero-width literal", start));
            }
            return self.lex_based_literal(start, Some(size));
        }
        self.pos = save;
        let value: u64 = digits
            .parse()
            .map_err(|_| self.err("decimal literal does not fit in 64 bits", start))?;
        self.push(
            TokenKind::Number {
                value: LogicVec::from_u64(32, value),
                sized: false,
            },
            start,
        );
        Ok(())
    }

    fn lex_based_literal(&mut self, start: usize, size: Option<u32>) -> RtlResult<()> {
        self.pos += 1; // apostrophe
                       // Optional signedness marker, ignored (subset is unsigned).
        if matches!(self.peek(), Some(b's' | b'S')) {
            self.pos += 1;
        }
        let base = match self.bump() {
            Some(b'b' | b'B') => 2u32,
            Some(b'o' | b'O') => 8,
            Some(b'd' | b'D') => 10,
            Some(b'h' | b'H') => 16,
            _ => return Err(self.err("expected base after `'`", start)),
        };
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
        let digits_start = self.pos;
        let mut bits: Vec<Bit> = Vec::new(); // LSB first
        let mut dec_value: u64 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            let ch = c.to_ascii_lowercase();
            match ch {
                b'_' => {
                    self.pos += 1;
                }
                b'x' | b'z' | b'?' if base != 10 => {
                    let bit = if ch == b'x' { Bit::X } else { Bit::Z };
                    let per = base.trailing_zeros();
                    let mut new = vec![bit; per as usize];
                    new.extend_from_slice(&bits);
                    bits = new;
                    any = true;
                    self.pos += 1;
                }
                b'0'..=b'9' | b'a'..=b'f' => {
                    let d = if ch.is_ascii_digit() {
                        u32::from(ch - b'0')
                    } else {
                        u32::from(ch - b'a') + 10
                    };
                    if d >= base {
                        break;
                    }
                    if base == 10 {
                        dec_value = dec_value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(u64::from(d)))
                            .ok_or_else(|| {
                                self.err("decimal literal does not fit in 64 bits", start)
                            })?;
                    } else {
                        let per = base.trailing_zeros();
                        let mut new: Vec<Bit> =
                            (0..per).map(|i| Bit::from((d >> i) & 1 == 1)).collect();
                        new.extend_from_slice(&bits);
                        bits = new;
                    }
                    any = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !any {
            return Err(self.err("based literal has no digits", digits_start));
        }
        let natural = if base == 10 {
            LogicVec::from_u64(64, dec_value)
        } else if bits.is_empty() {
            LogicVec::zeros(1)
        } else {
            LogicVec::from_bits(&bits)
        };
        let width = size.unwrap_or(32);
        // Per IEEE 1364, a literal narrower than its size is zero-extended
        // unless its MSB is x/z, in which case that state is extended.
        let mut value = natural.resize(width);
        if natural.width() < width {
            let msb = natural.bit(natural.width() - 1);
            if msb.is_unknown() {
                for i in natural.width()..width {
                    value.set_bit(i, msb);
                }
            }
        }
        self.push(
            TokenKind::Number {
                value,
                sized: size.is_some(),
            },
            start,
        );
        Ok(())
    }

    fn lex_punct(&mut self, start: usize) -> RtlResult<()> {
        use Punct::*;
        let c = self.bump().expect("caller checked non-empty");
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'.' => Dot,
            b'#' => Hash,
            b'@' => At,
            b'?' => Question,
            b'+' => {
                if self.peek() == Some(b':') {
                    self.pos += 1;
                    PlusColon
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.peek() == Some(b':') {
                    self.pos += 1;
                    MinusColon
                } else {
                    Minus
                }
            }
            b'/' => Slash,
            b'%' => Percent,
            b'^' => Caret,
            b'*' => {
                if self.peek() == Some(b'*') {
                    self.pos += 1;
                    Star2
                } else {
                    Star
                }
            }
            b'~' => {
                if self.peek() == Some(b'^') {
                    self.pos += 1;
                    TildeCaret
                } else {
                    Tilde
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        CaseEq
                    } else {
                        EqEq
                    }
                } else {
                    Assign
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        CaseNotEq
                    } else {
                        NotEq
                    }
                } else {
                    Bang
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    LtEq
                } else if self.peek() == Some(b'<') {
                    self.pos += 1;
                    Shl
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    GtEq
                } else if self.peek() == Some(b'>') {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        AShr
                    } else {
                        Shr
                    }
                } else {
                    Gt
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    PipePipe
                } else {
                    Pipe
                }
            }
            _ => return Err(self.err(format!("unexpected character `{}`", c as char), start)),
        };
        self.push(TokenKind::Punct(p), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(FileId(0), src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        let k = kinds("module foo; endmodule");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Module));
        assert_eq!(k[1], TokenKind::Ident("foo".into()));
        assert_eq!(k[2], TokenKind::Punct(Punct::Semi));
        assert_eq!(k[3], TokenKind::Keyword(Keyword::Endmodule));
        assert_eq!(k[4], TokenKind::Eof);
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("a // line\n /* block\nmore */ b");
        assert_eq!(k.len(), 3);
        assert_eq!(k[0], TokenKind::Ident("a".into()));
        assert_eq!(k[1], TokenKind::Ident("b".into()));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex(FileId(0), "/* oops").is_err());
    }

    #[test]
    fn directives_skipped() {
        let k = kinds("`timescale 1ns/1ps\nwire");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Wire));
    }

    #[test]
    fn sized_hex_literal() {
        let k = kinds("8'hA5");
        match &k[0] {
            TokenKind::Number { value, sized } => {
                assert!(sized);
                assert_eq!(value.width(), 8);
                assert_eq!(value.to_u64(), Some(0xA5));
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn binary_literal_with_xz() {
        let k = kinds("4'b1x0z");
        match &k[0] {
            TokenKind::Number { value, .. } => {
                assert_eq!(format!("{value:b}"), "1x0z");
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn x_extension_to_size() {
        // 8'bx → all bits x.
        let k = kinds("8'bx");
        match &k[0] {
            TokenKind::Number { value, .. } => assert!(value.is_all_x()),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn decimal_literals() {
        let k = kinds("42 10'd512");
        match &k[0] {
            TokenKind::Number { value, sized } => {
                assert!(!sized);
                assert_eq!(value.width(), 32);
                assert_eq!(value.to_u64(), Some(42));
            }
            other => panic!("{other:?}"),
        }
        match &k[1] {
            TokenKind::Number { value, sized } => {
                assert!(sized);
                assert_eq!(value.width(), 10);
                assert_eq!(value.to_u64(), Some(512));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn underscores_in_literals() {
        let k = kinds("16'hAB_CD 1_000");
        match &k[0] {
            TokenKind::Number { value, .. } => assert_eq!(value.to_u64(), Some(0xABCD)),
            other => panic!("{other:?}"),
        }
        match &k[1] {
            TokenKind::Number { value, .. } => assert_eq!(value.to_u64(), Some(1000)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn size_with_space_before_base() {
        let k = kinds("4 'b1010");
        match &k[0] {
            TokenKind::Number { value, .. } => assert_eq!(value.to_u64(), Some(0b1010)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operators_maximal_munch() {
        let k = kinds("=== == = !== != ! <= < << >>> >> > && & || | ~^ ~ ** *");
        let expect = [
            Punct::CaseEq,
            Punct::EqEq,
            Punct::Assign,
            Punct::CaseNotEq,
            Punct::NotEq,
            Punct::Bang,
            Punct::LtEq,
            Punct::Lt,
            Punct::Shl,
            Punct::AShr,
            Punct::Shr,
            Punct::Gt,
            Punct::AmpAmp,
            Punct::Amp,
            Punct::PipePipe,
            Punct::Pipe,
            Punct::TildeCaret,
            Punct::Tilde,
            Punct::Star2,
            Punct::Star,
        ];
        for (i, p) in expect.iter().enumerate() {
            assert_eq!(k[i], TokenKind::Punct(*p), "token {i}");
        }
    }

    #[test]
    fn bad_character_errors() {
        let e = lex(FileId(0), "wire \x01;").expect_err("should fail");
        assert_eq!(e.kind, RtlErrorKind::Lex);
    }

    #[test]
    fn zero_width_literal_errors() {
        assert!(lex(FileId(0), "0'h0").is_err());
    }

    #[test]
    fn based_literal_without_digits_errors() {
        assert!(lex(FileId(0), "4'h").is_err());
    }

    #[test]
    fn string_and_sysname() {
        let k = kinds("$display(\"hi\\n\")");
        assert_eq!(k[0], TokenKind::SysName("$display".into()));
        assert_eq!(k[2], TokenKind::Str("hi\n".into()));
    }

    #[test]
    fn escaped_identifier() {
        let k = kinds("\\a+b module");
        assert_eq!(k[0], TokenKind::Ident("a+b".into()));
        assert_eq!(k[1], TokenKind::Keyword(Keyword::Module));
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex(FileId(0), "ab cd").expect("lex ok");
        assert_eq!(toks[0].span.start, 0);
        assert_eq!(toks[0].span.end, 2);
        assert_eq!(toks[1].span.start, 3);
        assert_eq!(toks[1].span.end, 5);
    }
}
