//! # soccar-cfg
//!
//! Asynchronous-Reset CFG extraction for the SoCCAR reproduction — the
//! paper's Algorithms 1 and 2 plus reset-domain analysis and design
//! binding:
//!
//! * [`reset_id`] — reset-signal identification (naming convention per the
//!   paper's footnote 1, plus structural inference);
//! * [`extract`] — per-module CFG of hardware events and its projection to
//!   the AR_CFG (`AR[M_i]`), in both [`extract::GovernorAnalysis`] modes:
//!   `Explicit` (the published tool, which misses implicit governors — the
//!   Section V-C SHA256 case) and `Refined` (the proposed extension);
//! * [`connect`] — module connection profiles (`CN[M_i]`, Algorithm 2);
//! * [`compose`] — the SoC-level `AR(S) = AR[M_1] ‖ … ‖ AR[M_k]` with
//!   reset domains traced to their sources;
//! * [`bind`] — resolution of extracted events onto the elaborated design
//!   (processes, branch sites, nets) for the concolic engine.
//!
//! # Examples
//!
//! ```
//! use soccar_cfg::{compose::compose_soc, extract::GovernorAnalysis, reset_id::ResetNaming};
//! use soccar_rtl::{parser::parse, span::FileId};
//!
//! let unit = parse(FileId(0), "
//!   module ip(input clk, input rst_n, output reg q);
//!     always @(posedge clk or negedge rst_n)
//!       if (!rst_n) q <= 1'b0; else q <= 1'b1;
//!   endmodule
//!   module top(input clk, input sys_rst_n);
//!     ip u (.clk(clk), .rst_n(sys_rst_n));
//!   endmodule").expect("parse");
//! let soc = compose_soc(&unit, "top", &ResetNaming::new(), GovernorAnalysis::Explicit)
//!     .expect("compose");
//! assert_eq!(soc.reset_domains.len(), 1);
//! assert_eq!(soc.event_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bind;
pub mod compose;
pub mod connect;
pub mod extract;
pub mod reset_id;

pub use bind::{bind_events, bind_events_traced, BindError, BoundEvent};
pub use compose::{
    compose_soc, compose_soc_jobs, compose_soc_prepared, compose_soc_resilient, compose_soc_traced,
    ResetDomain, SocArCfg,
};
pub use connect::{connection_profiles, ChildConn, ConnectionProfile, SignalConn};
pub use extract::{
    assigned_signals, extract_all, extract_all_jobs, extract_all_resilient, extract_module_cfg,
    project_ar_cfg, tests_clock_level, ArCfg, EventArm, Governor, GovernorAnalysis, HardwareEvent,
    ModuleCfg,
};
pub use reset_id::{
    identify_resets, leading_condition_tests, leading_if, looks_like_reset_name,
    name_suggests_active_low, ResetEvidence, ResetNaming, ResetSignal,
};
