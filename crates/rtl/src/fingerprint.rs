//! Content fingerprinting and incremental re-parse support.
//!
//! The analysis server (`soccar-serve`) keys its per-module caches on two
//! fingerprints computed here:
//!
//! * a **raw fingerprint** ([`hash_bytes`] over a module's source chunk),
//!   which decides whether the cached AST for that chunk can be reused
//!   without re-parsing, and
//! * a **structural fingerprint** ([`module_fingerprint`], a hash of the
//!   pretty-printed AST), which decides whether downstream per-module
//!   results (AR_CFG extraction, elaboration) are still valid — it is
//!   insensitive to comments, whitespace and span positions.
//!
//! [`split_modules`] slices a source file into per-module chunks without
//! parsing it, so an edit to one module invalidates only that module's
//! caches. Cached ASTs are parsed from the chunk text (0-based offsets)
//! and rebased into the full file's coordinate space with
//! [`rebase_module_spans`], which keeps every diagnostic span — and hence
//! lint output — byte-identical to a cold full-file parse.

use crate::ast::{
    AlwaysBlock, CaseArm, Declarator, Expr, Instance, Item, Module, NetDecl, ParamDecl, Port,
    PortConn, Range, SensItem, Sensitivity, SourceUnit, Stmt,
};
use crate::printer;
use crate::span::{FileId, Span};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
///
/// Deterministic across runs and platforms (unlike `DefaultHasher`), so
/// fingerprints can appear in traces and be compared across processes.
///
/// # Examples
///
/// ```
/// let h = soccar_rtl::fingerprint::hash_bytes(b"module m; endmodule");
/// assert_eq!(h, soccar_rtl::fingerprint::hash_bytes(b"module m; endmodule"));
/// assert_ne!(h, soccar_rtl::fingerprint::hash_bytes(b"module n; endmodule"));
/// ```
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Structural fingerprint of a parsed module: the [`hash_bytes`] of its
/// pretty-printed form.
///
/// Two modules that differ only in formatting, comments or source
/// position hash identically; any semantic edit (port, parameter,
/// statement, expression) changes the hash. This is the key for the
/// extraction and elaboration caches, where results do not depend on
/// spans.
#[must_use]
pub fn module_fingerprint(m: &Module) -> u64 {
    hash_bytes(printer::print_module(m).as_bytes())
}

/// One per-module slice of a source file, produced by [`split_modules`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleChunk {
    /// Module name as spelled at the definition.
    pub name: String,
    /// Byte offset of the `module` keyword in the full source.
    pub offset: u32,
    /// Source text from the `module` keyword through `endmodule`.
    pub text: String,
}

impl ModuleChunk {
    /// Raw fingerprint of the chunk text (see [`hash_bytes`]).
    #[must_use]
    pub fn raw_fingerprint(&self) -> u64 {
        hash_bytes(self.text.as_bytes())
    }
}

/// Splits `source` into per-module chunks without parsing it.
///
/// The scanner understands line/block comments, string literals and
/// escaped identifiers, so `module`/`endmodule` inside any of those do
/// not confuse it. Returns `None` — meaning "fall back to a full parse"
/// — when the file does not follow the simple shape of top-level module
/// definitions separated only by whitespace/comments (e.g. stray text,
/// an unterminated construct, or a nested `module`). `None` is never an
/// error: the caller simply loses incrementality for that input.
///
/// For a well-formed subset file, concatenating chunk parses and
/// rebasing their spans reproduces the full-file parse exactly; the
/// `chunks_reassemble_exactly` tests pin that equivalence.
#[must_use]
pub fn split_modules(source: &str) -> Option<Vec<ModuleChunk>> {
    let bytes = source.as_bytes();
    let mut chunks = Vec::new();
    let mut i = 0usize;
    // Offset of the `module` keyword of the chunk being scanned, plus the
    // module's name once seen; `None` between modules.
    let mut current: Option<(usize, Option<String>)> = None;

    while i < bytes.len() {
        let b = bytes[i];
        // Comments and whitespace are legal everywhere.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let close = source.get(i + 2..)?.find("*/")?;
            i += 2 + close + 2;
            continue;
        }
        // String literals only occur inside a module body.
        if b == b'"' {
            current.as_ref()?;
            i += 1;
            loop {
                match bytes.get(i)? {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => i += 2,
                    _ => i += 1,
                }
            }
            continue;
        }
        // Escaped identifier: backslash through the next whitespace. Never
        // a keyword, so just skip it (only legal inside a module).
        if b == b'\\' {
            current.as_ref()?;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            continue;
        }
        // An ordinary identifier/keyword token.
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
            {
                i += 1;
            }
            let word = &source[start..i];
            match (&mut current, word) {
                (None, "module") => current = Some((start, None)),
                // Anything else at top level (including `endmodule` with no
                // opener, or `macromodule`) breaks the simple shape.
                (None, _) => return None,
                // A nested `module` keyword is not subset Verilog.
                (Some(_), "module") => return None,
                (Some((chunk_start, name)), "endmodule") => {
                    let name = name.take()?;
                    chunks.push(ModuleChunk {
                        name,
                        offset: u32::try_from(*chunk_start).ok()?,
                        text: source[*chunk_start..i].to_owned(),
                    });
                    current = None;
                }
                (Some((_, name @ None)), w) => *name = Some(w.to_owned()),
                (Some((_, Some(_))), _) => {}
            }
            continue;
        }
        // Any other byte (punctuation, digits, `$`…) is only legal inside
        // a module body.
        current.as_ref()?;
        i += 1;
    }

    // An unterminated module means the shape assumption failed.
    if current.is_some() {
        return None;
    }
    Some(chunks)
}

/// Rebases every span in `m` into `file` at byte offset `delta`.
///
/// Used when a cached AST — parsed from a [`ModuleChunk`]'s text, so its
/// spans are 0-based — is reassembled into a [`SourceUnit`] registered
/// under the full file. After rebasing, diagnostics render identical
/// line/column positions to a full-file parse.
pub fn rebase_module_spans(m: &mut Module, file: FileId, delta: u32) {
    let fix = |s: &mut Span| {
        s.file = file;
        s.start += delta;
        s.end += delta;
    };
    fix(&mut m.span);
    for p in &mut m.params {
        rebase_param(p, &fix);
    }
    for p in &mut m.ports {
        rebase_port(p, &fix);
    }
    for item in &mut m.items {
        rebase_item(item, &fix);
    }
}

fn rebase_param(p: &mut ParamDecl, fix: &impl Fn(&mut Span)) {
    fix(&mut p.span);
    rebase_expr(&mut p.value, fix);
}

fn rebase_port(p: &mut Port, fix: &impl Fn(&mut Span)) {
    fix(&mut p.span);
    if let Some(r) = &mut p.range {
        rebase_range(r, fix);
    }
}

fn rebase_range(r: &mut Range, fix: &impl Fn(&mut Span)) {
    fix(&mut r.span);
    rebase_expr(&mut r.msb, fix);
    rebase_expr(&mut r.lsb, fix);
}

fn rebase_declarator(d: &mut Declarator, fix: &impl Fn(&mut Span)) {
    fix(&mut d.span);
    if let Some(a) = &mut d.array {
        rebase_range(a, fix);
    }
    if let Some(init) = &mut d.init {
        rebase_expr(init, fix);
    }
}

fn rebase_net(d: &mut NetDecl, fix: &impl Fn(&mut Span)) {
    fix(&mut d.span);
    if let Some(r) = &mut d.range {
        rebase_range(r, fix);
    }
    for n in &mut d.names {
        rebase_declarator(n, fix);
    }
}

fn rebase_sens(s: &mut Sensitivity, fix: &impl Fn(&mut Span)) {
    if let Sensitivity::List(items) = s {
        for SensItem { span, .. } in items {
            fix(span);
        }
    }
}

fn rebase_always(a: &mut AlwaysBlock, fix: &impl Fn(&mut Span)) {
    fix(&mut a.span);
    rebase_sens(&mut a.sensitivity, fix);
    rebase_stmt(&mut a.body, fix);
}

fn rebase_conn(c: &mut PortConn, fix: &impl Fn(&mut Span)) {
    fix(&mut c.span);
    if let Some(e) = &mut c.expr {
        rebase_expr(e, fix);
    }
}

fn rebase_instance(inst: &mut Instance, fix: &impl Fn(&mut Span)) {
    fix(&mut inst.span);
    for c in &mut inst.params {
        rebase_conn(c, fix);
    }
    for c in &mut inst.conns {
        rebase_conn(c, fix);
    }
}

fn rebase_item(item: &mut Item, fix: &impl Fn(&mut Span)) {
    match item {
        Item::Net(d) => rebase_net(d, fix),
        Item::Param(p) => rebase_param(p, fix),
        Item::Assign { lhs, rhs, span } => {
            fix(span);
            rebase_expr(lhs, fix);
            rebase_expr(rhs, fix);
        }
        Item::Always(a) => rebase_always(a, fix),
        Item::Initial { body, span } => {
            fix(span);
            rebase_stmt(body, fix);
        }
        Item::Instance(inst) => rebase_instance(inst, fix),
    }
}

fn rebase_stmt(stmt: &mut Stmt, fix: &impl Fn(&mut Span)) {
    match stmt {
        Stmt::Block { stmts, span } => {
            fix(span);
            for s in stmts {
                rebase_stmt(s, fix);
            }
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
            span,
        } => {
            fix(span);
            rebase_expr(cond, fix);
            rebase_stmt(then_stmt, fix);
            if let Some(e) = else_stmt {
                rebase_stmt(e, fix);
            }
        }
        Stmt::Case {
            selector,
            arms,
            span,
            ..
        } => {
            fix(span);
            rebase_expr(selector, fix);
            for CaseArm { labels, body, span } in arms {
                fix(span);
                for l in labels {
                    rebase_expr(l, fix);
                }
                rebase_stmt(body, fix);
            }
        }
        Stmt::Blocking { lhs, rhs, span } | Stmt::NonBlocking { lhs, rhs, span } => {
            fix(span);
            rebase_expr(lhs, fix);
            rebase_expr(rhs, fix);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            span,
            ..
        } => {
            fix(span);
            rebase_expr(init, fix);
            rebase_expr(cond, fix);
            rebase_expr(step, fix);
            rebase_stmt(body, fix);
        }
        Stmt::Null { span } => fix(span),
    }
}

fn rebase_expr(e: &mut Expr, fix: &impl Fn(&mut Span)) {
    match e {
        Expr::Number { span, .. } | Expr::Ident { span, .. } => fix(span),
        Expr::Unary { operand, span, .. } => {
            fix(span);
            rebase_expr(operand, fix);
        }
        Expr::Binary { lhs, rhs, span, .. } => {
            fix(span);
            rebase_expr(lhs, fix);
            rebase_expr(rhs, fix);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            span,
        } => {
            fix(span);
            rebase_expr(cond, fix);
            rebase_expr(then_expr, fix);
            rebase_expr(else_expr, fix);
        }
        Expr::Concat { parts, span } => {
            fix(span);
            for p in parts {
                rebase_expr(p, fix);
            }
        }
        Expr::Repeat { count, expr, span } => {
            fix(span);
            rebase_expr(count, fix);
            rebase_expr(expr, fix);
        }
        Expr::Index { index, span, .. } => {
            fix(span);
            rebase_expr(index, fix);
        }
        Expr::PartSelect { msb, lsb, span, .. } => {
            fix(span);
            rebase_expr(msb, fix);
            rebase_expr(lsb, fix);
        }
        Expr::IndexedPartSelect {
            start, width, span, ..
        } => {
            fix(span);
            rebase_expr(start, fix);
            rebase_expr(width, fix);
        }
    }
}

/// Parses each chunk independently and reassembles the full-file
/// [`SourceUnit`], rebasing spans so the result is indistinguishable
/// from `parse(file, source)`.
///
/// `reuse` is consulted per chunk with the chunk's raw fingerprint; on a
/// hit the cached module (already 0-based) is cloned instead of
/// re-parsed. Returns `None` if any chunk fails to parse — the caller
/// falls back to the full-file parse so error reporting is untouched.
#[must_use]
pub fn assemble_unit(
    file: FileId,
    chunks: &[ModuleChunk],
    mut reuse: impl FnMut(u64) -> Option<Module>,
) -> Option<SourceUnit> {
    let mut modules = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let mut m = match reuse(chunk.raw_fingerprint()) {
            Some(m) => m,
            None => {
                let unit = crate::parser::parse(FileId(0), &chunk.text).ok()?;
                let [m] = <[Module; 1]>::try_from(unit.modules).ok()?;
                m
            }
        };
        rebase_module_spans(&mut m, file, chunk.offset);
        modules.push(m);
    }
    Some(SourceUnit { modules })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const TWO_MODULES: &str = "\
// leading comment with the word module in it
module leaf(input [7:0] a, output [7:0] y);
  // endmodule in a comment
  assign y = a[3:0] + a[7 -: 4] + {2{a[1 +: 2]}};
endmodule

/* block comment: module nope; endmodule */
module top(input clk, input rst_n, input [7:0] a, output [7:0] y);
  wire [7:0] t;
  leaf u (.a(a), .y(t));
  reg [7:0] q;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 8'd0;
    else begin
      q <= t;
    end
  assign y = q;
endmodule
";

    #[test]
    fn split_finds_both_modules() {
        let chunks = split_modules(TWO_MODULES).expect("splittable");
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].name, "leaf");
        assert_eq!(chunks[1].name, "top");
        for c in &chunks {
            assert!(c.text.starts_with("module"));
            assert!(c.text.ends_with("endmodule"));
            assert_eq!(
                &TWO_MODULES[c.offset as usize..c.offset as usize + c.text.len()],
                c.text
            );
        }
    }

    #[test]
    fn split_rejects_malformed_shapes() {
        assert!(
            split_modules("module m(input a);").is_none(),
            "unterminated"
        );
        assert!(
            split_modules("stray; module m(); endmodule").is_none(),
            "stray top-level text"
        );
        assert!(
            split_modules("module m(); module n(); endmodule endmodule").is_none(),
            "nested module"
        );
        assert!(split_modules("endmodule").is_none(), "dangling endmodule");
        assert!(split_modules("/* unterminated").is_none());
    }

    #[test]
    fn split_tolerates_trailing_trivia() {
        let chunks = split_modules("module m(); endmodule // done\n").expect("split");
        assert_eq!(chunks.len(), 1);
        let chunks = split_modules("").expect("empty file");
        assert!(chunks.is_empty());
    }

    #[test]
    fn chunks_reassemble_exactly() {
        let file = FileId(3);
        let full = parse(file, TWO_MODULES).expect("full parse");
        let chunks = split_modules(TWO_MODULES).expect("split");
        let assembled = assemble_unit(file, &chunks, |_| None).expect("assemble");
        // Derived PartialEq covers every span, so this checks rebasing
        // byte-for-byte, not just structure.
        assert_eq!(full, assembled);
    }

    #[test]
    fn reuse_skips_the_parser_and_still_matches() {
        let file = FileId(0);
        let full = parse(file, TWO_MODULES).expect("full parse");
        let chunks = split_modules(TWO_MODULES).expect("split");
        // Prime a cache with 0-based chunk parses.
        let mut cache = std::collections::HashMap::new();
        for c in &chunks {
            let unit = parse(FileId(0), &c.text).expect("chunk parse");
            cache.insert(c.raw_fingerprint(), unit.modules[0].clone());
        }
        let mut hits = 0;
        let assembled = assemble_unit(file, &chunks, |fp| {
            hits += 1;
            cache.get(&fp).cloned()
        })
        .expect("assemble");
        assert_eq!(hits, 2);
        assert_eq!(full, assembled);
    }

    #[test]
    fn structural_fingerprint_ignores_formatting() {
        let a = parse(
            FileId(0),
            "module m(input a, output y); assign y = ~a; endmodule",
        )
        .expect("parse a");
        let b = parse(
            FileId(0),
            "// comment\nmodule m(input a,\n        output y);\n  assign y = ~a;\nendmodule\n",
        )
        .expect("parse b");
        assert_eq!(
            module_fingerprint(&a.modules[0]),
            module_fingerprint(&b.modules[0])
        );
        let c = parse(
            FileId(0),
            "module m(input a, output y); assign y = a; endmodule",
        )
        .expect("parse c");
        assert_ne!(
            module_fingerprint(&a.modules[0]),
            module_fingerprint(&c.modules[0])
        );
    }
}
