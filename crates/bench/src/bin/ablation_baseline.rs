//! **Ablation: SoCCAR vs random reset fuzzing** — Section III argues that
//! plain dynamic validation cannot "comprehensively exercise all possible
//! reset combinations". Two comparisons:
//!
//! 1. equal-budget detection across all five variants (most bugs here are
//!    power-on-visible, so a fuzzer does well — the paper\'s point is not
//!    that fuzzing finds nothing, but that it is *unsystematic*);
//! 2. reliability on the timing-sensitive implicit-governor bug of
//!    AutoSoC Variant #2: SoCCAR (Refined) detects it deterministically by
//!    scheduling clock-high reset assertions; the fuzzer (even granted
//!    random sub-cycle glitches) only hits the window by luck, so its
//!    detection rate across seeds is spotty.

use soccar::evaluation::evaluate_variant;
use soccar::SoccarConfig;
use soccar_bench::{fuzzer_rounds_to_detect, paper_config, random_baseline, render_table};
use soccar_cfg::GovernorAnalysis;
use soccar_soc::SocModel;

fn main() {
    // Part 1: equal-budget sweep over all variants.
    let mut rows = Vec::new();
    for spec in soccar_soc::variants() {
        let eval = evaluate_variant(&spec, paper_config()).expect("evaluates");
        let rounds = eval.report.concolic.rounds as u32;
        let fuzz = random_baseline(
            spec.soc,
            spec.number,
            rounds,
            16,
            0xFEED + u64::from(spec.number),
        );
        let fuzz_hits = spec
            .bugs
            .iter()
            .filter(|bug| {
                soccar_soc::expected_detectors(spec.soc, bug)
                    .iter()
                    .any(|d| fuzz.contains(d))
            })
            .count();
        rows.push(vec![
            eval.variant.clone(),
            format!("{}/{}", eval.detected(), eval.outcomes.len()),
            format!("{fuzz_hits}/{}", eval.outcomes.len()),
            rounds.to_string(),
        ]);
    }
    println!("Ablation — SoCCAR vs random reset fuzzing (equal simulation budget)");
    println!(
        "{}",
        render_table(
            &["Variant", "SoCCAR detected", "Fuzzer detected", "Rounds"],
            &rows
        )
    );

    // Part 2: rounds-to-detection on the timing-sensitive SHA256 implicit
    // bug. SoCCAR (Refined) reaches it at a *deterministic* round — the
    // clock-high sweep scheduled because the AR_CFG flagged a
    // clock-composed governor. The fuzzer gets there only when a random
    // sub-cycle glitch happens to land in the window with a plaintext
    // loaded, so its detection round varies wildly across seeds.
    let spec = soccar_soc::variant(SocModel::AutoSoc, 2).expect("variant");
    let refined = SoccarConfig {
        analysis: GovernorAnalysis::Refined,
        ..paper_config()
    };
    let eval = evaluate_variant(&spec, refined).expect("evaluates");
    let soccar_round = eval
        .report
        .concolic
        .witnesses
        .iter()
        .find(|w| w.property == "sha256-no-leak")
        .map(|w| w.round);
    let seeds = 10u64;
    let mut fuzz_rounds: Vec<Option<u32>> = Vec::new();
    for seed in 0..seeds {
        fuzz_rounds.push(fuzzer_rounds_to_detect(
            SocModel::AutoSoc,
            2,
            "sha256-no-leak",
            16,
            0xABCD + seed,
            200,
        ));
    }
    let found: Vec<u32> = fuzz_rounds.iter().flatten().copied().collect();
    let spread = if found.is_empty() {
        "never within 200 rounds".to_owned()
    } else {
        let min = found.iter().min().expect("nonempty");
        let max = found.iter().max().expect("nonempty");
        format!("{}–{} (found in {}/{} seeds)", min, max, found.len(), seeds)
    };
    println!("Timing-sensitive bug (SHA256 implicit governor, AutoSoC #2):");
    println!(
        "{}",
        render_table(
            &["Approach", "Round of detection", "Notes"],
            &[
                vec![
                    "SoCCAR (Refined)".into(),
                    soccar_round.map_or_else(|| "-".to_owned(), |r| r.to_string()),
                    "deterministic (AR_CFG-directed clock-high sweep)".into(),
                ],
                vec![
                    format!("Random fuzzer x{seeds} seeds"),
                    spread,
                    "depends on lucky sub-cycle glitches".into(),
                ],
            ]
        )
    );
}
