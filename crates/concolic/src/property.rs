//! Security properties — the "Restricts" of the paper's Algorithm 3.
//!
//! "Algorithm 3 can account for additional security constraints … a
//! representative constraint can be *after a reset the data memory must be
//! cleared*. Such constraints are generally available as part of the
//! security regression in industrial practice. The simulation checks each
//! such available constraint at each round; if any of the constraints is
//! violated, the simulation will return an invalidation message and
//! mention the module that violates the restriction."
//!
//! Property kinds map to the paper's three violation classes (Table III):
//!
//! * [`PropertyKind::ClearedAfterReset`] — information leakage (crypto
//!   registers must be scrubbed by the reset);
//! * [`PropertyKind::AssertedAfterReset`] — loss of data integrity (the
//!   address-range check must be re-armed by the reset);
//! * [`PropertyKind::AlwaysOneOf`] — privilege-mode availability (the
//!   privilege register must stay within the legal encodings);
//! * [`PropertyKind::NeverEqual`] — generic information-flow check (a
//!   public port must never expose a secret register).

use crate::coalg::{to_bv, CoAlgebra};
use soccar_rtl::design::{Design, NetId};
use soccar_rtl::value::LogicVec;
use soccar_sim::{Algebra, Simulator};
use soccar_smt::TermId;

/// What a property asserts. Signals are hierarchical net names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyKind {
    /// While the named reset domain is *asserted* (after `window` grace
    /// cycles from the assertion edge), `signal` must equal `expected`
    /// (typically zero: "after a reset the data memory must be cleared").
    /// Checking during assertion is what makes the property immune to
    /// legitimate post-release reloads.
    ClearedAfterReset {
        /// Domain source net name (see `ResetDomain::source`).
        domain: String,
        /// Monitored signal.
        signal: String,
        /// Required value.
        expected: LogicVec,
        /// Grace cycles after the assertion edge before checking starts
        /// (0 for asynchronous resets, whose effect is immediate).
        window: u64,
    },
    /// While the domain is asserted (after `window` grace cycles),
    /// `signal` must be non-zero — a guard/lock the reset must re-arm.
    AssertedAfterReset {
        /// Domain source net name.
        domain: String,
        /// Monitored signal.
        signal: String,
        /// Grace cycles.
        window: u64,
    },
    /// `signal` must always hold one of `allowed` (checked every cycle;
    /// X/Z counts as a violation once the signal has left reset).
    AlwaysOneOf {
        /// Monitored signal.
        signal: String,
        /// Legal values.
        allowed: Vec<LogicVec>,
    },
    /// `a` must never equal `b` while `enable` (if given) is truthy.
    NeverEqual {
        /// First signal (e.g. a ciphertext port).
        a: String,
        /// Second signal (e.g. a plaintext register).
        b: String,
        /// Optional qualifying signal.
        enable: Option<String>,
    },
}

/// A named security property with the module it blames on violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityProperty {
    /// Property name (unique within a run).
    pub name: String,
    /// The module/IP an invalidation message names (paper: "mention the
    /// module that violates the restriction").
    pub module: String,
    /// The assertion.
    pub kind: PropertyKind,
}

/// A property violation — the paper's *invalidation message*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violated property name.
    pub property: String,
    /// Module blamed.
    pub module: String,
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// Human-readable details (signal and value).
    pub details: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "INVALID [{}] module `{}` at cycle {}: {}",
            self.property, self.module, self.cycle, self.details
        )
    }
}

#[derive(Debug, Clone, Copy)]
enum MonitorState {
    /// Waiting for the domain reset to assert.
    Idle,
    /// Reset asserted at `since`; checking once the grace window elapses.
    InReset { since: u64, satisfied: bool },
}

/// Runtime monitor for one property.
#[derive(Debug)]
pub struct PropertyMonitor {
    property: SecurityProperty,
    signal_net: Option<NetId>,
    aux_net: Option<NetId>,
    domain_net: Option<NetId>,
    domain_active_low: bool,
    state: MonitorState,
    fired: bool,
}

impl PropertyMonitor {
    /// Resolves a property against a design. Domain polarity comes from
    /// `domains` (source name → active-low flag).
    ///
    /// # Errors
    ///
    /// Returns a message if a referenced signal does not exist.
    pub fn resolve(
        design: &Design,
        property: SecurityProperty,
        domains: &[(String, bool)],
    ) -> Result<PropertyMonitor, String> {
        let find = |name: &str| {
            design
                .find_net(name)
                .ok_or_else(|| format!("property `{}`: no net `{name}`", property.name))
        };
        let (signal_net, aux_net, domain_net, domain_active_low) = match &property.kind {
            PropertyKind::ClearedAfterReset { domain, signal, .. }
            | PropertyKind::AssertedAfterReset { domain, signal, .. } => {
                let d = find(domain)?;
                let active_low = domains
                    .iter()
                    .find(|(n, _)| n == domain)
                    .map_or(true, |(_, al)| *al);
                (Some(find(signal)?), None, Some(d), active_low)
            }
            PropertyKind::AlwaysOneOf { signal, .. } => (Some(find(signal)?), None, None, true),
            PropertyKind::NeverEqual { a, b, enable } => {
                let e = match enable {
                    Some(n) => Some(find(n)?),
                    None => None,
                };
                (Some(find(a)?), Some(find(b)?), e, true)
            }
        };
        Ok(PropertyMonitor {
            property,
            signal_net,
            aux_net,
            domain_net,
            domain_active_low,
            state: MonitorState::Idle,
            fired: false,
        })
    }

    /// The monitored property.
    #[must_use]
    pub fn property(&self) -> &SecurityProperty {
        &self.property
    }

    /// Re-arms the monitor for a new run.
    pub fn reset(&mut self) {
        self.state = MonitorState::Idle;
        self.fired = false;
    }

    fn domain_asserted<A: Algebra>(&self, sim: &Simulator<'_, A>) -> bool {
        let Some(net) = self.domain_net else {
            return false;
        };
        let v = sim.net_logic(net);
        match v.truthy() {
            Some(high) => high != self.domain_active_low,
            None => false,
        }
    }

    /// The net a resolved monitor must hold for `role`, or a degraded-path
    /// error naming the property (never a panic — an unresolved monitor is
    /// a monitoring gap, not a reason to abort the whole analysis).
    fn resolved_net(&self, net: Option<NetId>, role: &str) -> Result<NetId, String> {
        net.ok_or_else(|| {
            format!(
                "property `{}`: {role} net was never resolved",
                self.property.name
            )
        })
    }

    /// Checks the property at the end of a settled cycle; returns an
    /// invalidation message on (first) violation.
    ///
    /// # Errors
    ///
    /// Returns a message if the monitor's nets were never resolved (an
    /// internal misconfiguration). Callers fold this into the run's
    /// degraded health instead of aborting.
    pub fn check_cycle<A: Algebra>(
        &mut self,
        sim: &Simulator<'_, A>,
        cycle: u64,
    ) -> Result<Option<Violation>, String> {
        if self.fired {
            return Ok(None);
        }
        match &self.property.kind {
            PropertyKind::ClearedAfterReset {
                expected,
                window,
                signal,
                ..
            } => {
                let expected = expected.clone();
                let window = *window;
                let signal = signal.clone();
                self.check_post_reset(sim, cycle, window, &signal, move |v| {
                    v.case_eq(&expected).is_all_ones()
                })
            }
            PropertyKind::AssertedAfterReset { window, signal, .. } => {
                let window = *window;
                let signal = signal.clone();
                self.check_post_reset(sim, cycle, window, &signal, |v| v.truthy() == Some(true))
            }
            PropertyKind::AlwaysOneOf { signal, allowed } => {
                let net = self.resolved_net(self.signal_net, "signal")?;
                let v = sim.net_logic(net);
                if v.has_unknown() {
                    // X before any activity is the pre-reset don't-care.
                    return Ok(None);
                }
                if allowed.iter().any(|a| v.case_eq(a).is_all_ones()) {
                    return Ok(None);
                }
                self.fired = true;
                Ok(Some(Violation {
                    property: self.property.name.clone(),
                    module: self.property.module.clone(),
                    cycle,
                    details: format!("`{signal}` holds illegal value {v}"),
                }))
            }
            PropertyKind::NeverEqual { a, b, .. } => {
                if let Some(en) = self.domain_net {
                    if sim.net_logic(en).truthy() != Some(true) {
                        return Ok(None);
                    }
                }
                let na = self.resolved_net(self.signal_net, "signal")?;
                let nb = self.resolved_net(self.aux_net, "aux")?;
                let va = sim.net_logic(na);
                let vb = sim.net_logic(nb);
                if va.has_unknown() || vb.has_unknown() {
                    return Ok(None);
                }
                if !va.case_eq(vb).is_all_ones() {
                    return Ok(None);
                }
                self.fired = true;
                Ok(Some(Violation {
                    property: self.property.name.clone(),
                    module: self.property.module.clone(),
                    cycle,
                    details: format!("`{a}` equals `{b}` (= {va}): secret exposed"),
                }))
            }
        }
    }

    /// Builds the 1-bit symbolic "property holds here" term for this cycle,
    /// when the monitored net currently carries a symbolic shadow and the
    /// property's qualifying condition (domain asserted / enable truthy) is
    /// concretely met.
    ///
    /// The term is a *proof obligation*, not an assumption: callers record
    /// it as a [`crate::coalg::CheckObservation`] so the incremental flip
    /// window can pre-blast real security-check formulas (Tseitin-only,
    /// satisfiability-preserving — answers never change). The gating
    /// mirrors [`PropertyMonitor::check_cycle`] modulo grace-window
    /// bookkeeping, which only suppresses *reports*, never obligations.
    pub fn symbolic_obligation(&self, sim: &mut Simulator<'_, CoAlgebra>) -> Option<TermId> {
        match &self.property.kind {
            PropertyKind::ClearedAfterReset { expected, .. } => {
                if !self.domain_asserted(sim) || expected.has_unknown() {
                    return None;
                }
                let t = sim.net_value(self.signal_net?).term?;
                let expected = to_bv(expected);
                let g = &mut sim.algebra_mut().graph;
                let c = g.constant(expected);
                Some(g.eq(t, c))
            }
            PropertyKind::AssertedAfterReset { .. } => {
                if !self.domain_asserted(sim) {
                    return None;
                }
                let t = sim.net_value(self.signal_net?).term?;
                Some(sim.algebra_mut().graph.red_or(t))
            }
            PropertyKind::AlwaysOneOf { allowed, .. } => {
                let t = sim.net_value(self.signal_net?).term?;
                let legal: Vec<_> = allowed
                    .iter()
                    .filter(|a| !a.has_unknown())
                    .map(to_bv)
                    .collect();
                let g = &mut sim.algebra_mut().graph;
                let mut acc: Option<TermId> = None;
                for a in legal {
                    let c = g.constant(a);
                    let eq = g.eq(t, c);
                    acc = Some(match acc {
                        Some(prev) => g.or(prev, eq),
                        None => eq,
                    });
                }
                acc
            }
            PropertyKind::NeverEqual { .. } => {
                if let Some(en) = self.domain_net {
                    if sim.net_logic(en).truthy() != Some(true) {
                        return None;
                    }
                }
                let va = sim.net_value(self.signal_net?).clone();
                let vb = sim.net_value(self.aux_net?).clone();
                if !va.is_symbolic() && !vb.is_symbolic() {
                    return None;
                }
                if va.concrete.has_unknown() || vb.concrete.has_unknown() {
                    return None;
                }
                let g = &mut sim.algebra_mut().graph;
                let ta = match va.term {
                    Some(t) => t,
                    None => g.constant(to_bv(&va.concrete)),
                };
                let tb = match vb.term {
                    Some(t) => t,
                    None => g.constant(to_bv(&vb.concrete)),
                };
                Some(g.ne(ta, tb))
            }
        }
    }

    fn check_post_reset<A: Algebra>(
        &mut self,
        sim: &Simulator<'_, A>,
        cycle: u64,
        window: u64,
        signal: &str,
        ok: impl Fn(&LogicVec) -> bool,
    ) -> Result<Option<Violation>, String> {
        let asserted = self.domain_asserted(sim);
        match self.state {
            MonitorState::Idle => {
                if asserted {
                    self.state = MonitorState::InReset {
                        since: cycle,
                        satisfied: false,
                    };
                    // Asynchronous resets act immediately: check this
                    // cycle if no grace was requested.
                    return self.check_post_reset(sim, cycle, window, signal, ok);
                }
                Ok(None)
            }
            MonitorState::InReset { since, satisfied } => {
                if !asserted {
                    self.state = MonitorState::Idle;
                    return Ok(None);
                }
                if satisfied || cycle < since + window {
                    return Ok(None);
                }
                let net = self.resolved_net(self.signal_net, "signal")?;
                let v = sim.net_logic(net);
                if ok(v) {
                    self.state = MonitorState::InReset {
                        since,
                        satisfied: true,
                    };
                    return Ok(None);
                }
                self.fired = true;
                self.state = MonitorState::Idle;
                Ok(Some(Violation {
                    property: self.property.name.clone(),
                    module: self.property.module.clone(),
                    cycle,
                    details: format!("`{signal}` = {v} while reset asserted (grace {window})"),
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_sim::{InitPolicy, Simulator};

    const LEAKY: &str =
        "module m(input clk, input rst_n, output reg [7:0] key, output reg [7:0] ctr);
        always @(posedge clk or negedge rst_n)
          if (!rst_n) ctr <= 8'd0;              // BUG: key not cleared
          else begin ctr <= ctr + 8'd1; key <= 8'hA5; end
      endmodule";

    const CLEAN: &str =
        "module m(input clk, input rst_n, output reg [7:0] key, output reg [7:0] ctr);
        always @(posedge clk or negedge rst_n)
          if (!rst_n) begin ctr <= 8'd0; key <= 8'd0; end
          else begin ctr <= ctr + 8'd1; key <= 8'hA5; end
      endmodule";

    fn run_cleared_check(src: &str) -> Vec<Violation> {
        let (design, _) = soccar_rtl::compile("m.v", src, "m").expect("compile");
        let prop = SecurityProperty {
            name: "key-cleared".into(),
            module: "m".into(),
            kind: PropertyKind::ClearedAfterReset {
                domain: "m.rst_n".into(),
                signal: "m.key".into(),
                expected: LogicVec::zeros(8),
                window: 0,
            },
        };
        let mut mon =
            PropertyMonitor::resolve(&design, prop, &[("m.rst_n".into(), true)]).expect("resolve");
        let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
        let clk = design.find_net("m.clk").expect("clk");
        let rst = design.find_net("m.rst_n").expect("rst");
        let mut violations = Vec::new();
        let drive = |sim: &mut Simulator<_>,
                     rst_v: u64,
                     cycle: u64,
                     mon: &mut PropertyMonitor,
                     out: &mut Vec<Violation>| {
            sim.write_input(rst, LogicVec::from_u64(1, rst_v))
                .expect("rst");
            sim.settle().expect("settle");
            sim.tick(clk).expect("tick");
            out.extend(mon.check_cycle(sim, cycle).expect("resolved monitor"));
        };
        // Run, reset mid-way, release, observe.
        drive(&mut sim, 1, 0, &mut mon, &mut violations);
        drive(&mut sim, 1, 1, &mut mon, &mut violations);
        drive(&mut sim, 0, 2, &mut mon, &mut violations); // async assert
        drive(&mut sim, 1, 3, &mut mon, &mut violations); // release → watch
        drive(&mut sim, 1, 4, &mut mon, &mut violations);
        drive(&mut sim, 1, 5, &mut mon, &mut violations);
        violations
    }

    #[test]
    fn leaky_design_fires_cleared_after_reset() {
        let v = run_cleared_check(LEAKY);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].module, "m");
        assert!(v[0].details.contains("key"));
    }

    #[test]
    fn clean_design_passes() {
        let v = run_cleared_check(CLEAN);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn always_one_of_catches_illegal_state() {
        let src = "module m(input clk, input rst_n, output reg [1:0] priv);
            always @(posedge clk or negedge rst_n)
              if (!rst_n) priv <= 2'b10;   // BUG: undefined privilege level
              else priv <= 2'b11;
          endmodule";
        let (design, _) = soccar_rtl::compile("m.v", src, "m").expect("compile");
        let prop = SecurityProperty {
            name: "priv-legal".into(),
            module: "m".into(),
            kind: PropertyKind::AlwaysOneOf {
                signal: "m.priv".into(),
                allowed: vec![
                    LogicVec::from_u64(2, 0b00),
                    LogicVec::from_u64(2, 0b01),
                    LogicVec::from_u64(2, 0b11),
                ],
            },
        };
        let mut mon = PropertyMonitor::resolve(&design, prop, &[]).expect("resolve");
        let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
        let rst = design.find_net("m.rst_n").expect("rst");
        sim.write_input(rst, LogicVec::from_u64(1, 0)).expect("rst");
        sim.settle().expect("settle");
        let v = mon
            .check_cycle(&sim, 0)
            .expect("resolved monitor")
            .expect("violation");
        assert!(v.details.contains("illegal"));
        // Monitor fires once.
        assert!(mon
            .check_cycle(&sim, 1)
            .expect("resolved monitor")
            .is_none());
    }

    #[test]
    fn never_equal_detects_exposure() {
        let src = "module m(input [7:0] secret, output [7:0] port, input en);
            assign port = en ? secret : 8'd0;
          endmodule";
        let (design, _) = soccar_rtl::compile("m.v", src, "m").expect("compile");
        let prop = SecurityProperty {
            name: "no-leak".into(),
            module: "m".into(),
            kind: PropertyKind::NeverEqual {
                a: "m.port".into(),
                b: "m.secret".into(),
                enable: Some("m.en".into()),
            },
        };
        let mut mon = PropertyMonitor::resolve(&design, prop, &[]).expect("resolve");
        let mut sim = Simulator::concrete(&design, InitPolicy::Zeros);
        let sec = design.find_net("m.secret").expect("secret");
        let en = design.find_net("m.en").expect("en");
        sim.write_input(sec, LogicVec::from_u64(8, 0x5A))
            .expect("sec");
        sim.write_input(en, LogicVec::from_u64(1, 0)).expect("en");
        sim.settle().expect("settle");
        assert!(
            mon.check_cycle(&sim, 0)
                .expect("resolved monitor")
                .is_none(),
            "disabled: no check"
        );
        sim.write_input(en, LogicVec::from_u64(1, 1)).expect("en");
        sim.settle().expect("settle");
        let v = mon
            .check_cycle(&sim, 1)
            .expect("resolved monitor")
            .expect("violation");
        assert!(v.details.contains("secret exposed"));
    }

    #[test]
    fn asserted_after_reset_fires_when_guard_stays_down() {
        let src = "module m(input clk, input rst_n, output reg guard);
            always @(posedge clk or negedge rst_n)
              if (!rst_n) guard <= 1'b0;   // BUG: guard must re-arm to 1
              else guard <= guard;
          endmodule";
        let (design, _) = soccar_rtl::compile("m.v", src, "m").expect("compile");
        let prop = SecurityProperty {
            name: "range-check-armed".into(),
            module: "m".into(),
            kind: PropertyKind::AssertedAfterReset {
                domain: "m.rst_n".into(),
                signal: "m.guard".into(),
                window: 0,
            },
        };
        let mut mon =
            PropertyMonitor::resolve(&design, prop, &[("m.rst_n".into(), true)]).expect("resolve");
        let mut sim = Simulator::concrete(&design, InitPolicy::Ones);
        let clk = design.find_net("m.clk").expect("clk");
        let rst = design.find_net("m.rst_n").expect("rst");
        let mut violations = Vec::new();
        for (cycle, rv) in [(0u64, 1u64), (1, 0), (2, 1), (3, 1), (4, 1), (5, 1)] {
            sim.write_input(rst, LogicVec::from_u64(1, rv))
                .expect("rst");
            sim.settle().expect("settle");
            sim.tick(clk).expect("tick");
            violations.extend(mon.check_cycle(&sim, cycle).expect("resolved monitor"));
        }
        assert_eq!(violations.len(), 1, "{violations:?}");
    }

    #[test]
    fn resolve_rejects_unknown_signals() {
        let (design, _) =
            soccar_rtl::compile("m.v", "module m(input a); endmodule", "m").expect("compile");
        let prop = SecurityProperty {
            name: "p".into(),
            module: "m".into(),
            kind: PropertyKind::AlwaysOneOf {
                signal: "m.nope".into(),
                allowed: vec![LogicVec::from_u64(1, 0)],
            },
        };
        assert!(PropertyMonitor::resolve(&design, prop, &[]).is_err());
    }
}
