//! # soccar-exec
//!
//! The parallel execution layer of the SoCCAR pipeline: a dependency-free,
//! hand-rolled **scoped worker pool** (`std::thread` + channels) exposing a
//! deterministic [`parallel_map`] API.
//!
//! Every stage that fans out through this crate obeys the project-wide
//! **determinism contract** (DESIGN.md §9):
//!
//! * results are merged **by item index**, never by completion order, so
//!   the output of `parallel_map(jobs, items, f)` is byte-for-byte the
//!   same `Vec` for every `jobs` value;
//! * the worker function receives `&T` and must not communicate with its
//!   siblings — each task's result may depend only on its input;
//! * a panicking task does not poison its siblings: remaining tasks still
//!   run, and what happens afterwards is the caller's
//!   [`FailurePolicy`] — [`FailurePolicy::FailFast`] re-raises the payload
//!   of the **lowest-index** panic on the caller's thread (again
//!   independent of scheduling), while [`FailurePolicy::KeepGoing`] turns
//!   each panic into an index-ordered [`TaskOutcome::Failed`] slot that
//!   preserves the panic message.
//!
//! The pool is *scoped*: workers borrow `items` and `f` from the caller's
//! stack frame and are always joined before [`parallel_map`] returns, so
//! no `'static` bounds are required and no threads outlive the call.
//!
//! Job-count selection is centralized in [`resolve_jobs`]: an explicit
//! request (`--jobs N`) wins, then the `SOCCAR_JOBS` environment variable,
//! then the machine's available parallelism.
//!
//! This crate also hosts the deterministic fault-injection plans
//! ([`FaultPlan`], the `SOCCAR_FAULTS` variable) because it sits below
//! every other crate in the workspace — smt, cfg, concolic, and core all
//! consult the same plan type at their named injection points.
//!
//! # Examples
//!
//! ```
//! use soccar_exec::parallel_map;
//!
//! let squares = parallel_map(4, &[1u64, 2, 3, 4], |n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // input order, always
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod faultplan;
mod semaphore;

pub use faultplan::{FaultPlan, FAULTS_ENV, KNOWN_POINTS};
pub use semaphore::{Semaphore, SemaphoreGuard};

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The environment variable consulted by [`resolve_jobs`].
pub const JOBS_ENV: &str = "SOCCAR_JOBS";

/// Resolves the worker count for a pool.
///
/// Precedence:
///
/// 1. `explicit` (a `--jobs N` flag), when `Some(n)` with `n > 0`;
/// 2. the `SOCCAR_JOBS` environment variable, when set to a positive
///    integer (anything else is ignored);
/// 3. [`std::thread::available_parallelism`], falling back to 1.
///
/// `Some(0)` is treated like `None` so callers can plumb a plain
/// `usize` config field through with `0 = auto`.
#[must_use]
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    if let Ok(s) = std::env::var(JOBS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// What a pool does when a task panics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// After all tasks finish, re-raise the payload of the lowest-index
    /// panicking task on the caller's thread (the historical behavior).
    #[default]
    FailFast,
    /// Convert each panic into an index-ordered [`TaskOutcome::Failed`]
    /// slot carrying the panic message, and keep going. Merging stays
    /// deterministic: the failed slot sits exactly where the result
    /// would have.
    KeepGoing,
}

/// The per-task result of a [`parallel_map_policy`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome<R> {
    /// The task completed and produced a value.
    Ok(R),
    /// The task panicked; `panic` is the original payload rendered as a
    /// string (the `&str`/`String` payload verbatim, or a placeholder for
    /// exotic payload types), so degraded reports can say *why* a worker
    /// died.
    Failed {
        /// The panic payload as a message.
        panic: String,
    },
}

impl<R> TaskOutcome<R> {
    /// The value if the task succeeded.
    pub fn ok(self) -> Option<R> {
        match self {
            TaskOutcome::Ok(r) => Some(r),
            TaskOutcome::Failed { .. } => None,
        }
    }

    /// A reference to the value if the task succeeded.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            TaskOutcome::Ok(r) => Some(r),
            TaskOutcome::Failed { .. } => None,
        }
    }

    /// The panic message if the task failed.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            TaskOutcome::Ok(_) => None,
            TaskOutcome::Failed { panic } => Some(panic),
        }
    }

    /// `true` if the task panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, TaskOutcome::Failed { .. })
    }
}

/// Renders a caught panic payload as a string, preserving `&str` and
/// `String` payloads (the overwhelmingly common cases from `panic!` and
/// `assert!`) verbatim.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Worker-utilization counters for one `parallel_map` call (or several,
/// via [`PoolStats::absorb`]). These make a speedup *observable* — the
/// pipeline's stage reports carry them — but they are wall-clock
/// measurements and therefore excluded from canonical (deterministic)
/// report serializations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Workers the pool ran with (the resolved job count).
    pub jobs: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Summed task execution time across all workers.
    pub busy: Duration,
    /// Wall-clock time of the mapped region.
    pub elapsed: Duration,
}

impl PoolStats {
    /// Mean worker utilization in `[0, 1]`: busy time divided by the
    /// wall-clock capacity (`elapsed × jobs`). 1.0 means every worker was
    /// solving the whole time; values near `1/jobs` mean the work was
    /// effectively serial.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = self.elapsed.as_secs_f64() * self.jobs as f64;
        if capacity <= f64::EPSILON {
            0.0
        } else {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        }
    }

    /// Folds another call's counters into this one (job counts take the
    /// maximum, everything else accumulates).
    pub fn absorb(&mut self, other: &PoolStats) {
        self.jobs = self.jobs.max(other.jobs);
        self.tasks += other.tasks;
        self.busy += other.busy;
        self.elapsed += other.elapsed;
    }
}

type RawResult<R> = Result<R, Box<dyn std::any::Any + Send>>;

/// The shared pool core: runs every task, captures panics, and returns
/// per-task `Result`s **in input order** together with the pool's
/// utilization counters. All public entry points are policy adapters
/// over this.
fn parallel_map_raw<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<RawResult<R>>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = if jobs == 0 { resolve_jobs(None) } else { jobs };
    let started = Instant::now();
    let workers = jobs.min(items.len()).max(1);

    if workers <= 1 {
        // Inline fast path: no threads, but the same panic-capture
        // semantics (later items still run so side-effect-free tasks
        // behave identically to the pooled path).
        let mut busy = Duration::ZERO;
        let mut out: Vec<RawResult<R>> = Vec::with_capacity(items.len());
        for item in items {
            let t = Instant::now();
            out.push(catch_unwind(AssertUnwindSafe(|| f(item))));
            busy += t.elapsed();
        }
        let stats = PoolStats {
            jobs: 1,
            tasks: items.len(),
            busy,
            elapsed: started.elapsed(),
        };
        return (out, stats);
    }

    // Work queue: a shared atomic cursor hands indices to workers; each
    // worker sends `(index, result, task_time)` back over a channel.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RawResult<R>, Duration)>();
    let mut slots: Vec<Option<RawResult<R>>> = (0..items.len()).map(|_| None).collect();
    let mut busy = Duration::ZERO;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let t = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                // A send can only fail if the receiver is gone, which
                // cannot happen while the scope borrows it.
                let _ = tx.send((i, result, t.elapsed()));
            });
        }
        drop(tx);
        for (i, result, took) in &rx {
            busy += took;
            slots[i] = Some(result);
        }
    });

    let stats = PoolStats {
        jobs: workers,
        tasks: items.len(),
        busy,
        elapsed: started.elapsed(),
    };
    (
        slots
            .into_iter()
            .map(|r| r.expect("every index produced a result"))
            .collect(),
        stats,
    )
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in **input order** (see the module docs for the determinism contract).
///
/// `jobs == 0` resolves automatically as in [`resolve_jobs`]; `jobs == 1`
/// (or a single item) runs inline on the calling thread with no pool.
///
/// # Panics
///
/// If one or more tasks panic, the panic payload of the lowest-index
/// failing task is re-raised after all tasks have finished
/// ([`FailurePolicy::FailFast`]).
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_stats(jobs, items, f).0
}

/// Like [`parallel_map`], additionally returning the pool's utilization
/// counters for stage reporting.
///
/// # Panics
///
/// As [`parallel_map`].
pub fn parallel_map_stats<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (raw, stats) = parallel_map_raw(jobs, items, f);
    let mut out = Vec::with_capacity(raw.len());
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    // `raw` is index-ordered, so the first error seen is the
    // lowest-index panic and its original payload is what re-raises.
    for r in raw {
        match r {
            Ok(v) => out.push(v),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    (out, stats)
}

/// Like [`parallel_map_stats`], but with an explicit [`FailurePolicy`]:
/// under [`FailurePolicy::KeepGoing`] each panicking task yields an
/// index-ordered [`TaskOutcome::Failed`] slot (carrying the panic
/// message) instead of aborting the caller.
///
/// # Panics
///
/// Under [`FailurePolicy::FailFast`], as [`parallel_map`]; never under
/// [`FailurePolicy::KeepGoing`].
pub fn parallel_map_policy<T, R, F>(
    jobs: usize,
    items: &[T],
    policy: FailurePolicy,
    f: F,
) -> (Vec<TaskOutcome<R>>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (raw, stats) = parallel_map_raw(jobs, items, f);
    if policy == FailurePolicy::FailFast {
        if let Some(pos) = raw.iter().position(Result::is_err) {
            let mut raw = raw;
            let Err(p) = raw.swap_remove(pos) else {
                unreachable!("position() found an Err")
            };
            resume_unwind(p);
        }
    }
    let outcomes = raw
        .into_iter()
        .map(|r| match r {
            Ok(v) => TaskOutcome::Ok(v),
            Err(p) => TaskOutcome::Failed {
                panic: panic_message(p.as_ref()),
            },
        })
        .collect();
    (outcomes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_arrive_in_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|n| n * 3 + 1).collect();
        for jobs in [1, 2, 4, 16] {
            assert_eq!(parallel_map(jobs, &items, |n| n * 3 + 1), expect);
        }
    }

    #[test]
    fn staggered_completion_still_merges_by_index() {
        // Later items finish first; the merge must not care.
        let items: Vec<u64> = (0..8).collect();
        let out = parallel_map(4, &items, |n| {
            std::thread::sleep(Duration::from_millis(8 - *n));
            *n
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |n| *n).is_empty());
        assert_eq!(parallel_map(4, &[7u32], |n| n + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_resolves_automatically() {
        assert_eq!(parallel_map(0, &[1u32, 2], |n| *n), vec![1, 2]);
    }

    #[test]
    fn all_tasks_run_even_when_one_panics() {
        let ran = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(2, &[0u32, 1, 2, 3], |n| {
                ran.fetch_add(1, Ordering::SeqCst);
                assert!(*n != 1, "boom {n}");
                *n
            })
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 4, "siblings kept running");
    }

    #[test]
    fn lowest_index_panic_wins() {
        for jobs in [1, 4] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                parallel_map(jobs, &[0u32, 1, 2, 3], |n| {
                    if *n >= 2 {
                        panic!("task {n} failed");
                    }
                    *n
                })
            }));
            let payload = result.expect_err("panics propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .expect("string payload");
            assert_eq!(msg, "task 2 failed", "jobs={jobs}");
        }
    }

    #[test]
    fn keep_going_yields_failed_slots_in_place() {
        for jobs in [1, 4] {
            let (out, stats) =
                parallel_map_policy(jobs, &[0u32, 1, 2, 3], FailurePolicy::KeepGoing, |n| {
                    if *n == 2 {
                        panic!("task {n} exploded");
                    }
                    *n * 10
                });
            assert_eq!(stats.tasks, 4);
            assert_eq!(out[0], TaskOutcome::Ok(0), "jobs={jobs}");
            assert_eq!(out[1], TaskOutcome::Ok(10));
            assert_eq!(
                out[2],
                TaskOutcome::Failed {
                    panic: "task 2 exploded".to_owned()
                },
                "panic payload preserved, jobs={jobs}"
            );
            assert_eq!(out[3], TaskOutcome::Ok(30));
            assert_eq!(out[2].panic_message(), Some("task 2 exploded"));
            assert!(out[2].is_failed());
            assert_eq!(out[3].as_ok(), Some(&30));
        }
    }

    #[test]
    fn fail_fast_policy_rethrows_original_payload() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_policy(2, &[0u32, 1], FailurePolicy::FailFast, |n| {
                assert!(*n != 1, "kaboom");
                *n
            })
        }));
        let payload = result.expect_err("panics propagate");
        assert!(panic_message(payload.as_ref()).contains("kaboom"));
    }

    #[test]
    fn panic_message_preserves_str_and_string_payloads() {
        let p1 = catch_unwind(|| panic!("static message")).expect_err("panics");
        assert_eq!(panic_message(p1.as_ref()), "static message");
        let p2 = catch_unwind(|| panic!("formatted {}", 42)).expect_err("panics");
        assert_eq!(panic_message(p2.as_ref()), "formatted 42");
        let p3 = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).expect_err("panics");
        assert_eq!(panic_message(p3.as_ref()), "<non-string panic payload>");
    }

    #[test]
    fn stats_count_tasks_and_busy_time() {
        let (out, stats) = parallel_map_stats(2, &[1u32, 2, 3], |n| {
            std::thread::sleep(Duration::from_millis(2));
            *n
        });
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.tasks, 3);
        assert_eq!(stats.jobs, 2);
        assert!(stats.busy >= Duration::from_millis(6));
        assert!(stats.elapsed > Duration::ZERO);
        assert!(stats.utilization() > 0.0);
        assert!(stats.utilization() <= 1.0);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = PoolStats {
            jobs: 2,
            tasks: 3,
            busy: Duration::from_millis(10),
            elapsed: Duration::from_millis(6),
        };
        let b = PoolStats {
            jobs: 4,
            tasks: 5,
            busy: Duration::from_millis(2),
            elapsed: Duration::from_millis(1),
        };
        a.absorb(&b);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.tasks, 8);
        assert_eq!(a.busy, Duration::from_millis(12));
        assert_eq!(a.elapsed, Duration::from_millis(7));
        assert_eq!(PoolStats::default().utilization(), 0.0);
    }

    #[test]
    fn explicit_jobs_beat_everything() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(Some(0)) >= 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn borrowed_state_is_usable_from_tasks() {
        // The scoped pool lets tasks borrow caller-stack data.
        let table = [10u64, 20, 30];
        let out = parallel_map(4, &[0usize, 1, 2], |i| table[*i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }
}
