//! Trace sinks: newline-delimited JSON and a human-readable span tree.
//!
//! The NDJSON stream is schema-versioned ([`TRACE_SCHEMA_VERSION`]) and
//! comes in two flavours:
//!
//! * **full** ([`to_ndjson`]) — spans with `start_us`/`elapsed_us`, all
//!   counters, gauges, and histograms;
//! * **canonical** ([`to_ndjson_canonical`]) — the deterministic view:
//!   span timing fields and all gauges (which carry wall-clock-derived
//!   values) are dropped, so two runs of the same design with the same
//!   configuration emit byte-identical streams regardless of the worker
//!   count. Golden tests and CI gates compare this form.
//!
//! Line grammar (one JSON object per line, `type` first):
//!
//! ```text
//! {"type":"meta","schema":1,"tool":"soccar-obs","canonical":false}
//! {"type":"span","id":0,"parent":null,"name":"pipeline.analyze","fields":{...},"start_us":12,"elapsed_us":3456}
//! {"type":"counter","name":"smt.queries","value":42}
//! {"type":"gauge","name":"exec.extract.utilization","value":0.87}
//! {"type":"histogram","name":"smt.sat_clauses","count":9,"sum":1234,"buckets":[[255,2],[511,7]]}
//! ```

use std::fmt::Write as _;

use crate::recorder::{Histogram, TraceSnapshot, Value};

/// Version of the NDJSON trace schema. Bump on any breaking change to the
/// line grammar; additive fields do not bump it (see docs/OBSERVABILITY.md
/// for the policy).
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Appends `s` as a JSON string literal with escaping.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn push_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => push_json_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn push_fields(out: &mut String, fields: &[(String, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_value(out, v);
    }
    out.push('}');
}

fn push_histogram(out: &mut String, name: &str, h: &Histogram) {
    out.push_str("{\"type\":\"histogram\",\"name\":");
    push_json_str(out, name);
    let _ = write!(
        out,
        ",\"count\":{},\"sum\":{},\"buckets\":[",
        h.count, h.sum
    );
    for (i, (bits, count)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{count}]", Histogram::bucket_upper(*bits));
    }
    out.push_str("]}\n");
}

fn render(snap: &TraceSnapshot, canonical: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"schema\":{TRACE_SCHEMA_VERSION},\"tool\":\"soccar-obs\",\"canonical\":{canonical}}}"
    );
    for (id, span) in snap.spans.iter().enumerate() {
        let _ = write!(out, "{{\"type\":\"span\",\"id\":{id},\"parent\":");
        match span.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        push_json_str(&mut out, &span.name);
        out.push_str(",\"fields\":");
        push_fields(&mut out, &span.fields);
        if !canonical {
            let _ = write!(out, ",\"start_us\":{}", span.start.as_micros());
            out.push_str(",\"elapsed_us\":");
            match span.elapsed {
                Some(e) => {
                    let _ = write!(out, "{}", e.as_micros());
                }
                None => out.push_str("null"),
            }
        }
        out.push_str("}\n");
    }
    for (name, value) in &snap.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        push_json_str(&mut out, name);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    if !canonical {
        for (name, value) in &snap.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"value\":");
            push_json_value(&mut out, &Value::F64(*value));
            out.push_str("}\n");
        }
    }
    for (name, h) in &snap.histograms {
        push_histogram(&mut out, name, h);
    }
    out
}

/// Serializes a snapshot as full NDJSON (timing included).
#[must_use]
pub fn to_ndjson(snap: &TraceSnapshot) -> String {
    render(snap, false)
}

/// Serializes a snapshot as canonical NDJSON: no span timing, no gauges.
/// Byte-identical across runs and worker counts for the same design and
/// configuration.
#[must_use]
pub fn to_ndjson_canonical(snap: &TraceSnapshot) -> String {
    render(snap, true)
}

/// Renders the span tree with durations and fields, for `--verbose`,
/// followed by the run's counters and histogram summaries:
///
/// ```text
/// pipeline.analyze  128.4ms
///   rtl.parse  3.1ms  modules=12
///   concolic.round  9.8ms  round=1
/// counters:
///   smt.incremental_calls  42
/// histograms:
///   smt.propagations  count=42 sum=9001
/// ```
#[must_use]
pub fn render_tree(snap: &TraceSnapshot) -> String {
    let mut depth = vec![0usize; snap.spans.len()];
    for (i, span) in snap.spans.iter().enumerate() {
        depth[i] = span.parent.map_or(0, |p| depth[p] + 1);
    }
    let mut out = String::new();
    for (i, span) in snap.spans.iter().enumerate() {
        for _ in 0..depth[i] {
            out.push_str("  ");
        }
        out.push_str(&span.name);
        match span.elapsed {
            Some(e) => {
                let _ = write!(out, "  {:.1}ms", e.as_secs_f64() * 1e3);
            }
            None => out.push_str("  (open)"),
        }
        for (k, v) in &span.fields {
            out.push_str("  ");
            out.push_str(k);
            out.push('=');
            match v {
                Value::Str(s) => out.push_str(s),
                other => push_json_value(&mut out, other),
            }
        }
        out.push('\n');
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name}  {value}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snap.histograms {
            let _ = writeln!(out, "  {name}  count={} sum={}", h.count, h.sum);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> TraceSnapshot {
        let rec = Recorder::enabled();
        let mut outer = rec.span("pipeline.analyze");
        outer.record("top", "soc");
        let inner = rec.span("rtl.parse");
        rec.counter_add("rtl.modules", 12);
        rec.gauge_set("exec.util", 0.5);
        rec.histogram_record("smt.clauses", 300);
        rec.histogram_record("smt.clauses", 5);
        inner.close();
        outer.close();
        rec.snapshot()
    }

    #[test]
    fn ndjson_lines_have_type_first_and_meta_header() {
        let text = to_ndjson(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"meta\",\"schema\":1,"));
        assert!(lines.iter().all(|l| l.starts_with("{\"type\":\"")));
        assert!(lines.iter().all(|l| l.ends_with('}')));
        assert!(text.contains("\"elapsed_us\":"));
        assert!(text.contains("\"type\":\"gauge\""));
        assert!(text.contains("\"buckets\":[[7,1],[511,1]]"));
    }

    #[test]
    fn canonical_drops_timing_and_gauges() {
        let text = to_ndjson_canonical(&sample());
        assert!(!text.contains("elapsed_us"));
        assert!(!text.contains("start_us"));
        assert!(!text.contains("\"type\":\"gauge\""));
        assert!(text.contains("\"canonical\":true"));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"type\":\"histogram\""));
    }

    #[test]
    fn tree_indents_children() {
        let tree = render_tree(&sample());
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("pipeline.analyze  "));
        assert!(lines[0].contains("top=soc"));
        assert!(lines[1].starts_with("  rtl.parse  "));
        assert!(tree.contains("counters:\n  rtl.modules  12\n"));
        assert!(tree.contains("histograms:\n  smt.clauses  count=2 sum=305\n"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\n\u{1}");
        assert_eq!(s, "\"a\\\"b\\n\\u0001\"");
    }
}
