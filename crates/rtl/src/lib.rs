//! # soccar-rtl
//!
//! Verilog-2005 synthesizable-subset frontend for the SoCCAR reproduction:
//! four-state logic values, lexer, parser, constant folding and elaboration
//! into a flattened, width-annotated design IR.
//!
//! SoCCAR (DAC 2021) "works directly on the RTL implementation of complex
//! SoCs"; this crate is the substrate that makes that possible in pure Rust.
//! The pipeline is:
//!
//! ```text
//! Verilog text ──lex──▶ tokens ──parse──▶ ast::SourceUnit
//!                                     ──elaborate──▶ design::Design
//! ```
//!
//! Downstream crates consume both representations: `soccar-cfg` extracts
//! the asynchronous-reset CFG from the AST (module granularity, as in the
//! paper's Algorithm 1), while `soccar-sim` and `soccar-concolic` execute
//! the elaborated [`design::Design`].
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), soccar_rtl::error::RtlError> {
//! use soccar_rtl::{elaborate::elaborate, parser::parse, span::SourceMap};
//!
//! let src = "module counter(input clk, input rst_n, output reg [3:0] q);
//!   always @(posedge clk or negedge rst_n)
//!     if (!rst_n) q <= 4'd0;
//!     else        q <= q + 4'd1;
//! endmodule";
//!
//! let mut map = SourceMap::new();
//! let file = map.add_file("counter.v", src);
//! let unit = parse(file, src)?;
//! let design = elaborate(&unit, "counter")?;
//! assert_eq!(design.nets().len(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! # Subset boundaries
//!
//! `generate`, functions/tasks, delays, strengths, `inout` ports and
//! gate-level primitives are rejected with [`error::RtlErrorKind::Unsupported`]
//! diagnostics. See `DESIGN.md` §8 for the rationale.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod constfold;
pub mod design;
pub mod elaborate;
pub mod error;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod value;

pub use design::Design;
pub use error::{RtlError, RtlErrorKind, RtlResult};
pub use value::{Bit, LogicVec};

/// Convenience: parse and elaborate a single source string.
///
/// Registers `text` in a fresh [`span::SourceMap`] under `name` and returns
/// the map alongside the design so callers can render diagnostics.
///
/// # Errors
///
/// Propagates any lex, parse, semantic or elaboration error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), soccar_rtl::error::RtlError> {
/// let (design, _map) = soccar_rtl::compile("t.v", "module t(input a, output y);
///   assign y = a;
/// endmodule", "t")?;
/// assert_eq!(design.top_module, "t");
/// # Ok(())
/// # }
/// ```
pub fn compile(name: &str, text: &str, top: &str) -> RtlResult<(Design, span::SourceMap)> {
    let mut map = span::SourceMap::new();
    let file = map.add_file(name, text);
    let unit = parser::parse(file, text)?;
    let design = elaborate::elaborate(&unit, top)?;
    Ok((design, map))
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_smoke() {
        let (design, map) = crate::compile(
            "t.v",
            "module t(input a, output y); assign y = ~a; endmodule",
            "t",
        )
        .expect("compile");
        assert_eq!(design.nets().len(), 2);
        assert_eq!(map.file_name(crate::span::FileId(0)), "t.v");
    }

    #[test]
    fn compile_error_propagates() {
        assert!(crate::compile("t.v", "module t(input a);", "t").is_err());
        assert!(crate::compile("t.v", "module t(input a); endmodule", "missing_top").is_err());
    }
}
