//! Top-level error type.

use std::error::Error;
use std::fmt;

/// Any failure of the SoCCAR pipeline.
#[derive(Debug)]
pub enum SoccarError {
    /// Frontend (lex/parse/elaborate) failure.
    Rtl(soccar_rtl::RtlError),
    /// Simulation failure (unstable design, bad stimulus).
    Sim(soccar_sim::SimError),
    /// CFG composition or binding failure.
    Cfg(String),
    /// Configuration problem (bad property, missing signal, …).
    Config(String),
}

impl fmt::Display for SoccarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoccarError::Rtl(e) => write!(f, "rtl frontend: {e}"),
            SoccarError::Sim(e) => write!(f, "simulation: {e}"),
            SoccarError::Cfg(m) => write!(f, "cfg extraction: {m}"),
            SoccarError::Config(m) => write!(f, "configuration: {m}"),
        }
    }
}

impl Error for SoccarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SoccarError::Rtl(e) => Some(e),
            SoccarError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<soccar_rtl::RtlError> for SoccarError {
    fn from(e: soccar_rtl::RtlError) -> SoccarError {
        SoccarError::Rtl(e)
    }
}

impl From<soccar_sim::SimError> for SoccarError {
    fn from(e: soccar_sim::SimError) -> SoccarError {
        SoccarError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SoccarError::Config("bad property".into());
        assert!(e.to_string().contains("bad property"));
        assert!(e.source().is_none());
        let e: SoccarError = soccar_sim::SimError::Unstable { executed: 1 }.into();
        assert!(e.source().is_some());
    }
}
