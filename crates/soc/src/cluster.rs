//! ClusterSoC: the mobile/IoT benchmark SoC (Section V-A, Fig. 2a).
//!
//! * two area-efficient RISC-V cores (RV32I + RV32E) mastering a shared
//!   Wishbone B3 fabric;
//! * single-port, dual-port and scratch SRAMs as fabric slaves;
//! * four crypto engines (SHA256, DES3, AES192, MD5 — the superset implied
//!   by Table IV's bug locations);
//! * three DSP cores (FIR, DFT, IDFT);
//! * UART, SPI and Ethernet peripherals;
//! * four asynchronous reset domains: `sys_rst_n` (cores, bus, DSP),
//!   `mem_rst_n` (SRAMs), `crypto_rst_n` (engines), `periph_rst_n`
//!   (peripherals);
//! * a DFT-style test access port (`tst_*`) feeding the crypto engines,
//!   standing in for firmware-driven stimulus (DESIGN.md §3).

use crate::bugs::{SocModel, VariantSpec, ViolationType};
use crate::ip::crypto::{self, CryptoBug};
use crate::ip::dsp;
use crate::ip::periph;
use crate::ip::riscv::{self, CoreBug, CoreVariant};
use crate::ip::sram::{self, MemoryBug};
use crate::ip::wishbone::{self, BusBug};

/// A fully generated SoC design: source text plus provenance.
#[derive(Debug, Clone)]
pub struct SocDesign {
    /// Display name (`ClusterSoC Variant #1`, or `ClusterSoC (clean)`).
    pub name: String,
    /// Which benchmark.
    pub soc: SocModel,
    /// Variant number; `None` for the clean baseline.
    pub variant: Option<u32>,
    /// Complete Verilog source.
    pub source: String,
    /// Top module name.
    pub top: String,
    /// The bugs this variant carries.
    pub bugs: Vec<crate::bugs::BugInstance>,
}

pub(crate) fn crypto_bug_for(spec: Option<&VariantSpec>, engine: &str) -> CryptoBug {
    match spec.and_then(|v| v.bug_at(ViolationType::InformationLeakage, engine)) {
        Some(b) if b.implicit => CryptoBug::LeakImplicit,
        Some(_) => CryptoBug::LeakExplicit,
        None => CryptoBug::None,
    }
}

pub(crate) fn memory_bug_for(spec: Option<&VariantSpec>, ip: &str) -> MemoryBug {
    if spec.is_some_and(|v| v.has_bug(ViolationType::DataIntegrity, ip)) {
        MemoryBug::RangeCheckLost
    } else {
        MemoryBug::None
    }
}

pub(crate) fn bus_bug_for(spec: Option<&VariantSpec>) -> BusBug {
    if spec.is_some_and(|v| v.has_bug(ViolationType::DataIntegrity, "wb_fabric")) {
        BusBug::ProtMaskCleared
    } else {
        BusBug::None
    }
}

pub(crate) fn core_bug_for(spec: Option<&VariantSpec>, core: CoreVariant) -> CoreBug {
    if spec.is_some_and(|v| v.has_bug(ViolationType::PrivilegeMode, core.module_name())) {
        CoreBug::PrivUndefined
    } else {
        CoreBug::None
    }
}

/// Generates ClusterSoC. Pass `None` for the clean baseline or a
/// ClusterSoC [`VariantSpec`] for a bug-seeded variant.
///
/// # Panics
///
/// Panics if `spec` belongs to a different SoC model.
#[must_use]
pub fn generate(spec: Option<&VariantSpec>) -> SocDesign {
    if let Some(v) = spec {
        assert_eq!(v.soc, SocModel::ClusterSoc, "wrong SoC model");
    }
    let mut src = String::new();
    // IP definitions (bug flags applied per module).
    src.push_str(&riscv::core(
        CoreVariant::Rv32i,
        core_bug_for(spec, CoreVariant::Rv32i),
    ));
    src.push_str(&riscv::core(
        CoreVariant::Rv32e,
        core_bug_for(spec, CoreVariant::Rv32e),
    ));
    src.push_str(&wishbone::wb_fabric("wb_fabric", 2, 3, bus_bug_for(spec)));
    src.push_str(&sram::sram_sp(memory_bug_for(spec, "sram_sp")));
    src.push_str(&sram::sram_dp(memory_bug_for(spec, "sram_dp")));
    for engine in ["sha256", "des3", "aes192", "md5"] {
        src.push_str(&crypto::by_name(engine, crypto_bug_for(spec, engine)));
    }
    src.push_str(&dsp::fir());
    src.push_str(&dsp::dft());
    src.push_str(&dsp::idft());
    src.push_str(&periph::uart());
    src.push_str(&periph::spi());
    src.push_str(&periph::eth());
    src.push_str(TOP);
    SocDesign {
        name: spec.map_or_else(|| "ClusterSoC (clean)".to_owned(), VariantSpec::name),
        soc: SocModel::ClusterSoc,
        variant: spec.map(|v| v.number),
        source: src,
        top: "cluster_soc".to_owned(),
        bugs: spec.map(|v| v.bugs.clone()).unwrap_or_default(),
    }
}

const TOP: &str = "
module cluster_soc(
  input clk,
  input sys_rst_n,
  input mem_rst_n,
  input crypto_rst_n,
  input periph_rst_n,
  input bus_unlock,
  input mem_unlock,
  input [63:0] tst_key,
  input [63:0] tst_pt,
  input [3:0] tst_start,
  input [15:0] dsp_in,
  input dsp_valid,
  input uart_rx,
  input spi_miso,
  input eth_rx_dv,
  input [31:0] eth_rxd,
  output uart_tx,
  output spi_sck_o,
  output spi_mosi_o,
  output spi_cs_o,
  output eth_tx_en,
  output [31:0] eth_txd,
  output [1:0] priv0,
  output [1:0] priv1,
  output bus_viol_o,
  output [3:0] crypto_done,
  output [3:0] leak_flags
);
  // Core 0 (RV32I) master port.
  wire [31:0] m0_addr;
  wire [31:0] m0_wdata;
  wire [31:0] m0_rdata;
  wire m0_we;
  wire m0_stb;
  wire m0_ack;
  // Core 1 (RV32E) master port.
  wire [31:0] m1_addr;
  wire [31:0] m1_wdata;
  wire [31:0] m1_rdata;
  wire m1_we;
  wire m1_stb;
  wire m1_ack;
  // Fabric slave ports.
  wire [31:0] s0_addr;
  wire [31:0] s0_wdata;
  wire [31:0] s0_rdata;
  wire s0_we;
  wire s0_stb;
  wire s0_ack;
  wire [31:0] s1_addr;
  wire [31:0] s1_wdata;
  wire [31:0] s1_rdata;
  wire s1_we;
  wire s1_stb;
  wire s1_ack;
  wire [31:0] s2_addr;
  wire [31:0] s2_wdata;
  wire [31:0] s2_rdata;
  wire s2_we;
  wire s2_stb;
  wire s2_ack;
  wire [2:0] prot_mask_w;

  rv32i_core #(.HARTID(0)) u_cpu0 (
    .clk(clk), .rst_n(sys_rst_n),
    .bus_addr(m0_addr), .bus_wdata(m0_wdata), .bus_rdata(m0_rdata),
    .bus_we(m0_we), .bus_stb(m0_stb), .bus_ack(m0_ack),
    .irq(1'b0), .priv_mode(priv0), .pc(), .halted()
  );
  rv32e_core #(.HARTID(1)) u_cpu1 (
    .clk(clk), .rst_n(sys_rst_n),
    .bus_addr(m1_addr), .bus_wdata(m1_wdata), .bus_rdata(m1_rdata),
    .bus_we(m1_we), .bus_stb(m1_stb), .bus_ack(m1_ack),
    .irq(1'b0), .priv_mode(priv1), .pc(), .halted()
  );

  wb_fabric u_bus (
    .clk(clk), .rst_n(sys_rst_n), .bus_unlock(bus_unlock),
    .m0_addr(m0_addr), .m0_wdata(m0_wdata), .m0_rdata(m0_rdata),
    .m0_we(m0_we), .m0_stb(m0_stb), .m0_ack(m0_ack),
    .m1_addr(m1_addr), .m1_wdata(m1_wdata), .m1_rdata(m1_rdata),
    .m1_we(m1_we), .m1_stb(m1_stb), .m1_ack(m1_ack),
    .s0_addr(s0_addr), .s0_wdata(s0_wdata), .s0_rdata(s0_rdata),
    .s0_we(s0_we), .s0_stb(s0_stb), .s0_ack(s0_ack),
    .s1_addr(s1_addr), .s1_wdata(s1_wdata), .s1_rdata(s1_rdata),
    .s1_we(s1_we), .s1_stb(s1_stb), .s1_ack(s1_ack),
    .s2_addr(s2_addr), .s2_wdata(s2_wdata), .s2_rdata(s2_rdata),
    .s2_we(s2_we), .s2_stb(s2_stb), .s2_ack(s2_ack),
    .prot_mask(prot_mask_w), .bus_viol(bus_viol_o)
  );

  sram_sp #(.AW(14)) u_sram0 (
    .clk(clk), .rst_n(mem_rst_n),
    .stb(s0_stb), .we(s0_we), .unlock(mem_unlock),
    .addr(s0_addr[15:2]), .wdata(s0_wdata), .rdata(s0_rdata),
    .ack(s0_ack), .prot_en(), .viol()
  );
  sram_dp #(.AW(14)) u_sram1 (
    .clk(clk), .rst_n(mem_rst_n),
    .a_stb(s1_stb), .a_we(s1_we), .unlock(mem_unlock),
    .a_addr(s1_addr[15:2]), .a_wdata(s1_wdata), .a_rdata(s1_rdata),
    .a_ack(s1_ack),
    .b_stb(dsp_valid), .b_addr({4'd0, dsp_in[3:0]}), .b_rdata(), .b_ack(),
    .prot_en(), .viol()
  );
  sram_sp #(.AW(15)) u_scratch (
    .clk(clk), .rst_n(mem_rst_n),
    .stb(s2_stb), .we(s2_we), .unlock(mem_unlock),
    .addr(s2_addr[16:2]), .wdata(s2_wdata), .rdata(s2_rdata),
    .ack(s2_ack), .prot_en(), .viol()
  );

  sha256 u_sha256 (
    .clk(clk), .rst_n(crypto_rst_n), .start(tst_start[0]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(crypto_done[0]), .leak_obs(leak_flags[0])
  );
  des3 u_des3 (
    .clk(clk), .rst_n(crypto_rst_n), .start(tst_start[1]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(crypto_done[1]), .leak_obs(leak_flags[1])
  );
  aes192 u_aes192 (
    .clk(clk), .rst_n(crypto_rst_n), .start(tst_start[2]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(crypto_done[2]), .leak_obs(leak_flags[2])
  );
  md5 u_md5 (
    .clk(clk), .rst_n(crypto_rst_n), .start(tst_start[3]),
    .key_in(tst_key), .pt_in(tst_pt),
    .ct_out(), .busy(), .done(crypto_done[3]), .leak_obs(leak_flags[3])
  );

  fir_filter u_fir (
    .clk(clk), .rst_n(sys_rst_n),
    .in_valid(dsp_valid), .in_sample(dsp_in),
    .out_sample(), .out_valid()
  );
  dft_core u_dft (
    .clk(clk), .rst_n(sys_rst_n),
    .in_valid(dsp_valid), .in_sample(dsp_in),
    .out_sample(), .bin_index(), .out_valid()
  );
  idft_core u_idft (
    .clk(clk), .rst_n(sys_rst_n),
    .in_valid(dsp_valid), .in_sample(dsp_in),
    .out_sample(), .bin_index(), .out_valid()
  );

  uart u_uart (
    .clk(clk), .rst_n(periph_rst_n),
    .tx_start(tst_start[0]), .tx_data(tst_pt[7:0]),
    .txd(uart_tx), .tx_busy(),
    .rxd(uart_rx), .rx_data(), .rx_valid()
  );
  spi_ctrl u_spi (
    .clk(clk), .rst_n(periph_rst_n),
    .start(tst_start[1]), .mosi_data(tst_pt[15:8]),
    .sck(spi_sck_o), .mosi(spi_mosi_o), .miso(spi_miso),
    .cs_n(spi_cs_o), .miso_data(), .busy()
  );
  eth_mac u_eth (
    .clk(clk), .rst_n(periph_rst_n),
    .tx_start(tst_start[2]), .tx_len(8'd4),
    .tx_word(eth_rxd), .tx_word_valid(tst_start[3]), .tx_done(),
    .phy_tx_en(eth_tx_en), .phy_txd(eth_txd),
    .phy_rx_dv(eth_rx_dv), .phy_rxd(eth_rxd),
    .rx_word(), .rx_valid(), .csum()
  );
endmodule
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::{variant, SocModel};

    #[test]
    fn clean_cluster_soc_elaborates() {
        let design = generate(None);
        let (d, _) = soccar_rtl::compile("cluster.v", &design.source, &design.top)
            .unwrap_or_else(|e| panic!("{e}"));
        // All the headline instances exist.
        for inst in [
            "cluster_soc.u_cpu0",
            "cluster_soc.u_cpu1",
            "cluster_soc.u_bus",
            "cluster_soc.u_sram0",
            "cluster_soc.u_sram1",
            "cluster_soc.u_scratch",
            "cluster_soc.u_sha256",
            "cluster_soc.u_des3",
            "cluster_soc.u_aes192",
            "cluster_soc.u_md5",
            "cluster_soc.u_fir",
            "cluster_soc.u_dft",
            "cluster_soc.u_idft",
            "cluster_soc.u_uart",
            "cluster_soc.u_spi",
            "cluster_soc.u_eth",
        ] {
            assert!(
                d.instances().iter().any(|i| i.name == inst),
                "missing {inst}"
            );
        }
        assert!(d.stats().reg_bits > 1000, "{}", d.stats());
    }

    #[test]
    fn all_cluster_variants_elaborate() {
        for n in 1..=3 {
            let v = variant(SocModel::ClusterSoc, n).expect("variant");
            let design = generate(Some(&v));
            soccar_rtl::compile("cluster.v", &design.source, &design.top)
                .unwrap_or_else(|e| panic!("variant {n}: {e}"));
            assert_eq!(design.variant, Some(n));
            assert!(!design.bugs.is_empty());
        }
    }

    #[test]
    fn variant_bugs_change_the_source() {
        let clean = generate(None).source;
        for n in 1..=3 {
            let v = variant(SocModel::ClusterSoc, n).expect("variant");
            let buggy = generate(Some(&v)).source;
            assert_ne!(clean, buggy, "variant {n} must differ from clean");
            assert!(buggy.contains("BUG("), "variant {n} carries bug markers");
        }
        assert!(!clean.contains("BUG("), "clean design has no bug markers");
    }

    #[test]
    fn cluster_soc_simulates_a_boot() {
        use soccar_rtl::value::LogicVec;
        use soccar_sim::{InitPolicy, Simulator};
        let design = generate(None);
        let (d, _) =
            soccar_rtl::compile("cluster.v", &design.source, &design.top).expect("compile");
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("cluster_soc.{s}")).expect("net");
        // Zero every input, assert all resets, release, run.
        for net in d.top_inputs().collect::<Vec<_>>() {
            let w = d.net(net).width;
            sim.write_input(net, LogicVec::zeros(w)).expect("zero");
        }
        sim.settle().expect("settle");
        for rst in ["sys_rst_n", "mem_rst_n", "crypto_rst_n", "periph_rst_n"] {
            sim.write_input(n(rst), LogicVec::from_u64(1, 1))
                .expect("rst");
        }
        sim.settle().expect("settle");
        let clk = n("clk");
        for _ in 0..30 {
            sim.tick(clk).expect("tick");
        }
        // Cores ran: pcs advanced; privilege legal.
        let pc0 = d.find_net("cluster_soc.u_cpu0.pc").expect("pc0");
        assert!(sim.net_logic(pc0).to_u64().expect("pc") > 0);
        let p0 = sim.net_logic(n("priv0")).to_u64().expect("priv");
        assert!([0b00, 0b01, 0b11].contains(&(p0 as u32)));
        // No leak observed on the clean design.
        assert_eq!(sim.net_logic(n("leak_flags")).to_u64(), Some(0));
    }
}
