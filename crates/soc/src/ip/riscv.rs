//! Simplified multicycle RISC-V cores (RV32I / RV32E / RV32IC / RV32IM /
//! RV32IMC).
//!
//! The cores are area-plausible stand-ins, not ISA-complete CPUs (see
//! DESIGN.md §3): each executes a deterministic boot/self-test program
//! from an internal ROM through a FETCH→DECODE→EXECUTE→MEM→WRITEBACK
//! state machine with a real register file, ALU, bus master port and —
//! load-bearing for the experiments — a genuine **privilege-mode FSM**
//! (Machine `11` / Supervisor `01` / User `00`) driven by ecall/mret-style
//! instruction patterns.
//!
//! The *Unavailability of Privilege Modes* bug (Table III) corrupts the
//! asynchronous reset of the privilege register: it is "assigned with an
//! undefined value" (`2'b10`), so the mode FSM can never reach a legal
//! state again.

/// Core ISA variants (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreVariant {
    /// Baseline 32-bit integer ISA, 32 registers.
    Rv32i,
    /// Embedded extension: 16 registers.
    Rv32e,
    /// Compressed instructions (adds a decompression stage).
    Rv32ic,
    /// Multiply/divide extension (adds a multicycle mul/div unit).
    Rv32im,
    /// Compressed + multiply/divide.
    Rv32imc,
}

impl CoreVariant {
    /// Module name emitted for this variant.
    #[must_use]
    pub fn module_name(self) -> &'static str {
        match self {
            CoreVariant::Rv32i => "rv32i_core",
            CoreVariant::Rv32e => "rv32e_core",
            CoreVariant::Rv32ic => "rv32ic_core",
            CoreVariant::Rv32im => "rv32im_core",
            CoreVariant::Rv32imc => "rv32imc_core",
        }
    }

    /// Architectural register count.
    #[must_use]
    pub fn reg_count(self) -> u32 {
        match self {
            CoreVariant::Rv32e => 16,
            _ => 32,
        }
    }

    fn has_mul(self) -> bool {
        matches!(self, CoreVariant::Rv32im | CoreVariant::Rv32imc)
    }

    fn has_compressed(self) -> bool {
        matches!(self, CoreVariant::Rv32ic | CoreVariant::Rv32imc)
    }
}

/// Privilege-mode bug selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreBug {
    /// Correct RTL.
    #[default]
    None,
    /// Reset drives the privilege register to the undefined encoding
    /// `2'b10`, from which no legal transition exists.
    PrivUndefined,
}

/// Generates one core variant.
#[must_use]
pub fn core(variant: CoreVariant, bug: CoreBug) -> String {
    let name = variant.module_name();
    let regs = variant.reg_count();
    let idx_hi = if regs == 32 { 11 } else { 10 }; // instr[11:7] vs [10:7]
    let priv_reset = match bug {
        CoreBug::None => "priv_mode <= 2'b11;",
        CoreBug::PrivUndefined => "priv_mode <= 2'b10; // BUG(privilege): undefined mode encoding",
    };
    let mul_decl = if variant.has_mul() {
        "  reg [31:0] mul_acc;\n  reg [5:0] mul_cnt;\n"
    } else {
        ""
    };
    let mul_reset = if variant.has_mul() {
        "      mul_acc <= 32'd0;\n      mul_cnt <= 6'd0;\n"
    } else {
        ""
    };
    let mul_exec = if variant.has_mul() {
        "            if (instr[25]) begin
              // M-extension path: iterative multiply into mul_acc.
              mul_acc <= op_a * op_b;
              mul_cnt <= mul_cnt + 6'd1;
              alu_q <= mul_acc;
            end else
"
    } else {
        ""
    };
    let decompress = if variant.has_compressed() {
        "          // Compressed-instruction expansion stage: widen a
          // 16-bit encoding into its 32-bit equivalent.
          if (instr[1:0] != 2'b11)
            instr <= {instr[15:13], 4'b0011, instr[12:2], 7'b0010011, instr[15:9]};
"
    } else {
        ""
    };
    format!(
        "module {name}#(parameter HARTID = 0)(
  input clk,
  input rst_n,
  output reg [31:0] bus_addr,
  output reg [31:0] bus_wdata,
  input [31:0] bus_rdata,
  output reg bus_we,
  output reg bus_stb,
  input bus_ack,
  input irq,
  output reg [1:0] priv_mode,
  output reg [31:0] pc,
  output reg halted
);
  localparam F = 3'd0;
  localparam D = 3'd1;
  localparam X = 3'd2;
  localparam M = 3'd3;
  localparam W = 3'd4;
  reg [2:0] state;
  reg [31:0] rom [0:31];
  reg [31:0] rf [0:{rm1}];
  reg [31:0] instr;
  reg [31:0] op_a;
  reg [31:0] op_b;
  reg [31:0] alu_q;
{mul_decl}  integer i;

  // Deterministic boot/self-test program: ALU ops, a store, a load,
  // and periodic ecall/mret privilege round-trips.
  initial begin
    for (i = 0; i < 32; i = i + 1)
      rom[i] = (32'h13579BDF * (i + 1)) ^ (32'h01010101 * HARTID) | 32'h00000013;
    rom[7]  = 32'h00000073;  // ecall pattern: trap up to Machine
    rom[15] = 32'h30200073;  // mret pattern: return down one level
    rom[23] = 32'h00000073;
    rom[31] = 32'h30200073;
  end

  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      state <= F;
      pc <= 32'd0;
      instr <= 32'd0;
      op_a <= 32'd0;
      op_b <= 32'd0;
      alu_q <= 32'd0;
      bus_addr <= 32'd0;
      bus_wdata <= 32'd0;
      bus_we <= 1'b0;
      bus_stb <= 1'b0;
      halted <= 1'b0;
{mul_reset}      {priv_reset}
    end else begin
      case (state)
        F: begin
          instr <= rom[pc[6:2]];
          state <= D;
        end
        D: begin
{decompress}          op_a <= rf[instr[{idx_hi}:7]];
          op_b <= rf[instr[{idx2_hi}:20]];
          state <= X;
        end
        X: begin
          if (instr == 32'h00000073) begin
            // ecall: trap to Machine mode.
            priv_mode <= 2'b11;
            alu_q <= pc;
          end else if (instr == 32'h30200073) begin
            // mret: drop one privilege level (M→S→U).
            if (priv_mode == 2'b11) priv_mode <= 2'b01;
            else priv_mode <= 2'b00;
            alu_q <= pc;
          end else
{mul_exec}          case (instr[14:12])
            3'd0: alu_q <= op_a + op_b;
            3'd1: alu_q <= op_a - op_b;
            3'd2: alu_q <= op_a ^ op_b;
            3'd3: alu_q <= op_a & op_b;
            3'd4: alu_q <= op_a | op_b;
            3'd5: alu_q <= op_a << instr[24:20];
            3'd6: alu_q <= op_a >> instr[24:20];
            default: alu_q <= {{31'd0, op_a < op_b}};
          endcase
          state <= M;
        end
        M: begin
          if (instr[5] & instr[6]) begin
            // Store cycle onto the bus (user-region scratch address).
            bus_addr <= {{4'd0, alu_q[27:0]}};
            bus_wdata <= op_b;
            bus_we <= 1'b1;
            bus_stb <= 1'b1;
          end else begin
            bus_stb <= 1'b0;
            bus_we <= 1'b0;
          end
          state <= W;
        end
        W: begin
          bus_stb <= 1'b0;
          bus_we <= 1'b0;
          if (bus_ack & ~instr[6]) alu_q <= bus_rdata;
          rf[instr[{idx_hi}:7]] <= alu_q;
          pc <= pc + 32'd4;
          if (irq) priv_mode <= 2'b11;
          state <= F;
        end
        default: state <= F;
      endcase
    end
endmodule
",
        rm1 = regs - 1,
        idx2_hi = if regs == 32 { 24 } else { 23 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::value::LogicVec;
    use soccar_sim::{InitPolicy, Simulator};

    const ALL: [CoreVariant; 5] = [
        CoreVariant::Rv32i,
        CoreVariant::Rv32e,
        CoreVariant::Rv32ic,
        CoreVariant::Rv32im,
        CoreVariant::Rv32imc,
    ];

    #[test]
    fn all_variants_compile() {
        for v in ALL {
            for bug in [CoreBug::None, CoreBug::PrivUndefined] {
                let src = core(v, bug);
                soccar_rtl::compile("core.v", &src, v.module_name())
                    .unwrap_or_else(|e| panic!("{v:?}: {e}"));
            }
        }
    }

    fn boot(variant: CoreVariant, bug: CoreBug, cycles: u32) -> (Vec<u64>, u64) {
        let src = core(variant, bug);
        let name = variant.module_name();
        let d = soccar_rtl::compile("core.v", &src, name)
            .unwrap_or_else(|e| panic!("{e}"))
            .0;
        let mut sim = Simulator::concrete(&d, InitPolicy::Ones);
        let n = |s: &str| d.find_net(&format!("{name}.{s}")).expect("net");
        let clk = n("clk");
        for (sig, w) in [("bus_rdata", 32u32), ("bus_ack", 1), ("irq", 1)] {
            sim.write_input(n(sig), LogicVec::zeros(w)).expect("in");
        }
        sim.write_input(clk, LogicVec::from_u64(1, 0)).expect("clk");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 0))
            .expect("rst");
        sim.settle().expect("settle");
        sim.write_input(n("rst_n"), LogicVec::from_u64(1, 1))
            .expect("rst");
        sim.settle().expect("settle");
        let mut privs = Vec::new();
        for _ in 0..cycles {
            sim.tick(clk).expect("tick");
            privs.push(sim.net_logic(n("priv_mode")).to_u64().expect("priv"));
        }
        let pc = sim.net_logic(n("pc")).to_u64().expect("pc");
        (privs, pc)
    }

    #[test]
    fn core_executes_and_advances_pc() {
        let (_, pc) = boot(CoreVariant::Rv32i, CoreBug::None, 60);
        assert!(pc >= 4 * 8, "pc advanced through the boot program: {pc}");
    }

    #[test]
    fn privilege_fsm_walks_legal_modes_only() {
        let (privs, _) = boot(CoreVariant::Rv32i, CoreBug::None, 200);
        assert!(privs
            .iter()
            .all(|p| [0b00, 0b01, 0b11].contains(&(*p as u32))));
        // The ecall/mret round-trips must actually exercise multiple modes.
        assert!(privs.contains(&0b11));
        assert!(privs.contains(&0b01));
    }

    #[test]
    fn buggy_reset_leaves_undefined_privilege() {
        let (privs, _) = boot(CoreVariant::Rv32e, CoreBug::PrivUndefined, 6);
        assert_eq!(privs[0], 0b10, "undefined mode visible right after reset");
    }

    #[test]
    fn rv32e_has_fewer_registers() {
        let d = soccar_rtl::compile(
            "c.v",
            &core(CoreVariant::Rv32e, CoreBug::None),
            "rv32e_core",
        )
        .expect("compile")
        .0;
        let rf = d.find_memory("rv32e_core.rf").expect("rf");
        assert_eq!(d.memory(rf).depth, 16);
        let d = soccar_rtl::compile(
            "c.v",
            &core(CoreVariant::Rv32i, CoreBug::None),
            "rv32i_core",
        )
        .expect("compile")
        .0;
        let rf = d.find_memory("rv32i_core.rf").expect("rf");
        assert_eq!(d.memory(rf).depth, 32);
    }

    #[test]
    fn im_variant_has_multiplier_state() {
        let d = soccar_rtl::compile(
            "c.v",
            &core(CoreVariant::Rv32im, CoreBug::None),
            "rv32im_core",
        )
        .expect("compile")
        .0;
        assert!(d.find_net("rv32im_core.mul_acc").is_some());
        let d = soccar_rtl::compile(
            "c.v",
            &core(CoreVariant::Rv32i, CoreBug::None),
            "rv32i_core",
        )
        .expect("compile")
        .0;
        assert!(d.find_net("rv32i_core.mul_acc").is_none());
    }
}
