// Positive: the Section V-C construct — reset edge alone in the sensitivity
// list, clock tested at level, no leading reset test. Explicit AR_CFG
// extraction finds no governor here; the linter must still flag it.
module sha(input clk, input rst_n, input [7:0] pt, output reg [7:0] ct);
  always @(negedge rst_n)
    if (clk) ct <= pt;
endmodule
