//! Two-state bit-vector constants.
//!
//! [`BvVal`] is the constant domain of the term language: fixed-width,
//! unsigned, two-state (no X/Z — the concolic layer drops symbolic terms
//! when concrete values carry unknowns, so the solver only ever sees
//! fully-defined bits). It doubles as the reference evaluator's value type,
//! against which the bit-blaster is property-tested.

use std::fmt;

/// A fixed-width two-state bit-vector value.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BvVal {
    width: u32,
    /// Little-endian 64-bit words; bits above `width` are zero.
    words: Vec<u64>,
}

fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

impl BvVal {
    /// All-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn zeros(width: u32) -> BvVal {
        assert!(width > 0, "BvVal width must be non-zero");
        BvVal {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// All-ones value of the given width.
    #[must_use]
    pub fn ones(width: u32) -> BvVal {
        let mut v = BvVal::zeros(width);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask();
        v
    }

    /// Value from the low bits of `x`, truncated/extended to `width`.
    #[must_use]
    pub fn from_u64(width: u32, x: u64) -> BvVal {
        let mut v = BvVal::zeros(width);
        v.words[0] = x;
        v.mask();
        v
    }

    /// Builds a value from bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> BvVal {
        assert!(!bits.is_empty());
        let mut v = BvVal::zeros(bits.len() as u32);
        for (i, b) in bits.iter().enumerate() {
            v.set_bit(i as u32, *b);
        }
        v
    }

    /// The width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The bit at `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: u32, b: bool) {
        assert!(i < self.width);
        let w = (i / 64) as usize;
        let m = 1u64 << (i % 64);
        if b {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Converts to `u64` if the value fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.words.iter().skip(1).any(|w| *w != 0) {
            None
        } else {
            Some(self.words[0])
        }
    }

    /// `true` if every bit is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    fn mask(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << rem) - 1;
            }
        }
    }

    /// Zero-extend or truncate.
    #[must_use]
    pub fn resize(&self, width: u32) -> BvVal {
        let mut out = BvVal::zeros(width);
        let n = out.words.len().min(self.words.len());
        out.words[..n].copy_from_slice(&self.words[..n]);
        out.mask();
        out
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(&self) -> BvVal {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask();
        out
    }

    /// Bitwise AND (equal widths).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn and(&self, o: &BvVal) -> BvVal {
        self.zip(o, |a, b| a & b)
    }

    /// Bitwise OR (equal widths).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn or(&self, o: &BvVal) -> BvVal {
        self.zip(o, |a, b| a | b)
    }

    /// Bitwise XOR (equal widths).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn xor(&self, o: &BvVal) -> BvVal {
        self.zip(o, |a, b| a ^ b)
    }

    fn zip(&self, o: &BvVal, f: impl Fn(u64, u64) -> u64) -> BvVal {
        assert_eq!(self.width, o.width, "width mismatch");
        let mut out = self.clone();
        for (w, ow) in out.words.iter_mut().zip(&o.words) {
            *w = f(*w, *ow);
        }
        out.mask();
        out
    }

    /// Wrapping addition (equal widths).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn add(&self, o: &BvVal) -> BvVal {
        assert_eq!(self.width, o.width, "width mismatch");
        let mut out = BvVal::zeros(self.width);
        let mut carry = 0u64;
        for i in 0..out.words.len() {
            let (s1, c1) = self.words[i].overflowing_add(o.words[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.words[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        out.mask();
        out
    }

    /// Wrapping subtraction (equal widths).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn sub(&self, o: &BvVal) -> BvVal {
        self.add(&o.not().add(&BvVal::from_u64(o.width, 1)))
    }

    /// Two's-complement negation.
    #[must_use]
    pub fn neg(&self) -> BvVal {
        BvVal::zeros(self.width).sub(self)
    }

    /// Wrapping multiplication (equal widths).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn mul(&self, o: &BvVal) -> BvVal {
        assert_eq!(self.width, o.width, "width mismatch");
        let n = self.words.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let cur = u128::from(acc[i + j])
                    + u128::from(self.words[i]) * u128::from(o.words[j])
                    + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = BvVal::zeros(self.width);
        out.words.copy_from_slice(&acc);
        out.mask();
        out
    }

    /// Restoring unsigned division: returns `(quotient, remainder)`.
    /// With a zero divisor, returns `(ones, self)` — the fixed semantics of
    /// the division circuit (the concrete Verilog layer never lets a zero
    /// divisor reach the solver).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn udivrem(&self, o: &BvVal) -> (BvVal, BvVal) {
        assert_eq!(self.width, o.width, "width mismatch");
        if o.is_zero() {
            return (BvVal::ones(self.width), self.clone());
        }
        let mut quo = BvVal::zeros(self.width);
        let mut rem = BvVal::zeros(self.width);
        for i in (0..self.width).rev() {
            rem = rem.shl(1);
            rem.set_bit(0, self.bit(i));
            if !rem.ult(o) {
                rem = rem.sub(o);
                quo.set_bit(i, true);
            }
        }
        (quo, rem)
    }

    /// Logical shift left by a constant.
    #[must_use]
    pub fn shl(&self, amount: u32) -> BvVal {
        let mut out = BvVal::zeros(self.width);
        for i in amount..self.width {
            out.set_bit(i, self.bit(i - amount));
        }
        out
    }

    /// Logical shift right by a constant.
    #[must_use]
    pub fn lshr(&self, amount: u32) -> BvVal {
        let mut out = BvVal::zeros(self.width);
        if amount >= self.width {
            return out;
        }
        for i in 0..self.width - amount {
            out.set_bit(i, self.bit(i + amount));
        }
        out
    }

    /// Arithmetic shift right by a constant.
    #[must_use]
    pub fn ashr(&self, amount: u32) -> BvVal {
        let msb = self.bit(self.width - 1);
        let mut out = self.lshr(amount);
        for i in self.width.saturating_sub(amount)..self.width {
            out.set_bit(i, msb);
        }
        out
    }

    /// Unsigned less-than (equal widths).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn ult(&self, o: &BvVal) -> bool {
        assert_eq!(self.width, o.width, "width mismatch");
        for i in (0..self.words.len()).rev() {
            if self.words[i] != o.words[i] {
                return self.words[i] < o.words[i];
            }
        }
        false
    }

    /// Concatenation: `self` is the high part.
    #[must_use]
    pub fn concat(&self, lo: &BvVal) -> BvVal {
        let mut out = BvVal::zeros(self.width + lo.width);
        for i in 0..lo.width {
            out.set_bit(i, lo.bit(i));
        }
        for i in 0..self.width {
            out.set_bit(lo.width + i, self.bit(i));
        }
        out
    }

    /// Bits `[lo ..= hi]` as a new value.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    #[must_use]
    pub fn extract(&self, hi: u32, lo: u32) -> BvVal {
        assert!(hi >= lo && hi < self.width, "bad extract range");
        let mut out = BvVal::zeros(hi - lo + 1);
        for i in lo..=hi {
            out.set_bit(i - lo, self.bit(i));
        }
        out
    }

    /// Iterates bits LSB-first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }
}

impl fmt::Debug for BvVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BvVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width)?;
        for i in (0..self.width).rev() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = BvVal::from_u64(8, 200);
        let b = BvVal::from_u64(8, 100);
        assert_eq!(a.add(&b).to_u64(), Some(44)); // wraps
        assert_eq!(a.sub(&b).to_u64(), Some(100));
        assert_eq!(b.sub(&a).to_u64(), Some(156));
        assert_eq!(a.mul(&b).to_u64(), Some((200u64 * 100) & 0xFF));
        assert_eq!(a.neg().to_u64(), Some(56));
    }

    #[test]
    fn division() {
        let a = BvVal::from_u64(8, 200);
        let b = BvVal::from_u64(8, 7);
        let (q, r) = a.udivrem(&b);
        assert_eq!(q.to_u64(), Some(200 / 7));
        assert_eq!(r.to_u64(), Some(200 % 7));
        let (q0, r0) = a.udivrem(&BvVal::zeros(8));
        assert_eq!(q0, BvVal::ones(8));
        assert_eq!(r0, a);
    }

    #[test]
    fn shifts_and_extract() {
        let a = BvVal::from_u64(8, 0b1001_0110);
        assert_eq!(a.shl(2).to_u64(), Some(0b0101_1000));
        assert_eq!(a.lshr(2).to_u64(), Some(0b0010_0101));
        assert_eq!(a.ashr(2).to_u64(), Some(0b1110_0101));
        assert_eq!(a.extract(7, 4).to_u64(), Some(0b1001));
        assert_eq!(a.extract(0, 0).to_u64(), Some(0));
    }

    #[test]
    fn comparisons_and_concat() {
        let a = BvVal::from_u64(8, 5);
        let b = BvVal::from_u64(8, 9);
        assert!(a.ult(&b));
        assert!(!b.ult(&a));
        assert!(!a.ult(&a));
        assert_eq!(
            BvVal::from_u64(4, 0xA)
                .concat(&BvVal::from_u64(4, 0x5))
                .to_u64(),
            Some(0xA5)
        );
    }

    #[test]
    fn wide_values() {
        let a = BvVal::ones(130);
        assert_eq!(a.add(&BvVal::from_u64(130, 1)).to_u64(), Some(0));
        assert!(a.bit(129));
        let b = a.lshr(129);
        assert_eq!(b.to_u64(), Some(1));
    }

    #[test]
    fn display_binary() {
        assert_eq!(BvVal::from_u64(4, 0b1010).to_string(), "4'b1010");
    }
}
