//! A CDCL SAT solver.
//!
//! Standard modern architecture, sized for the formulas the concolic engine
//! produces (thousands of variables, tens of thousands of clauses):
//!
//! * two-watched-literal unit propagation;
//! * first-UIP conflict analysis with clause learning and
//!   non-chronological backjumping;
//! * EVSIDS variable activities with a lazy max-heap;
//! * phase saving;
//! * Luby-sequence restarts (profile-scheduled, assumption-trail aware);
//! * LBD ("glue") scoring of learnt clauses with two-tier learnt-database
//!   reduction (glue clauses are permanent, the worse half of the rest is
//!   dropped once the database crosses its growth threshold);
//! * bounded inprocessing at decision level 0: level-0 clause
//!   simplification, forward subsumption, self-subsuming resolution, and
//!   bounded variable elimination with model reconstruction
//!   (see [`SatSolver::inprocess`]);
//! * trail reuse between assumption solves: a new [`SatSolver::solve_assuming`]
//!   call keeps the longest common prefix of the previous call's
//!   assumption trail instead of re-propagating it from scratch
//!   (`SOCCAR_TRAIL_REUSE=0` disables);
//! * deterministic [`SolverProfile`]s (branching seed, phase polarity,
//!   restart schedule) so a portfolio can race diverse configurations of
//!   the same search without sacrificing reproducibility, plus a
//!   learnt-clause export/import surface ([`SatSolver::export_learnts`],
//!   [`SatSolver::import_learnt`]) so portfolio members can share glue
//!   clauses instead of learning alone.

use std::fmt;

/// Reads the `SOCCAR_BVE` escape hatch: `0`/`false`/`off` disable bounded
/// variable elimination in the inprocessing pass, anything else (or
/// unset) enables it.
#[must_use]
pub fn bve_default() -> bool {
    !matches!(
        std::env::var("SOCCAR_BVE").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

/// Reads the `SOCCAR_TRAIL_REUSE` escape hatch: `0`/`false`/`off` disable
/// assumption-trail reuse between `solve_assuming` calls, anything else
/// (or unset) enables it.
#[must_use]
pub fn trail_reuse_default() -> bool {
    !matches!(
        std::env::var("SOCCAR_TRAIL_REUSE").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

/// A propositional variable, numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: variable plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    #[must_use]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    #[must_use]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Literal of `v` with the given sign (`true` = positive).
    #[must_use]
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive literal.
    #[must_use]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "¬x{}", self.var().0)
        }
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable; query assignments via [`SatSolver::value`].
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// The [`SolveBudget`] ran out before the search reached an answer.
    /// The solver state is mid-search; only restarting gives a definite
    /// answer.
    Unknown,
}

/// A resource budget for one [`SatSolver::solve_budgeted`] call.
///
/// Both limits count work done *within the call* (not over the solver's
/// lifetime); `None` means unlimited. The default budget is unlimited,
/// which makes [`SatSolver::solve`] the classic run-to-completion CDCL.
///
/// A budgeted solve is *sound but incomplete*: when it answers
/// [`SatOutcome::Sat`] or [`SatOutcome::Unsat`] the answer is exactly
/// what the unbudgeted solve would return; when the budget runs out it
/// answers [`SatOutcome::Unknown`] instead of looping on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum CDCL conflicts before giving up.
    pub max_conflicts: Option<u64>,
    /// Maximum branching decisions before giving up.
    pub max_decisions: Option<u64>,
}

impl SolveBudget {
    /// The unlimited budget (run to completion).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        max_conflicts: None,
        max_decisions: None,
    };

    /// A budget capping only conflicts.
    #[must_use]
    pub fn conflicts(max: u64) -> SolveBudget {
        SolveBudget {
            max_conflicts: Some(max),
            max_decisions: None,
        }
    }

    /// `true` if no limit is set (the production default).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none() && self.max_decisions.is_none()
    }
}

/// A deterministic solver configuration: everything that legitimately
/// varies between portfolio members without changing *answers*.
///
/// Two solvers over the same clauses always agree on Sat/Unsat whatever
/// their profiles; profiles only steer *which* model a Sat search finds
/// and how fast either answer arrives. The default profile is the
/// canonical single-solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SolverProfile {
    /// Branching tie-break seed. `0` keeps the canonical first-maximum
    /// scan; any other value perturbs ties among equal activities
    /// deterministically (splitmix64 ranking).
    pub seed: u64,
    /// Start every variable with saved phase `true` instead of `false`.
    pub invert_phase: bool,
    /// Luby restart multiplier (conflicts before the first restart).
    pub restart_base: u64,
    /// Learnt clauses accumulated before the first two-tier database
    /// reduction; the threshold then grows by 1.5x per reduction.
    pub reduce_base: u64,
}

impl Default for SolverProfile {
    fn default() -> SolverProfile {
        SolverProfile {
            seed: 0,
            invert_phase: false,
            restart_base: 100,
            reduce_base: 2000,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unset,
    True,
    False,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    /// Learnt (eligible for reduction) vs. original (permanent).
    learnt: bool,
    /// Literal-block distance at learn time (0 for originals).
    lbd: u32,
    /// `clauses_added` snapshot when this clause entered the database —
    /// a birth stamp so portfolio clause sharing can export exactly the
    /// clauses learnt after a given mark (see [`SatSolver::export_learnts`]).
    birth: u64,
}

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use soccar_smt::sat::{Lit, SatOutcome, SatSolver, Var};
///
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert_eq!(s.solve(), SatOutcome::Sat);
/// assert_eq!(s.value(a), Some(false));
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // per literal index: clause indices
    assigns: Vec<Assign>,
    levels: Vec<u32>,
    reasons: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    occurs: Vec<bool>, // var appears in at least one clause
    order: Vec<Var>,   // lazy heap (sorted occasionally)
    unsat: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    learnt_literals: u64,
    profile: SolverProfile,
    /// Monotonic count of clauses ever pushed into the database. Unlike
    /// `num_clauses()` this never decreases when reduction or
    /// inprocessing deletes clauses, so it is the safe basis for
    /// high-water-mark accounting (the blast context's reuse counter).
    clauses_added: u64,
    /// Live learnt clauses (maintained across learning and deletion).
    num_learnts: usize,
    /// Learnt count that triggers the next reduction (0 = use the
    /// profile's `reduce_base`).
    reduce_threshold: u64,
    restarts: u64,
    learnt_deleted: u64,
    learnt_kept: u64,
    subsumed: u64,
    /// Vars that bounded variable elimination must never touch: every
    /// var visible outside the solver (blast-cache bits, assumption
    /// vars, obligation vars). Fresh internal gate vars stay unfrozen.
    frozen: Vec<bool>,
    /// Vars removed from the clause database by BVE. Their model values
    /// come from `elim_values` (reconstructed on every Sat answer).
    eliminated: Vec<bool>,
    /// Reconstructed model values for eliminated vars (valid after Sat).
    elim_values: Vec<bool>,
    /// Elimination stack: per eliminated var, the original clauses it
    /// occurred in, replayed in reverse on Sat to rebuild its value.
    elim_stack: Vec<(Var, Vec<Vec<Lit>>)>,
    eliminated_vars: u64,
    /// Bounded variable elimination enabled (SOCCAR_BVE).
    bve: bool,
    /// Assumption-trail reuse enabled (SOCCAR_TRAIL_REUSE).
    trail_reuse: bool,
    /// Assumptions of the most recent `search` call, kept so the next
    /// call can reuse the longest common prefix of the trail.
    last_assumptions: Vec<Lit>,
    /// Trail literals kept (not re-propagated) thanks to prefix reuse.
    trail_reused_lits: u64,
}

const VAR_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;

impl SatSolver {
    /// Creates an empty solver. The `SOCCAR_BVE` and `SOCCAR_TRAIL_REUSE`
    /// escape hatches set the initial feature flags; use
    /// [`SatSolver::set_bve`] / [`SatSolver::set_trail_reuse`] to pin
    /// them regardless of the environment.
    #[must_use]
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            bve: bve_default(),
            trail_reuse: trail_reuse_default(),
            ..SatSolver::default()
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learnt).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Conflicts encountered so far (diagnostics).
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Branching decisions made so far (diagnostics).
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Literals propagated by unit propagation so far (diagnostics).
    #[must_use]
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Total literals across all learnt clauses so far (diagnostics).
    #[must_use]
    pub fn learnt_literals(&self) -> u64 {
        self.learnt_literals
    }

    /// Monotonic count of clauses ever added (original + learnt). Never
    /// decreases, even when reduction or inprocessing deletes clauses —
    /// use this (not [`SatSolver::num_clauses`]) for high-water marks.
    #[must_use]
    pub fn clauses_added(&self) -> u64 {
        self.clauses_added
    }

    /// Live learnt clauses currently in the database.
    #[must_use]
    pub fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Restarts performed so far (diagnostics).
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Learnt clauses deleted by two-tier database reduction so far.
    #[must_use]
    pub fn learnt_deleted(&self) -> u64 {
        self.learnt_deleted
    }

    /// Learnt clauses retained, summed over reduction passes.
    #[must_use]
    pub fn learnt_kept(&self) -> u64 {
        self.learnt_kept
    }

    /// Clauses removed by subsumption plus literals removed by
    /// self-subsuming resolution, so far.
    #[must_use]
    pub fn subsumed(&self) -> u64 {
        self.subsumed
    }

    /// Variables removed by bounded variable elimination so far.
    #[must_use]
    pub fn eliminated_vars(&self) -> u64 {
        self.eliminated_vars
    }

    /// Trail literals kept across `solve_assuming` calls via
    /// assumption-prefix reuse (instead of being re-propagated), so far.
    #[must_use]
    pub fn trail_reused_lits(&self) -> u64 {
        self.trail_reused_lits
    }

    /// Enables or disables bounded variable elimination in
    /// [`SatSolver::inprocess`]. Already-eliminated vars stay eliminated;
    /// disabling only stops future passes.
    pub fn set_bve(&mut self, on: bool) {
        self.bve = on;
    }

    /// Enables or disables assumption-trail reuse between
    /// [`SatSolver::solve_assuming`] calls.
    pub fn set_trail_reuse(&mut self, on: bool) {
        self.trail_reuse = on;
    }

    /// Marks `v` untouchable by bounded variable elimination. Every var
    /// the caller will ever mention again — in a clause, an assumption,
    /// or a model query whose exact clause-implied value matters — must
    /// be frozen; only internal gate vars should stay unfrozen.
    pub fn freeze_var(&mut self, v: Var) {
        self.frozen[v.0 as usize] = true;
    }

    /// Exports the live learnt clauses born after `mark` (a
    /// [`SatSolver::clauses_added`] snapshot) that pass the sharing
    /// filter: LBD ≤ `max_lbd` and at most `max_len` literals. Clause
    /// order follows database order, so the export is deterministic.
    #[must_use]
    pub fn export_learnts(&self, mark: u64, max_lbd: u32, max_len: usize) -> Vec<(Vec<Lit>, u32)> {
        self.clauses
            .iter()
            .filter(|c| c.learnt && c.birth >= mark && c.lbd <= max_lbd && c.lits.len() <= max_len)
            .map(|c| (c.lits.clone(), c.lbd))
            .collect()
    }

    /// Imports a clause learnt by another solver over the *same variable
    /// numbering* (a portfolio clone). The clause enters the learnt
    /// database with the exporter's LBD and is eligible for reduction
    /// like any local learnt. Returns `true` if the clause (or a unit
    /// derived from it) was actually added. Like [`SatSolver::add_clause`]
    /// this retracts the trail to level 0 first.
    pub fn import_learnt(&mut self, lits: &[Lit], lbd: u32) -> bool {
        self.add_clause_with(lits, true, lbd)
    }

    /// The active [`SolverProfile`].
    #[must_use]
    pub fn profile(&self) -> SolverProfile {
        self.profile
    }

    /// Installs a profile. Switching `invert_phase` flips every saved
    /// phase once (idempotent: re-installing the same profile is a
    /// no-op), so a freshly cloned portfolio member explores the
    /// complementary polarity space.
    pub fn set_profile(&mut self, profile: SolverProfile) {
        if profile.invert_phase != self.profile.invert_phase {
            for ph in &mut self.phase {
                *ph = !*ph;
            }
        }
        self.profile = profile;
    }

    fn reduce_limit(&self) -> u64 {
        if self.reduce_threshold == 0 {
            self.profile.reduce_base.max(8)
        } else {
            self.reduce_threshold
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Assign::Unset);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phase.push(self.profile.invert_phase);
        self.occurs.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push(v);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.elim_values.push(false);
        v
    }

    /// Adds a clause. An empty clause makes the instance trivially unsat.
    ///
    /// Adding a clause invalidates the model of a previous solve: the
    /// trail is retracted to decision level 0 first, so the clause is
    /// simplified against (and any unit enqueued on) level-0 state only.
    /// A unit landed on a stale search trail would be popped — and
    /// silently lost — by the next solve's entry backtrack.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.add_clause_with(lits, false, 0);
    }

    /// Shared implementation of [`SatSolver::add_clause`] (original
    /// clauses) and [`SatSolver::import_learnt`] (shared learnt clauses).
    /// Returns `true` if a clause or unit actually entered the database.
    fn add_clause_with(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> bool {
        if self.unsat {
            return false;
        }
        debug_assert!(
            lits.iter().all(|l| !self.eliminated[l.var().0 as usize]),
            "clause mentions a BVE-eliminated var; freeze vars that get new clauses"
        );
        self.backtrack(0);
        // Every mentioned variable gets a defined model value, even if the
        // clause itself is dropped below (tautology / already satisfied).
        for l in lits {
            self.occurs[l.var().0 as usize] = true;
        }
        // Deduplicate and check for tautology.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return false; // x ∨ ¬x: tautology
        }
        // Drop literals already false at level 0; satisfied clauses vanish.
        ls.retain(|l| !(self.value_lit(*l) == Some(false) && self.levels[l.var().0 as usize] == 0));
        if ls
            .iter()
            .any(|l| self.value_lit(*l) == Some(true) && self.levels[l.var().0 as usize] == 0)
        {
            return false;
        }
        match ls.len() {
            0 => {
                self.unsat = true;
                true
            }
            1 => {
                if !self.enqueue(ls[0], None) {
                    self.unsat = true;
                }
                true
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[ls[0].negate().index()].push(idx);
                self.watches[ls[1].negate().index()].push(idx);
                self.clauses.push(Clause {
                    lits: ls,
                    learnt,
                    lbd,
                    birth: self.clauses_added,
                });
                self.clauses_added += 1;
                if learnt {
                    self.num_learnts += 1;
                }
                true
            }
        }
    }

    /// The model value of `v` after [`SatSolver::solve`] returned `Sat`.
    ///
    /// `Sat` models are *partial* over variables that occur in no clause:
    /// such variables are never branched on (see `pick_branch`) and stay
    /// `None`. Callers needing a total assignment pick their own default
    /// — the bit-blaster's `model_bits` defaults unconstrained bits to
    /// `false`, matching what the one-shot solver's models contain.
    /// BVE-eliminated variables report their reconstructed value (the
    /// elimination stack is replayed on every `Sat` answer), so models
    /// stay total over eliminated vars exactly as if they had never been
    /// eliminated.
    #[must_use]
    pub fn value(&self, v: Var) -> Option<bool> {
        if self.eliminated[v.0 as usize] {
            return Some(self.elim_values[v.0 as usize]);
        }
        match self.assigns[v.0 as usize] {
            Assign::Unset => None,
            Assign::True => Some(true),
            Assign::False => Some(false),
        }
    }

    fn value_lit(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.is_pos())
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) -> bool {
        match self.value_lit(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var().0 as usize;
                self.assigns[v] = if l.is_pos() {
                    Assign::True
                } else {
                    Assign::False
                };
                self.levels[v] = self.decision_level();
                self.reasons[v] = reason;
                self.phase[v] = l.is_pos();
                self.trail.push(l);
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            // Clauses watching ¬l need a new watch or produce units.
            let mut watch_list = std::mem::take(&mut self.watches[l.index()]);
            let mut keep = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                i += 1;
                let false_lit = l.negate();
                // Normalize: watched literal in position 1.
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.value_lit(first) == Some(true) {
                    keep.push(ci);
                    continue;
                }
                // Find a new watch.
                let mut found = None;
                {
                    let c = &self.clauses[ci as usize];
                    for (k, cand) in c.lits.iter().enumerate().skip(2) {
                        if self.value_lit(*cand) != Some(false) {
                            found = Some(k);
                            break;
                        }
                    }
                }
                if let Some(k) = found {
                    let c = &mut self.clauses[ci as usize];
                    c.lits.swap(1, k);
                    let new_watch = c.lits[1];
                    self.watches[new_watch.negate().index()].push(ci);
                    continue;
                }
                // No new watch: clause is unit or conflicting.
                keep.push(ci);
                if !self.enqueue(first, Some(ci)) {
                    conflict = Some(ci);
                    // Keep the remaining watchers.
                    keep.extend_from_slice(&watch_list[i..]);
                    break;
                }
            }
            watch_list.clear();
            debug_assert!(self.watches[l.index()].is_empty());
            self.watches[l.index()] = keep;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.var_inc;
        if *a > ACTIVITY_RESCALE {
            for act in &mut self.activity {
                *act /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
    }

    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 reserved for UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        loop {
            // Visit the reason clause.
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[conflict as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var().0 as usize;
                if !seen[v] && self.levels[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.levels[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("resolvent literal").var().0 as usize;
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.expect("uip").negate();
                break;
            }
            conflict = self.reasons[pv].expect("non-decision has a reason");
        }
        // Backjump level: second-highest level in the learnt clause.
        let bt = learnt[1..]
            .iter()
            .map(|l| self.levels[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level in position 1 for watching.
        if learnt.len() > 1 {
            let pos = 1 + learnt[1..]
                .iter()
                .position(|l| self.levels[l.var().0 as usize] == bt)
                .expect("literal at backjump level");
            learnt.swap(1, pos);
        }
        // LBD ("glue"): distinct decision levels across the learnt
        // clause, computed before backtracking unassigns the UIP.
        let mut lvls: Vec<u32> = learnt
            .iter()
            .map(|l| self.levels[l.var().0 as usize])
            .collect();
        lvls.sort_unstable();
        lvls.dedup();
        let lbd = lvls.len() as u32;
        (learnt, bt, lbd)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level to pop");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail entry");
                let v = l.var().0 as usize;
                self.assigns[v] = Assign::Unset;
                self.reasons[v] = None;
            }
        }
        // Clamp only: literals enqueued at the target level but not yet
        // propagated (units from `add_clause`) must stay queued, or their
        // consequences — including level-0 conflicts — are missed.
        self.prop_head = self.trail.len().min(self.prop_head);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // Lazy max-activity scan (instances are small enough). Variables
        // in no clause are never branched on: they cannot contribute to a
        // conflict, so the model is simply left partial over them (see
        // `value`) and callers choose the default.
        let mut best: Option<Var> = None;
        let mut best_act = -1.0;
        let seed = self.profile.seed;
        for v in 0..self.num_vars() {
            if self.occurs[v] && self.assigns[v] == Assign::Unset {
                let act = self.activity[v];
                // Seed 0 keeps the canonical first-maximum scan; other
                // seeds break activity ties by a deterministic rank so
                // portfolio members branch differently from move one.
                let better = act > best_act
                    || (seed != 0
                        && act == best_act
                        && best.is_some_and(|b| {
                            splitmix64(seed ^ v as u64) > splitmix64(seed ^ u64::from(b.0))
                        }));
                if better {
                    best_act = act;
                    best = Some(Var(v as u32));
                }
            }
        }
        best.map(|v| Lit::new(v, self.phase[v.0 as usize]))
    }

    /// Decides satisfiability of the accumulated clauses, running the
    /// search to completion (an unlimited [`SolveBudget`]).
    pub fn solve(&mut self) -> SatOutcome {
        self.solve_budgeted(SolveBudget::UNLIMITED)
    }

    /// Like [`SatSolver::solve`], but gives up with [`SatOutcome::Unknown`]
    /// once the budget's conflict or decision limit is reached. Limits
    /// count work done within this call, so re-invoking with a fresh
    /// budget continues the search (learnt clauses are kept).
    pub fn solve_budgeted(&mut self, budget: SolveBudget) -> SatOutcome {
        self.search(&[], budget)
    }

    /// Solves under retractable *assumption* literals.
    ///
    /// Assumptions are enqueued as pseudo-decisions at successive levels
    /// (MiniSat style), so everything the solver accumulates — clause
    /// database, watches, activities, phases, and learnt clauses — stays
    /// alive across calls and the next call benefits from the last one's
    /// work. Outcomes:
    ///
    /// * [`SatOutcome::Sat`]: a model consistent with every assumption is
    ///   on the trail (query via [`SatSolver::value`]).
    /// * [`SatOutcome::Unsat`]: unsatisfiable *under these assumptions*.
    ///   Only a conflict at decision level 0 marks the instance
    ///   permanently unsat; an assumption-level conflict is retracted by
    ///   backtracking and later calls may still answer `Sat`.
    /// * [`SatOutcome::Unknown`]: the per-call `budget` ran out. Learnt
    ///   clauses are kept, so a re-solve resumes rather than restarts.
    ///
    /// Learnt clauses never resolve on assumption literals (assumptions
    /// carry no reason clause), so everything learnt is implied by the
    /// clause database alone and remains valid once the assumptions are
    /// retracted.
    pub fn solve_assuming(&mut self, assumptions: &[Lit], budget: SolveBudget) -> SatOutcome {
        self.search(assumptions, budget)
    }

    /// Decision levels whose pseudo-decisions can be kept from the
    /// previous `search` call: the longest common prefix of the old and
    /// new assumption lists, capped by the levels actually still on the
    /// trail. Level k (1-based) holds `last_assumptions[k-1]`, an
    /// invariant every exit path of `search` maintains.
    fn reusable_prefix(&self, assumptions: &[Lit]) -> u32 {
        if !self.trail_reuse || self.unsat {
            return 0;
        }
        let max = (self.decision_level() as usize)
            .min(self.last_assumptions.len())
            .min(assumptions.len());
        let mut k = 0;
        while k < max && assumptions[k] == self.last_assumptions[k] {
            k += 1;
        }
        k as u32
    }

    /// The CDCL main loop shared by plain and assumption solving.
    fn search(&mut self, assumptions: &[Lit], budget: SolveBudget) -> SatOutcome {
        debug_assert!(
            assumptions
                .iter()
                .all(|l| !self.eliminated[l.var().0 as usize]),
            "assumption on a BVE-eliminated var; freeze assumption vars"
        );
        // Retract whatever a previous call left on the trail — wholly,
        // or (with trail reuse on) only past the longest common prefix
        // of retractable assumptions, skipping re-propagation of the
        // shared prefix. The kept prefix was a propagation fixpoint when
        // the previous call left it and the clause database is unchanged
        // since (`add_clause`/`inprocess` both retract to level 0, which
        // empties the reusable prefix), so it still is one.
        let keep = self.reusable_prefix(assumptions);
        self.backtrack(keep);
        if self.unsat {
            return SatOutcome::Unsat;
        }
        if keep == 0 {
            if self.propagate().is_some() {
                self.unsat = true;
                return SatOutcome::Unsat;
            }
        } else {
            self.trail_reused_lits += self.trail.len() as u64;
        }
        self.last_assumptions.clear();
        self.last_assumptions.extend_from_slice(assumptions);
        let n_assumps = assumptions.len() as u32;
        let conflicts_at_entry = self.conflicts;
        let decisions_at_entry = self.decisions;
        let restart_base = self.profile.restart_base.max(1);
        let mut luby_idx = 1u64;
        let mut conflicts_until_restart = restart_base * luby(luby_idx);
        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.unsat = true;
                        return SatOutcome::Unsat;
                    }
                    if self.decision_level() <= n_assumps {
                        // The conflict is forced by the assumptions alone:
                        // unsat under them, but not permanently. With
                        // trail reuse, keep the consistent prefix below
                        // the conflicting assumption level for the next
                        // call; the conflicting level itself is popped.
                        let floor = if self.trail_reuse {
                            self.decision_level() - 1
                        } else {
                            0
                        };
                        self.backtrack(floor);
                        return SatOutcome::Unsat;
                    }
                    let (learnt, bt, lbd) = self.analyze(conflict);
                    self.learnt_literals += learnt.len() as u64;
                    self.backtrack(bt);
                    if learnt.len() == 1 {
                        let ok = self.enqueue(learnt[0], None);
                        debug_assert!(ok, "learnt unit must be enqueueable");
                    } else {
                        let idx = self.clauses.len() as u32;
                        self.watches[learnt[0].negate().index()].push(idx);
                        self.watches[learnt[1].negate().index()].push(idx);
                        let first = learnt[0];
                        self.clauses.push(Clause {
                            lits: learnt,
                            learnt: true,
                            lbd,
                            birth: self.clauses_added,
                        });
                        self.clauses_added += 1;
                        self.num_learnts += 1;
                        let ok = self.enqueue(first, Some(idx));
                        debug_assert!(ok, "uip literal must be enqueueable");
                    }
                    self.var_inc /= VAR_DECAY;
                    // Budget check sits after clause learning so an
                    // interrupted search still keeps what it learnt.
                    if budget
                        .max_conflicts
                        .is_some_and(|max| self.conflicts - conflicts_at_entry >= max)
                    {
                        self.backtrack(self.unknown_floor(n_assumps));
                        return SatOutcome::Unknown;
                    }
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                    if conflicts_until_restart == 0 {
                        luby_idx += 1;
                        conflicts_until_restart = restart_base * luby(luby_idx);
                        self.restarts += 1;
                        if self.num_learnts as u64 >= self.reduce_limit() {
                            // Full restart with a two-tier learnt-DB
                            // reduction; assumptions are re-enqueued by
                            // the level check below.
                            self.backtrack(0);
                            self.maintain(true, false);
                            if self.unsat {
                                return SatOutcome::Unsat;
                            }
                        } else {
                            // Restart to the assumption floor: the
                            // retractable assumption trail survives.
                            self.backtrack(n_assumps.min(self.decision_level()));
                        }
                    }
                }
                None => {
                    if (self.decision_level() as usize) < assumptions.len() {
                        let a = assumptions[self.decision_level() as usize];
                        match self.value_lit(a) {
                            Some(true) => {
                                // Already implied: push a dummy level to
                                // keep level ↔ assumption-index in step.
                                self.trail_lim.push(self.trail.len());
                            }
                            Some(false) => {
                                // The assumption is falsified by the
                                // prefix below; with trail reuse the
                                // consistent prefix levels stay put.
                                if !self.trail_reuse {
                                    self.backtrack(0);
                                }
                                return SatOutcome::Unsat;
                            }
                            None => {
                                self.trail_lim.push(self.trail.len());
                                let ok = self.enqueue(a, None);
                                debug_assert!(ok, "assumption literal was unset");
                            }
                        }
                    } else {
                        match self.pick_branch() {
                            None => {
                                self.reconstruct_eliminated();
                                return SatOutcome::Sat;
                            }
                            Some(decision) => {
                                if budget
                                    .max_decisions
                                    .is_some_and(|max| self.decisions - decisions_at_entry >= max)
                                {
                                    self.backtrack(self.unknown_floor(n_assumps));
                                    return SatOutcome::Unknown;
                                }
                                self.decisions += 1;
                                self.trail_lim.push(self.trail.len());
                                let ok = self.enqueue(decision, None);
                                debug_assert!(ok, "decision variable was unset");
                            }
                        }
                    }
                }
            }
        }
    }

    /// The backtrack floor for a budget-exhausted (`Unknown`) exit: with
    /// trail reuse the assumption levels stay on the trail so a re-solve
    /// under the same (or prefix-sharing) assumptions resumes without
    /// re-propagating them; without it, the classic full retraction.
    fn unknown_floor(&self, n_assumps: u32) -> u32 {
        if self.trail_reuse {
            n_assumps.min(self.decision_level())
        } else {
            0
        }
    }

    /// Replays the elimination stack in reverse to give every
    /// BVE-eliminated variable a value consistent with the clauses it
    /// was resolved out of. Runs on every `Sat` exit; afterwards
    /// [`SatSolver::value`] is total over eliminated vars and satisfies
    /// the original (pre-elimination) clause set.
    fn reconstruct_eliminated(&mut self) {
        if self.elim_stack.is_empty() {
            return;
        }
        let stack = std::mem::take(&mut self.elim_stack);
        for (v, stored) in stack.iter().rev() {
            let vi = v.0 as usize;
            // A var's stored clauses only mention vars that are either
            // still live (assigned or defaulted like any model read) or
            // eliminated *later* — already reconstructed by this reverse
            // walk. Default to the saved phase; flip only if some stored
            // clause is otherwise unsatisfied.
            let mut val = self.phase[vi];
            for clause in stored {
                let needs_v = !clause
                    .iter()
                    .any(|&l| l.var() != *v && self.recon_lit_true(l));
                if needs_v {
                    let polarity = clause
                        .iter()
                        .find(|l| l.var() == *v)
                        .expect("stored clause mentions its eliminated var")
                        .is_pos();
                    val = polarity;
                }
            }
            self.elim_values[vi] = val;
            debug_assert!(
                stored.iter().all(|clause| clause.iter().any(|&l| {
                    if l.var() == *v {
                        val == l.is_pos()
                    } else {
                        self.recon_lit_true(l)
                    }
                })),
                "reconstruction left a resolved-away clause unsatisfied"
            );
        }
        self.elim_stack = stack;
    }

    /// Truth of `l` during model reconstruction: live vars read the
    /// trail (unassigned defaults to `false`, the same default callers
    /// apply to partial models), already-reconstructed vars read
    /// `elim_values`.
    fn recon_lit_true(&self, l: Lit) -> bool {
        let vi = l.var().0 as usize;
        let val = if self.eliminated[vi] {
            self.elim_values[vi]
        } else {
            matches!(self.assigns[vi], Assign::True)
        };
        val == l.is_pos()
    }

    /// Runs bounded inprocessing at decision level 0: level-0 clause
    /// simplification, forward subsumption, self-subsuming resolution,
    /// bounded variable elimination (unless disabled), and — when the
    /// learnt database has outgrown its threshold — two-tier LBD-based
    /// reduction. Any active trail is retracted
    /// first, so call it *between* solves (the word-level solver does so
    /// between `check_assuming` calls). Satisfiability over the frozen
    /// variables, all future solve answers, and variable numbering are
    /// preserved; only clause indices are compacted.
    pub fn inprocess(&mut self) {
        if self.unsat {
            return;
        }
        self.backtrack(0);
        let reduce = self.num_learnts as u64 >= self.reduce_limit();
        self.maintain(reduce, true);
    }

    /// Level-0 maintenance: simplify, optionally reduce/subsume, then
    /// compact the clause database and rebuild the watch lists.
    fn maintain(&mut self, reduce: bool, subsume: bool) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.unsat {
            return;
        }
        // Close the level-0 assignment first (valid watches required).
        if self.propagate().is_some() {
            self.unsat = true;
            return;
        }
        let mut deleted = vec![false; self.clauses.len()];
        if !self.simplify_pass(&mut deleted) {
            return;
        }
        if reduce {
            self.reduce_learnts(&mut deleted);
        }
        if subsume {
            self.subsume_pass(&mut deleted);
            // Strengthening can surface new units; re-simplify so no
            // surviving clause mentions an assigned variable.
            if self.unsat || !self.simplify_pass(&mut deleted) {
                return;
            }
            if self.bve {
                self.bve_pass(&mut deleted);
                // Unit resolvents assign vars; re-simplify so the
                // compaction precondition (no clause mentions an
                // assigned var) holds for the resolvents too.
                if self.unsat || !self.simplify_pass(&mut deleted) {
                    return;
                }
            }
        }
        self.compact(&deleted);
    }

    /// Bounded variable elimination (SatELite-style, NiVER-bounded):
    /// resolves an unfrozen, unassigned variable out of the database
    /// when the non-tautological resolvents of its positive × negative
    /// occurrences do not outnumber the clauses they replace. Learnt
    /// clauses mentioning the variable are simply deleted (they are
    /// consequences, never needed for equisatisfiability); the replaced
    /// *original* clauses go onto the elimination stack so
    /// `reconstruct_eliminated` can rebuild the var's model value on
    /// Sat. Work is capped by occurrence-count, resolvent-length, and
    /// literal-visit budgets so the pass stays a bounded pause.
    ///
    /// Resolvents deliberately do **not** bump `clauses_added`: that
    /// counter feeds the blast context's reuse accounting and the
    /// inprocessing cadence, both of which must not drift between
    /// `SOCCAR_BVE` on/off runs.
    fn bve_pass(&mut self, deleted: &mut Vec<bool>) {
        const BVE_MAX_OCC: usize = 10;
        const BVE_MAX_RESOLVENT: usize = 16;
        const BVE_BUDGET: u64 = 200_000;

        // Occurrence lists over the live clauses, maintained as
        // resolvents are appended so later candidates see them.
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); self.num_vars() * 2];
        for (ci, clause) in self.clauses.iter().enumerate() {
            if deleted[ci] {
                continue;
            }
            for &l in &clause.lits {
                occ[l.index()].push(ci as u32);
            }
        }
        let mut budget = BVE_BUDGET;
        for v in 0..self.num_vars() {
            if budget == 0 {
                break;
            }
            if self.frozen[v] || self.eliminated[v] || self.assigns[v] != Assign::Unset {
                continue;
            }
            let pos_lit = Lit::pos(Var(v as u32));
            let neg_lit = Lit::neg(Var(v as u32));
            let live = |list: &[u32], deleted: &[bool], clauses: &[Clause], learnt: bool| {
                list.iter()
                    .copied()
                    .filter(|&c| !deleted[c as usize] && clauses[c as usize].learnt == learnt)
                    .collect::<Vec<u32>>()
            };
            let pos_cls = live(&occ[pos_lit.index()], deleted, &self.clauses, false);
            let neg_cls = live(&occ[neg_lit.index()], deleted, &self.clauses, false);
            if pos_cls.len() > BVE_MAX_OCC || neg_cls.len() > BVE_MAX_OCC {
                continue;
            }
            // Build all non-tautological resolvents; abort the candidate
            // if any grows too long or the visit budget runs dry.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut aborted = false;
            'outer: for &pi in &pos_cls {
                for &ni in &neg_cls {
                    let pc = &self.clauses[pi as usize].lits;
                    let nc = &self.clauses[ni as usize].lits;
                    let cost = (pc.len() + nc.len()) as u64;
                    if budget < cost {
                        budget = 0;
                        aborted = true;
                        break 'outer;
                    }
                    budget -= cost;
                    if let Some(r) = resolve_on(pc, nc, Var(v as u32)) {
                        if r.len() > BVE_MAX_RESOLVENT {
                            aborted = true;
                            break 'outer;
                        }
                        resolvents.push(r);
                    }
                }
            }
            // NiVER growth bound: never let elimination grow the database.
            if aborted || resolvents.len() > pos_cls.len() + neg_cls.len() {
                continue;
            }
            // Commit. Store the replaced originals for reconstruction,
            // drop every clause mentioning v (learnt ones outright), and
            // append the resolvents.
            let mut stored: Vec<Vec<Lit>> = Vec::with_capacity(pos_cls.len() + neg_cls.len());
            for &ci in pos_cls.iter().chain(neg_cls.iter()) {
                stored.push(self.clauses[ci as usize].lits.clone());
                self.unlink(ci as usize, deleted);
            }
            for lit in [pos_lit, neg_lit] {
                let learnt_with_v = live(&occ[lit.index()], deleted, &self.clauses, true);
                for ci in learnt_with_v {
                    self.unlink(ci as usize, deleted);
                }
            }
            self.eliminated[v] = true;
            self.occurs[v] = false;
            self.eliminated_vars += 1;
            self.elim_stack.push((Var(v as u32), stored));
            for r in resolvents {
                match r.len() {
                    0 => unreachable!("both parents of an empty resolvent would be units"),
                    1 => {
                        if !self.enqueue(r[0], None) {
                            self.unsat = true;
                            return;
                        }
                    }
                    _ => {
                        let idx = self.clauses.len() as u32;
                        for &l in &r {
                            occ[l.index()].push(idx);
                        }
                        deleted.push(false);
                        self.clauses.push(Clause {
                            lits: r,
                            learnt: false,
                            lbd: 0,
                            birth: self.clauses_added,
                        });
                    }
                }
            }
        }
    }

    fn unlink(&mut self, ci: usize, deleted: &mut [bool]) {
        if deleted[ci] {
            return;
        }
        deleted[ci] = true;
        if self.clauses[ci].learnt {
            self.num_learnts -= 1;
        }
    }

    /// Simplifies every clause against the (permanent) level-0
    /// assignment to fixpoint: satisfied clauses are dropped, false
    /// literals stripped, new units enqueued directly. Scanning every
    /// clause per pass is complete unit propagation, so the stale watch
    /// lists are never consulted. Returns `false` on a level-0 conflict
    /// (the solver is latched unsat).
    fn simplify_pass(&mut self, deleted: &mut [bool]) -> bool {
        loop {
            let trail_before = self.trail.len();
            for ci in 0..self.clauses.len() {
                if deleted[ci] {
                    continue;
                }
                let mut satisfied = false;
                let mut has_false = false;
                for &l in &self.clauses[ci].lits {
                    match self.value_lit(l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => has_false = true,
                        None => {}
                    }
                }
                if satisfied {
                    self.unlink(ci, deleted);
                    continue;
                }
                if !has_false {
                    continue;
                }
                let mut lits = std::mem::take(&mut self.clauses[ci].lits);
                lits.retain(|&l| self.value_lit(l) != Some(false));
                match lits.len() {
                    0 => {
                        self.unsat = true;
                        return false;
                    }
                    1 => {
                        let unit = lits[0];
                        self.clauses[ci].lits = lits;
                        self.unlink(ci, deleted);
                        if !self.enqueue(unit, None) {
                            self.unsat = true;
                            return false;
                        }
                    }
                    _ => self.clauses[ci].lits = lits,
                }
            }
            if self.trail.len() == trail_before {
                return true;
            }
        }
    }

    /// Two-tier learnt reduction: glue clauses (LBD ≤ 2) are permanent;
    /// of the rest, the worse half (highest LBD first, oldest first
    /// among equals) is deleted.
    fn reduce_learnts(&mut self, deleted: &mut [bool]) {
        let mut cands: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| !deleted[i] && self.clauses[i].learnt && self.clauses[i].lbd > 2)
            .collect();
        cands.sort_by(|&a, &b| {
            self.clauses[b]
                .lbd
                .cmp(&self.clauses[a].lbd)
                .then(a.cmp(&b))
        });
        let drop_n = cands.len() / 2;
        for &ci in &cands[..drop_n] {
            self.unlink(ci, deleted);
            self.learnt_deleted += 1;
        }
        self.learnt_kept += self.num_learnts as u64;
        let lim = self.reduce_limit();
        self.reduce_threshold = lim + lim / 2;
    }

    /// Bounded forward subsumption and self-subsuming resolution over
    /// the live clauses. Work is capped by a literal-comparison budget
    /// so inprocessing stays a bounded pause, never a second search.
    fn subsume_pass(&mut self, deleted: &mut [bool]) {
        const MAX_CLAUSE_LEN: usize = 16;
        const CHECK_BUDGET: u64 = 200_000;
        let n = self.clauses.len();
        let mut sigs: Vec<u64> = self.clauses.iter().map(|c| clause_sig(&c.lits)).collect();
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); self.num_vars() * 2];
        for (ci, dead) in deleted.iter().enumerate().take(n) {
            if *dead || self.clauses[ci].lits.len() > MAX_CLAUSE_LEN {
                continue;
            }
            for &l in &self.clauses[ci].lits {
                occ[l.index()].push(ci as u32);
            }
        }
        let mut order: Vec<usize> = (0..n)
            .filter(|&i| !deleted[i] && self.clauses[i].lits.len() <= MAX_CLAUSE_LEN)
            .collect();
        order.sort_by_key(|&i| (self.clauses[i].lits.len(), i));
        let mut budget = CHECK_BUDGET;
        for ci in order {
            if deleted[ci] {
                continue;
            }
            if budget == 0 {
                break;
            }
            let lits = self.clauses[ci].lits.clone();
            let Some(&pivot) = lits.iter().min_by_key(|l| occ[l.index()].len()) else {
                continue;
            };
            // Forward subsumption: ci ⊆ cj deletes cj. Candidates are
            // found through ci's rarest literal.
            for &cand in &occ[pivot.index()] {
                let cj = cand as usize;
                if cj == ci || deleted[cj] || self.clauses[cj].lits.len() < lits.len() {
                    continue;
                }
                budget = budget.saturating_sub(lits.len() as u64);
                if budget == 0 {
                    break;
                }
                if sigs[ci] & !sigs[cj] != 0 {
                    continue;
                }
                if is_subset(&lits, &self.clauses[cj].lits) {
                    self.unlink(cj, deleted);
                    self.subsumed += 1;
                }
            }
            // Self-subsuming resolution: if (ci \ {l}) ∪ {¬l} ⊆ cj,
            // resolving on l shows cj can drop ¬l.
            for &l in &lits {
                if budget == 0 {
                    break;
                }
                for &cand in &occ[l.negate().index()] {
                    let cj = cand as usize;
                    if cj == ci || deleted[cj] || self.clauses[cj].lits.len() < lits.len() {
                        continue;
                    }
                    budget = budget.saturating_sub(lits.len() as u64);
                    if budget == 0 {
                        break;
                    }
                    if sigs[ci] & !sigs[cj] != 0 {
                        continue;
                    }
                    if subsumes_with_flip(&lits, l, &self.clauses[cj].lits) {
                        let neg = l.negate();
                        self.clauses[cj].lits.retain(|&x| x != neg);
                        sigs[cj] = clause_sig(&self.clauses[cj].lits);
                        self.subsumed += 1;
                        if self.clauses[cj].lits.len() == 1 {
                            let unit = self.clauses[cj].lits[0];
                            self.unlink(cj, deleted);
                            if !self.enqueue(unit, None) {
                                self.unsat = true;
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Drops deleted clauses and rebuilds the watch lists from scratch.
    /// Precondition (established by `simplify_pass`): no surviving
    /// clause mentions an assigned variable, so watching the first two
    /// literals is sound. Level-0 reasons are cleared — conflict
    /// analysis only dereferences reasons above level 0, so no dangling
    /// clause index survives the compaction.
    fn compact(&mut self, deleted: &[bool]) {
        debug_assert_eq!(self.decision_level(), 0);
        let old = std::mem::take(&mut self.clauses);
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in old.into_iter().enumerate() {
            if deleted[i] {
                continue;
            }
            debug_assert!(c.lits.len() >= 2, "unit/empty clause survived simplify");
            let idx = self.clauses.len() as u32;
            self.watches[c.lits[0].negate().index()].push(idx);
            self.watches[c.lits[1].negate().index()].push(idx);
            self.clauses.push(c);
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().0 as usize;
            self.reasons[v] = None;
        }
    }
}

fn clause_sig(lits: &[Lit]) -> u64 {
    lits.iter().fold(0u64, |s, l| s | 1u64 << (l.var().0 % 64))
}

/// The resolvent of `pc` (containing `v` positively) and `nc`
/// (containing `v` negatively) on `v`, or `None` if it is a tautology.
/// The result is sorted and deduplicated.
fn resolve_on(pc: &[Lit], nc: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut r: Vec<Lit> = pc
        .iter()
        .chain(nc.iter())
        .copied()
        .filter(|l| l.var() != v)
        .collect();
    r.sort_unstable();
    r.dedup();
    if r.windows(2).any(|w| w[0].var() == w[1].var()) {
        return None; // x ∨ ¬x: tautology
    }
    Some(r)
}

fn is_subset(small: &[Lit], big: &[Lit]) -> bool {
    small.iter().all(|l| big.contains(l))
}

/// `true` if `small` with `flip` negated is a subset of `big` — the
/// self-subsuming-resolution condition.
fn subsumes_with_flip(small: &[Lit], flip: Lit, big: &[Lit]) -> bool {
    small.iter().all(|&l| {
        if l == flip {
            big.contains(&l.negate())
        } else {
            big.contains(&l)
        }
    })
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
fn luby(mut i: u64) -> u64 {
    loop {
        // Find k with 2^k - 1 >= i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));

        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = SatSolver::new();
        s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn tautologies_ignored() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::neg(a)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn chain_propagation() {
        // a ∧ (¬a∨b) ∧ (¬b∨c) ∧ (¬c∨d) forces all true.
        let mut s = SatSolver::new();
        let vs: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[Lit::pos(vs[0])]);
        for w in vs.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(s.solve(), SatOutcome::Sat);
        for v in vs {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT requiring real search.
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for hole in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i][hole]), Lit::neg(p[j][hole])]);
                }
            }
        }
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // (a⊕b)=1, (b⊕c)=1, a=1 → b=0, c=1.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let xor = |s: &mut SatSolver, x: Var, y: Var| {
            s.add_clause(&[Lit::pos(x), Lit::pos(y)]);
            s.add_clause(&[Lit::neg(x), Lit::neg(y)]);
        };
        xor(&mut s, a, b);
        xor(&mut s, b, c);
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));
        assert_eq!(s.value(c), Some(true));
    }

    fn pigeonhole(pigeons: usize, holes: usize) -> SatSolver {
        let mut s = SatSolver::new();
        let vars: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &vars {
            let lits: Vec<Lit> = row.iter().map(|v| Lit::pos(*v)).collect();
            s.add_clause(&lits);
        }
        for (i, row_i) in vars.iter().enumerate() {
            for row_j in &vars[i + 1..] {
                for (vi, vj) in row_i.iter().zip(row_j) {
                    s.add_clause(&[Lit::neg(*vi), Lit::neg(*vj)]);
                }
            }
        }
        s
    }

    #[test]
    fn conflict_budget_yields_unknown_on_hard_unsat() {
        let mut s = pigeonhole(6, 5);
        assert_eq!(
            s.solve_budgeted(SolveBudget::conflicts(1)),
            SatOutcome::Unknown
        );
        assert!(s.conflicts() >= 1);
        // Resuming with no budget still reaches the right answer — the
        // interrupted search kept its learnt clauses.
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn decision_budget_yields_unknown() {
        let mut s = pigeonhole(6, 5);
        let budget = SolveBudget {
            max_conflicts: None,
            max_decisions: Some(1),
        };
        assert_eq!(s.solve_budgeted(budget), SatOutcome::Unknown);
        assert_eq!(s.decisions(), 1);
    }

    #[test]
    fn generous_budget_agrees_with_unbudgeted() {
        let mut a = pigeonhole(4, 3);
        let mut b = pigeonhole(4, 3);
        let budget = SolveBudget {
            max_conflicts: Some(1_000_000),
            max_decisions: Some(1_000_000),
        };
        assert_eq!(a.solve_budgeted(budget), b.solve());
        assert!(SolveBudget::default().is_unlimited());
        assert!(!SolveBudget::conflicts(5).is_unlimited());
    }

    #[test]
    fn assumptions_flip_between_calls() {
        // (a ∨ b) with assumption ¬a forces b; assumption ¬b forces a.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(
            s.solve_assuming(&[Lit::neg(a)], SolveBudget::UNLIMITED),
            SatOutcome::Sat
        );
        assert_eq!(s.value(b), Some(true));
        assert_eq!(
            s.solve_assuming(&[Lit::neg(b)], SolveBudget::UNLIMITED),
            SatOutcome::Sat
        );
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn unsat_under_assumptions_is_retractable() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        // ¬a ∧ ¬b contradicts the clause — but only under assumptions.
        assert_eq!(
            s.solve_assuming(&[Lit::neg(a), Lit::neg(b)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
        // The instance itself is still satisfiable.
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(
            s.solve_assuming(&[Lit::pos(a)], SolveBudget::UNLIMITED),
            SatOutcome::Sat
        );
    }

    #[test]
    fn contradictory_assumptions_unsat_without_poisoning() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert_eq!(
            s.solve_assuming(&[Lit::pos(a), Lit::neg(a)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
        assert_eq!(s.solve(), SatOutcome::Sat);
    }

    #[test]
    fn permanent_unsat_survives_assumption_calls() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(
            s.solve_assuming(&[Lit::pos(b)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
        // A level-0 conflict is permanent: every later call stays Unsat.
        assert_eq!(
            s.solve_assuming(&[], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn assumption_budget_unknown_then_resume() {
        let mut s = pigeonhole(6, 5);
        let extra = s.new_var();
        assert_eq!(
            s.solve_assuming(&[Lit::pos(extra)], SolveBudget::conflicts(1)),
            SatOutcome::Unknown
        );
        let learnt_after_budget = s.num_clauses();
        // Re-solving under the same assumptions resumes with the learnt
        // clauses intact and reaches the definite answer.
        assert_eq!(
            s.solve_assuming(&[Lit::pos(extra)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
        assert!(s.num_clauses() >= learnt_after_budget);
    }

    #[test]
    fn units_added_after_a_sat_assumption_call_stick() {
        // add_clause used to enqueue new units on the previous call's
        // stale Sat trail; solve_assuming's entry backtrack then dropped
        // them (or, if the trail falsified the unit, the instance was
        // wrongly latched permanently unsat).
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(
            s.solve_assuming(&[Lit::pos(a)], SolveBudget::UNLIMITED),
            SatOutcome::Sat
        );
        // The stale trail has a = true, which falsifies this new unit.
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(
            s.solve_assuming(&[], SolveBudget::UNLIMITED),
            SatOutcome::Sat
        );
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.value(b), Some(true));
        // And the unit is a real hard clause, not a lost enqueue.
        assert_eq!(
            s.solve_assuming(&[Lit::pos(a)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn pending_level0_units_propagate_at_assumption_solve_entry() {
        // The entry backtrack(0) of solve_assuming must not advance the
        // propagation head past units that add_clause enqueued at level 0
        // but nothing has propagated yet — skipping them here leaves the
        // binary clause below with both watches false and unscanned,
        // turning this Unsat instance into a wrong Sat.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::pos(b)]);
        assert_eq!(
            s.solve_assuming(&[], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn models_are_partial_over_nonoccurring_vars() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let lonely = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));
        // `lonely` occurs in no clause: never branched on, stays unset.
        assert_eq!(s.value(lonely), None);
    }

    #[test]
    fn assumptions_agree_with_hard_units() {
        // Random instances: solve_assuming(lits) must agree with a fresh
        // solver where the same lits are added as unit clauses.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..30 {
            let n_vars = 4 + (rng() % 7) as usize;
            let n_clauses = 2 + (rng() % (3 * n_vars as u64)) as usize;
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let c: Vec<Lit> = (0..3)
                    .map(|_| Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0))
                    .collect();
                clauses.push(c);
            }
            let mut inc = SatSolver::new();
            for _ in 0..n_vars {
                inc.new_var();
            }
            for c in &clauses {
                inc.add_clause(c);
            }
            // Three assumption sets against the SAME incremental solver.
            for set in 0..3 {
                let n_assumps = (rng() % (n_vars as u64).min(3)) as usize;
                let assumps: Vec<Lit> = (0..n_assumps)
                    .map(|_| Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0))
                    .collect();
                let mut fresh = SatSolver::new();
                for _ in 0..n_vars {
                    fresh.new_var();
                }
                for c in &clauses {
                    fresh.add_clause(c);
                }
                for a in &assumps {
                    fresh.add_clause(&[*a]);
                }
                let want = fresh.solve();
                let got = inc.solve_assuming(&assumps, SolveBudget::UNLIMITED);
                assert_eq!(got, want, "round {round} set {set} disagreed");
                if got == SatOutcome::Sat {
                    for c in &clauses {
                        assert!(
                            c.iter().any(|l| inc.value(l.var()) == Some(l.is_pos())),
                            "model violates clause in round {round}"
                        );
                    }
                    for a in &assumps {
                        assert_eq!(inc.value_lit(*a), Some(true), "assumption not honored");
                    }
                }
            }
        }
    }

    #[test]
    fn profiles_agree_on_answers() {
        // Diverse profiles steer the search, never the answer.
        let profiles = [
            SolverProfile::default(),
            SolverProfile {
                seed: 0x9E37_79B9,
                invert_phase: true,
                restart_base: 3,
                reduce_base: 8,
            },
            SolverProfile {
                seed: 0xD1B5_4A32,
                invert_phase: false,
                restart_base: 7,
                reduce_base: 16,
            },
        ];
        let mut seed = 0xDEAD_BEEF_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..25 {
            let n_vars = 4 + (rng() % 8) as usize;
            let n_clauses = 2 + (rng() % (4 * n_vars as u64)) as usize;
            let clauses: Vec<Vec<Lit>> = (0..n_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0))
                        .collect()
                })
                .collect();
            let mut want = None;
            for p in profiles {
                let mut s = SatSolver::new();
                s.set_profile(p);
                for _ in 0..n_vars {
                    s.new_var();
                }
                for c in &clauses {
                    s.add_clause(c);
                }
                let got = s.solve();
                if got == SatOutcome::Sat {
                    for c in &clauses {
                        assert!(
                            c.iter().any(|l| s.value(l.var()) == Some(l.is_pos())),
                            "model violates clause in round {round} under {p:?}"
                        );
                    }
                }
                match &want {
                    None => want = Some(got),
                    Some(w) => assert_eq!(&got, w, "round {round}: {p:?} disagreed"),
                }
            }
        }
    }

    #[test]
    fn aggressive_reduction_keeps_correctness() {
        // A tiny reduce_base + restart_base forces restarts and learnt-DB
        // reductions mid-search on a hard UNSAT instance.
        let mut s = pigeonhole(6, 5);
        s.set_profile(SolverProfile {
            seed: 0,
            invert_phase: false,
            restart_base: 2,
            reduce_base: 8,
        });
        assert_eq!(s.solve(), SatOutcome::Unsat);
        assert!(s.restarts() > 0, "expected restarts under base 2");
        assert!(s.learnt_deleted() > 0, "expected learnt-DB reductions");
        assert!(s.clauses_added() >= s.num_clauses() as u64);
    }

    #[test]
    fn reduction_during_assumption_solving_is_sound() {
        // Same forcing profile, but through the retractable-assumption
        // path: answers must match a fresh untouched solver.
        let mut s = pigeonhole(6, 5);
        let extra = s.new_var();
        s.set_profile(SolverProfile {
            seed: 0,
            invert_phase: false,
            restart_base: 2,
            reduce_base: 8,
        });
        assert_eq!(
            s.solve_assuming(&[Lit::pos(extra)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
        assert_eq!(
            s.solve_assuming(&[], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn subsumption_removes_redundant_clauses() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
        let before = s.num_clauses();
        s.inprocess();
        assert!(
            s.subsumed() >= 1,
            "the 3-clause is subsumed by the 2-clause"
        );
        assert!(s.num_clauses() < before);
        assert_eq!(s.solve(), SatOutcome::Sat);
        // clauses_added is a high-water mark: deletion never lowers it.
        assert_eq!(s.clauses_added(), before as u64);
    }

    #[test]
    fn self_subsuming_resolution_strengthens_to_unit() {
        // (a ∨ b) and (¬a ∨ b): resolving on a strengthens the second
        // clause to the unit b.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        s.inprocess();
        assert!(s.subsumed() >= 1);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn inprocess_between_assumption_calls_preserves_answers() {
        let mut seed = 0x1234_5678_9ABC_DEF0_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..20 {
            let n_vars = 4 + (rng() % 7) as usize;
            let n_clauses = 2 + (rng() % (3 * n_vars as u64)) as usize;
            let clauses: Vec<Vec<Lit>> = (0..n_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0))
                        .collect()
                })
                .collect();
            let mut inc = SatSolver::new();
            for _ in 0..n_vars {
                let v = inc.new_var();
                // Assumptions below land on arbitrary vars, so all vars
                // must be frozen against BVE (the freeze contract);
                // bve_agrees_with_unsimplified covers the unfrozen case.
                inc.freeze_var(v);
            }
            for c in &clauses {
                inc.add_clause(c);
            }
            for set in 0..3 {
                // Inprocess between every call: answers must still match
                // a fresh solver with the assumptions as hard units.
                inc.inprocess();
                let n_assumps = (rng() % (n_vars as u64).min(3)) as usize;
                let assumps: Vec<Lit> = (0..n_assumps)
                    .map(|_| Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0))
                    .collect();
                let mut fresh = SatSolver::new();
                for _ in 0..n_vars {
                    fresh.new_var();
                }
                for c in &clauses {
                    fresh.add_clause(c);
                }
                for a in &assumps {
                    fresh.add_clause(&[*a]);
                }
                let want = fresh.solve();
                let got = inc.solve_assuming(&assumps, SolveBudget::UNLIMITED);
                assert_eq!(got, want, "round {round} set {set} disagreed");
            }
        }
    }

    #[test]
    fn bve_eliminates_internal_var_and_reconstructs_model() {
        // x is internal (unfrozen): (a ∨ x) ∧ (¬x ∨ b) resolves to
        // (a ∨ b), so x is eliminated with zero growth.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let x = s.new_var();
        let b = s.new_var();
        s.freeze_var(a);
        s.freeze_var(b);
        s.set_bve(true);
        s.add_clause(&[Lit::pos(a), Lit::pos(x)]);
        s.add_clause(&[Lit::neg(x), Lit::pos(b)]);
        s.inprocess();
        assert_eq!(s.eliminated_vars(), 1);
        assert_eq!(s.solve(), SatOutcome::Sat);
        // The reconstructed model must satisfy the *original* clauses.
        let av = s.value(a).unwrap_or(false);
        let xv = s
            .value(x)
            .expect("eliminated var has a reconstructed value");
        let bv = s.value(b).unwrap_or(false);
        assert!(av || xv, "model violates (a ∨ x)");
        assert!(!xv || bv, "model violates (¬x ∨ b)");
        // The resolvent still constrains the frozen vars: ¬a ∧ ¬b is
        // unsat exactly as in the unsimplified formula.
        assert_eq!(
            s.solve_assuming(&[Lit::neg(a), Lit::neg(b)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn bve_agrees_with_unsimplified() {
        // Random instances with a frozen interface half and an unfrozen
        // internal half: inprocessing (with BVE) between assumption
        // calls must preserve every answer, and Sat models must satisfy
        // every original clause — including via reconstructed values of
        // eliminated internal vars.
        let mut seed = 0xB7E1_5162_8AED_2A6B_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut total_eliminated = 0u64;
        for round in 0..30 {
            let n_frozen = 3 + (rng() % 4) as usize;
            let n_internal = 3 + (rng() % 4) as usize;
            let n_vars = n_frozen + n_internal;
            let n_clauses = 3 + (rng() % (3 * n_vars as u64)) as usize;
            let clauses: Vec<Vec<Lit>> = (0..n_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0))
                        .collect()
                })
                .collect();
            let mut inc = SatSolver::new();
            inc.set_bve(true);
            for i in 0..n_vars {
                let v = inc.new_var();
                if i < n_frozen {
                    inc.freeze_var(v);
                }
            }
            for c in &clauses {
                inc.add_clause(c);
            }
            for set in 0..3 {
                inc.inprocess();
                total_eliminated += inc.eliminated_vars();
                // Assumptions only over the frozen interface.
                let n_assumps = (rng() % 3) as usize;
                let assumps: Vec<Lit> = (0..n_assumps)
                    .map(|_| Lit::new(Var((rng() % n_frozen as u64) as u32), rng() % 2 == 0))
                    .collect();
                let mut fresh = SatSolver::new();
                fresh.set_bve(false);
                for _ in 0..n_vars {
                    fresh.new_var();
                }
                for c in &clauses {
                    fresh.add_clause(c);
                }
                for a in &assumps {
                    fresh.add_clause(&[*a]);
                }
                let want = fresh.solve();
                let got = inc.solve_assuming(&assumps, SolveBudget::UNLIMITED);
                assert_eq!(got, want, "round {round} set {set} disagreed");
                if got == SatOutcome::Sat {
                    for c in &clauses {
                        assert!(
                            c.iter().any(|l| inc.value(l.var()) == Some(l.is_pos())),
                            "round {round} set {set}: model violates an original clause"
                        );
                    }
                }
            }
        }
        assert!(
            total_eliminated > 0,
            "the unfrozen internal half should yield at least one elimination"
        );
    }

    #[test]
    fn bve_budgeted_unknown_stays_sound() {
        // A budget-starved solve after BVE inprocessing must answer
        // Unknown (never a wrong definite) and resume to the right one.
        let mut s = pigeonhole(6, 5);
        s.set_bve(true);
        let extra = s.new_var();
        // Only the assumption var is frozen; the pigeonhole vars are
        // fair game for elimination, which must stay equisatisfiable.
        s.freeze_var(extra);
        s.inprocess();
        assert_eq!(
            s.solve_assuming(&[Lit::pos(extra)], SolveBudget::conflicts(1)),
            SatOutcome::Unknown
        );
        assert_eq!(
            s.solve_assuming(&[Lit::pos(extra)], SolveBudget::UNLIMITED),
            SatOutcome::Unsat
        );
    }

    #[test]
    fn trail_reuse_agrees_with_floor_backtracking() {
        // Two incremental solvers over the same instance, one with trail
        // reuse and one with classic full retraction, driven through
        // randomized assumption sequences with divergent prefixes: every
        // answer must agree, and Sat models must satisfy the formula and
        // the assumptions in both.
        let mut seed = 0x0DDB_1A5E_5BAD_5EED_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..25 {
            let n_vars = 5 + (rng() % 8) as usize;
            let n_clauses = 3 + (rng() % (3 * n_vars as u64)) as usize;
            let clauses: Vec<Vec<Lit>> = (0..n_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0))
                        .collect()
                })
                .collect();
            let mut reusing = SatSolver::new();
            reusing.set_trail_reuse(true);
            let mut classic = SatSolver::new();
            classic.set_trail_reuse(false);
            for _ in 0..n_vars {
                reusing.new_var();
                classic.new_var();
            }
            for c in &clauses {
                reusing.add_clause(c);
                classic.add_clause(c);
            }
            // A shared prefix that mutates gradually: flip one position
            // per call so consecutive calls share long prefixes — the
            // production flip-loop shape.
            let mut prefix: Vec<Lit> = (0..4)
                .map(|i| Lit::new(Var(i % n_vars as u32), rng() % 2 == 0))
                .collect();
            for call in 0..8 {
                let slot = (rng() % prefix.len() as u64) as usize;
                prefix[slot] = Lit::new(Var((rng() % n_vars as u64) as u32), rng() % 2 == 0);
                let got = reusing.solve_assuming(&prefix, SolveBudget::UNLIMITED);
                let want = classic.solve_assuming(&prefix, SolveBudget::UNLIMITED);
                assert_eq!(got, want, "round {round} call {call} disagreed");
                if got == SatOutcome::Sat {
                    for (s, tag) in [(&reusing, "reusing"), (&classic, "classic")] {
                        for c in &clauses {
                            assert!(
                                c.iter().any(|l| s.value(l.var()) == Some(l.is_pos())),
                                "round {round} call {call}: {tag} model violates a clause"
                            );
                        }
                        for a in &prefix {
                            assert_eq!(
                                s.value(a.var()),
                                Some(a.is_pos()),
                                "round {round} call {call}: {tag} dropped an assumption"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trail_reuse_skips_repropagation_on_shared_prefixes() {
        // An easily-implied chain: reusing the prefix must cut the
        // propagation count versus classic floor-backtracking.
        let n = 40usize;
        let build = || {
            let mut s = SatSolver::new();
            let vs: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for w in vs.windows(2) {
                s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
            }
            (s, vs)
        };
        let (mut reusing, vs) = build();
        reusing.set_trail_reuse(true);
        let (mut classic, _) = build();
        classic.set_trail_reuse(false);
        // Same assumption prefix, different final literal per call.
        for k in 1..5 {
            let assumps = vec![Lit::pos(vs[0]), Lit::pos(vs[k])];
            assert_eq!(
                reusing.solve_assuming(&assumps, SolveBudget::UNLIMITED),
                SatOutcome::Sat
            );
            assert_eq!(
                classic.solve_assuming(&assumps, SolveBudget::UNLIMITED),
                SatOutcome::Sat
            );
        }
        assert!(
            reusing.trail_reused_lits() > 0,
            "shared prefixes should be reused"
        );
        assert!(
            reusing.propagations() < classic.propagations(),
            "reuse should re-propagate less: {} vs {}",
            reusing.propagations(),
            classic.propagations()
        );
    }

    #[test]
    fn export_import_shares_learnt_clauses() {
        // A learns on a hard instance; its post-mark glue clauses import
        // into B (same numbering, same clauses) without changing answers.
        let mut a = pigeonhole(6, 5);
        let mark = a.clauses_added();
        assert_eq!(a.solve(), SatOutcome::Unsat);
        let shared = a.export_learnts(mark, 4, 16);
        assert!(
            !shared.is_empty(),
            "a hard UNSAT search should produce shareable glue clauses"
        );
        let mut b = pigeonhole(6, 5);
        let before = b.num_learnts();
        let mut imported = 0u64;
        for (lits, lbd) in &shared {
            if b.import_learnt(lits, *lbd) {
                imported += 1;
            }
        }
        assert!(imported > 0);
        assert!(b.num_learnts() >= before);
        assert_eq!(b.solve(), SatOutcome::Unsat);
        // Export filter honors the mark: nothing born before it leaks.
        let none = a.export_learnts(a.clauses_added(), 4, 16);
        assert!(none.is_empty());
    }

    #[test]
    fn random_3sat_brute_force_agreement() {
        // Deterministic pseudo-random instances cross-checked against
        // exhaustive enumeration (≤ 12 vars).
        let mut seed = 0x2545F491_4F6CDD1Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..40 {
            let n_vars = 4 + (rng() % 9) as usize; // 4..=12
            let n_clauses = 2 + (rng() % (3 * n_vars as u64 + 1)) as usize;
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (rng() % n_vars as u64) as u32;
                    let pos = rng() % 2 == 0;
                    c.push(Lit::new(Var(v), pos));
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0u64..(1 << n_vars) {
                for c in &clauses {
                    if !c.iter().any(|l| ((m >> l.var().0) & 1 == 1) == l.is_pos()) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = SatSolver::new();
            for _ in 0..n_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve() == SatOutcome::Sat;
            assert_eq!(got, brute_sat, "round {round} disagreed");
            if got {
                // Verify the model satisfies every clause.
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| s.value(l.var()) == Some(l.is_pos())),
                        "model violates clause in round {round}"
                    );
                }
            }
        }
    }
}
