//! Deterministic fault-injection plans (`SOCCAR_FAULTS`).
//!
//! A [`FaultPlan`] is a *stateless* map from injection-point name to a set
//! of 1-based occurrence indices. Production code consults the plan at
//! named injection points with a **caller-supplied deterministic index**
//! (a serial sequence number, a task's input index — never a completion
//! order or a global atomic), so the injected fault set is identical for
//! every job count and every run. That is what lets the chaos tests
//! demand byte-identical canonical reports under an active plan.
//!
//! # Grammar
//!
//! ```text
//! plan    := entry ("," entry)*
//! entry   := kind "@" occurrence          e.g.  solver_unknown@3
//!          | kind "@" site ":" occurrence e.g.  task_panic@extract:1
//! ```
//!
//! `kind@site:N` addresses the point named `kind:site`; `kind@N`
//! addresses the point named `kind`. Occurrences are 1-based; the same
//! point may appear in several entries (`solver_unknown@1,solver_unknown@3`).
//!
//! # Injection-point registry
//!
//! | point | index semantics | effect |
//! |---|---|---|
//! | `solver_unknown` | global flip-candidate sequence number (serial, per analysis) | the flip solve returns `CheckResult::Unknown` |
//! | `task_panic:extract` | module index in the cfg extraction fan-out | the extraction task panics |
//! | `task_panic:flips` | flip-candidate sequence number | the flip solve task panics |
//! | `round_timeout` | concolic round number (1-based) | the round deadline fires at the next check |
//! | `frame_truncate:serve` | response frame written by the daemon (serial, per server) | the frame is cut mid-payload and the connection aborted |
//! | `conn_drop:respond` | response about to be written by the daemon (serial, per server) | the connection drops before any response byte |
//! | `journal_corrupt:replay` | journal record index during startup replay (1-based) | the record (and the tail after it) is treated as corrupt |
//! | `shed:admission` | connection admission attempt (serial, per server) | the connection is shed with a `busy` envelope |
//!
//! Pipeline points derive their index from input position, never from
//! scheduling, so injection is identical for every job count. The four
//! serve-layer points index serial per-server sequences (frames written,
//! responses, replayed records, admissions); they are deterministic for
//! a serial request stream, which is how the chaos-serve suite drives
//! them. New points must document their index semantics here and in
//! `docs/RESILIENCE.md`.
//!
//! Unknown point names are rejected at parse time (a typo in a chaos
//! plan must fail loudly, not silently inject nothing); the registry of
//! valid names is [`KNOWN_POINTS`].

/// Every injection point production code consults, exactly as spelled in
/// [`FaultPlan::should_inject`] calls. [`FaultPlan::parse`] rejects any
/// entry naming a point outside this list.
pub const KNOWN_POINTS: &[&str] = &[
    "solver_unknown",
    "task_panic:extract",
    "task_panic:flips",
    "round_timeout",
    "frame_truncate:serve",
    "conn_drop:respond",
    "journal_corrupt:replay",
    "shed:admission",
];

use std::collections::{BTreeMap, BTreeSet};

/// The environment variable consulted by [`FaultPlan::from_env`].
pub const FAULTS_ENV: &str = "SOCCAR_FAULTS";

/// A parsed, deterministic fault-injection plan.
///
/// # Examples
///
/// ```
/// use soccar_exec::FaultPlan;
///
/// let plan = FaultPlan::parse("solver_unknown@3,task_panic@extract:1").unwrap();
/// assert!(plan.should_inject("solver_unknown", 3));
/// assert!(!plan.should_inject("solver_unknown", 2));
/// assert!(plan.should_inject("task_panic:extract", 1));
/// assert!(FaultPlan::default().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    points: BTreeMap<String, BTreeSet<u64>>,
}

impl FaultPlan {
    /// Parses a plan from the `SOCCAR_FAULTS` grammar (see module docs).
    ///
    /// An empty or all-whitespace spec parses to the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry if an entry lacks the
    /// `@`, names an empty kind/site, has a non-positive occurrence, or
    /// addresses an injection point not in [`KNOWN_POINTS`] (typos must
    /// fail loudly, not silently inject nothing).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut points: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry.split_once('@').ok_or_else(|| {
                format!(
                    "fault entry `{entry}`: expected `kind@occurrence` or `kind@site:occurrence`"
                )
            })?;
            if kind.is_empty() {
                return Err(format!("fault entry `{entry}`: empty fault kind"));
            }
            let (point, occ_str) = match rest.split_once(':') {
                Some((site, occ)) => {
                    if site.is_empty() {
                        return Err(format!("fault entry `{entry}`: empty site name"));
                    }
                    (format!("{kind}:{site}"), occ)
                }
                None => (kind.to_owned(), rest),
            };
            if !KNOWN_POINTS.contains(&point.as_str()) {
                return Err(format!(
                    "fault entry `{entry}`: unknown injection point `{point}` \
                     (known points: {})",
                    KNOWN_POINTS.join(", ")
                ));
            }
            let occ: u64 = occ_str.trim().parse().map_err(|_| {
                format!("fault entry `{entry}`: occurrence `{occ_str}` is not an integer")
            })?;
            if occ == 0 {
                return Err(format!("fault entry `{entry}`: occurrences are 1-based"));
            }
            points.entry(point).or_default().insert(occ);
        }
        Ok(FaultPlan { points })
    }

    /// Reads the plan from the `SOCCAR_FAULTS` environment variable; an
    /// unset variable yields the empty plan.
    ///
    /// # Errors
    ///
    /// As [`FaultPlan::parse`].
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(s) => FaultPlan::parse(&s),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// `true` if the plan injects nothing (the production default).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `true` if the plan injects a fault at `point` for this 1-based
    /// `occurrence`. Stateless: the same call always returns the same
    /// answer, regardless of thread or call order.
    #[must_use]
    pub fn should_inject(&self, point: &str, occurrence: u64) -> bool {
        self.points
            .get(point)
            .is_some_and(|occs| occs.contains(&occurrence))
    }

    /// Iterates over `(point, occurrence)` pairs in sorted order.
    pub fn injections(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.points
            .iter()
            .flat_map(|(p, occs)| occs.iter().map(move |o| (p.as_str(), *o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_sited_entries() {
        let plan = FaultPlan::parse("solver_unknown@3,task_panic@extract:1,round_timeout@2")
            .expect("valid plan");
        assert!(plan.should_inject("solver_unknown", 3));
        assert!(plan.should_inject("task_panic:extract", 1));
        assert!(plan.should_inject("round_timeout", 2));
        assert!(!plan.should_inject("solver_unknown", 1));
        assert!(!plan.should_inject("task_panic:flips", 1));
        assert_eq!(
            plan.injections().collect::<Vec<_>>(),
            vec![
                ("round_timeout", 2),
                ("solver_unknown", 3),
                ("task_panic:extract", 1)
            ]
        );
    }

    #[test]
    fn repeated_points_accumulate_occurrences() {
        let plan = FaultPlan::parse("solver_unknown@1, solver_unknown@4").expect("valid");
        assert!(plan.should_inject("solver_unknown", 1));
        assert!(plan.should_inject("solver_unknown", 4));
        assert!(!plan.should_inject("solver_unknown", 2));
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        assert!(FaultPlan::parse("").expect("ok").is_empty());
        assert!(FaultPlan::parse("  , ,").expect("ok").is_empty());
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(FaultPlan::parse("solver_unknown").is_err()); // no @
        assert!(FaultPlan::parse("@3").is_err()); // empty kind
        assert!(FaultPlan::parse("task_panic@:1").is_err()); // empty site
        assert!(FaultPlan::parse("solver_unknown@x").is_err()); // non-integer
        assert!(FaultPlan::parse("solver_unknown@0").is_err()); // 0-based
    }

    #[test]
    fn unknown_points_are_rejected_with_a_named_error() {
        // A bare typo of a known kind.
        let err = FaultPlan::parse("solver_unknwon@1").expect_err("typo must fail");
        assert!(
            err.contains("unknown injection point `solver_unknwon`"),
            "{err}"
        );
        assert!(err.contains("known points:"), "{err}");
        // A known kind at an unregistered site.
        let err = FaultPlan::parse("task_panic@compose:1").expect_err("bad site");
        assert!(err.contains("`task_panic:compose`"), "{err}");
        // A sited kind spelled without its site parses the site token as
        // the occurrence-free point name and is rejected by the registry.
        let err = FaultPlan::parse("frame_truncate@serve").expect_err("missing occurrence");
        assert!(
            err.contains("unknown injection point `frame_truncate`"),
            "{err}"
        );
        // One bad entry poisons the whole plan, even with valid siblings.
        assert!(FaultPlan::parse("solver_unknown@1,bogus@2").is_err());
    }

    #[test]
    fn serve_layer_points_parse() {
        let plan = FaultPlan::parse(
            "frame_truncate@serve:3,conn_drop@respond:2,journal_corrupt@replay:1,shed@admission:4",
        )
        .expect("serve-layer plan");
        assert!(plan.should_inject("frame_truncate:serve", 3));
        assert!(plan.should_inject("conn_drop:respond", 2));
        assert!(plan.should_inject("journal_corrupt:replay", 1));
        assert!(plan.should_inject("shed:admission", 4));
        assert!(!plan.should_inject("shed:admission", 1));
    }

    #[test]
    fn every_registered_point_round_trips_through_parse() {
        for point in KNOWN_POINTS {
            let entry = match point.split_once(':') {
                Some((kind, site)) => format!("{kind}@{site}:7"),
                None => format!("{point}@7"),
            };
            let plan = FaultPlan::parse(&entry).unwrap_or_else(|e| panic!("{entry}: {e}"));
            assert!(plan.should_inject(point, 7), "{entry}");
        }
    }
}
