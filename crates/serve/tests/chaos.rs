//! Chaos tests: deterministic fault injection through the real CLI.
//!
//! `SOCCAR_FAULTS` (see `docs/RESILIENCE.md`) injects solver Unknowns and
//! worker panics at fixed, scheduling-independent points. Under
//! `--keep-going` the pipeline must absorb every injected fault into
//! per-stage degraded health — same exit code, same detections, and
//! byte-identical output for every job count — instead of aborting.

use std::process::Command;

/// The canned fault plan used throughout: one flip solve comes back
/// Unknown (flip candidate #1) and one extraction worker panics (module
/// index 2 of the generated ClusterSoC source).
const FAULTS: &str = "solver_unknown@1,task_panic@extract:2";

struct ChaosRun {
    stdout: String,
    code: i32,
}

fn run_chaos(args: &[&str], faults: &str, jobs: &str) -> ChaosRun {
    let dir = std::env::temp_dir().join(format!("soccar-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_soccar"))
        .args(args)
        .current_dir(&dir)
        .env("SOCCAR_FAULTS", faults)
        .env("SOCCAR_JOBS", jobs)
        .output()
        .expect("run soccar");
    ChaosRun {
        stdout: String::from_utf8(out.stdout).expect("utf-8 output"),
        code: out.status.code().expect("exit code"),
    }
}

/// Replaces every `<digits>.<digits>s` wall-clock token with `#.###s`.
fn normalize_timing(s: &str) -> String {
    let mut out = String::new();
    for line in s.lines() {
        let mut rebuilt = String::new();
        for (i, word) in line.split(' ').enumerate() {
            if i > 0 {
                rebuilt.push(' ');
            }
            let is_timing = word.strip_suffix('s').is_some_and(|w| {
                w.split_once('.')
                    .is_some_and(|(a, b)| !a.is_empty() && !b.is_empty())
                    && w.chars().all(|c| c.is_ascii_digit() || c == '.')
            });
            rebuilt.push_str(if is_timing { "#.###s" } else { word });
        }
        out.push_str(&rebuilt);
        out.push('\n');
    }
    out
}

const CHAOS_ARGS: &[&str] = &[
    "--soc",
    "clustersoc",
    "--keep-going",
    "--cycles",
    "12",
    "--rounds",
    "4",
];

#[test]
fn injected_faults_degrade_health_but_exit_zero() {
    let run = run_chaos(CHAOS_ARGS, FAULTS, "2");
    assert_eq!(
        run.code, 0,
        "degraded clean run must still exit 0:\n{}",
        run.stdout
    );
    // Both injected faults surface as named degradation reasons.
    assert!(
        run.stdout
            .contains("degraded: module `rv32e_core`: extraction failed"),
        "missing extraction reason:\n{}",
        run.stdout
    );
    assert!(
        run.stdout
            .contains("degraded: round 1: flip 1 skipped: injected fault: solver_unknown@1"),
        "missing solver reason:\n{}",
        run.stdout
    );
    assert!(
        run.stdout.contains("HEALTH: degraded (2 reason(s)"),
        "missing health summary:\n{}",
        run.stdout
    );
    // The sweep still finished and reported its (reduced) coverage.
    assert!(
        run.stdout.contains("RESULT: no violations"),
        "{}",
        run.stdout
    );
}

#[test]
fn chaos_runs_are_byte_identical_across_runs_and_job_counts() {
    let first = normalize_timing(&run_chaos(CHAOS_ARGS, FAULTS, "1").stdout);
    let again = normalize_timing(&run_chaos(CHAOS_ARGS, FAULTS, "1").stdout);
    let parallel = normalize_timing(&run_chaos(CHAOS_ARGS, FAULTS, "4").stdout);
    assert_eq!(first, again, "same plan, same output");
    assert_eq!(first, parallel, "fault injection must not depend on jobs");
}

#[test]
fn faulted_run_still_reports_every_detected_bug() {
    let mut args = CHAOS_ARGS.to_vec();
    args.extend(["--variant", "1"]);
    let run = run_chaos(&args, FAULTS, "2");
    assert_eq!(
        run.code, 1,
        "violations still fail the run:\n{}",
        run.stdout
    );
    assert!(run.stdout.contains("HEALTH: degraded"), "{}", run.stdout);
    // Degradation reduces *coverage*; the detections that did fire are
    // all reported alongside it.
    let invalid = run
        .stdout
        .lines()
        .filter(|l| l.starts_with("INVALID"))
        .count();
    assert!(
        invalid >= 1,
        "expected detections to survive:\n{}",
        run.stdout
    );
    assert!(
        run.stdout
            .contains(&format!("RESULT: {invalid} violation(s)")),
        "result line must count every reported violation:\n{}",
        run.stdout
    );
}

#[test]
fn healthy_runs_print_no_health_lines() {
    let run = run_chaos(CHAOS_ARGS, "", "2");
    assert_eq!(run.code, 0);
    assert!(!run.stdout.contains("degraded"), "{}", run.stdout);
    assert!(!run.stdout.contains("HEALTH"), "{}", run.stdout);
}

#[test]
fn malformed_fault_plan_is_a_usage_error() {
    let run = run_chaos(CHAOS_ARGS, "solver_unknown@zero", "1");
    assert_eq!(
        run.code, 2,
        "bad SOCCAR_FAULTS must exit 2:\n{}",
        run.stdout
    );
}

#[test]
fn chaos_smoke_for_ci() {
    // The CI `chaos-smoke` job runs exactly this binaryless assertion
    // set: a canned plan, a clean SoC, exit 0, degraded health. Keeping
    // it as a named test lets CI invoke `--test chaos chaos_smoke_for_ci`
    // without shell scripting the CLI.
    let run = run_chaos(CHAOS_ARGS, FAULTS, "2");
    assert_eq!(run.code, 0);
    assert!(run.stdout.contains("HEALTH: degraded"));
}
