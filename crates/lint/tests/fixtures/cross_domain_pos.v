// Positive: soft_rst_n is generated in the clk_a domain but consumed as an
// asynchronous reset by a flop clocked on clk_b (reset-domain crossing).
module rdc(input clk_a, input clk_b, input por_n, input [3:0] d, output reg [3:0] q);
  reg soft_rst_n;
  always @(posedge clk_a or negedge por_n)
    if (!por_n) soft_rst_n <= 1'b0;
    else soft_rst_n <= 1'b1;
  always @(posedge clk_b or negedge soft_rst_n)
    if (!soft_rst_n) q <= 4'd0;
    else q <= d;
endmodule
