//! Composition of per-module AR_CFGs into the SoC-level AR_CFG
//! `AR(S) = AR[M_1] ‖ AR[M_2] ‖ … ‖ AR[M_k]`, plus reset-domain analysis.
//!
//! The composer walks the instance tree from the top module using the
//! connection profiles of Algorithm 2, instantiates each module's AR_CFG
//! under its hierarchical path, and traces every instance-local reset back
//! to its *domain source* — the top-level input (or internal generator)
//! that drives it. Instances sharing a source form one **reset domain**,
//! the unit at which SoCCAR injects partial asynchronous resets.

use std::collections::HashMap;

use soccar_rtl::ast::SourceUnit;

use crate::connect::{connection_profiles, ConnectionProfile};
use crate::extract::{ArCfg, GovernorAnalysis};
use crate::reset_id::ResetNaming;

/// A reference to one reset-governed event in the composed CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalEventRef {
    /// Hierarchical instance path (`top.u_crypto.u_aes`).
    pub instance: String,
    /// Index into that instance's [`ArCfg::events`].
    pub event_index: usize,
}

/// One instantiated AR_CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceArCfg {
    /// Hierarchical instance path.
    pub path: String,
    /// Module name.
    pub module: String,
    /// The module's AR_CFG.
    pub cfg: ArCfg,
}

/// A reset domain: the set of instance-local resets driven (transitively)
/// by one source signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetDomain {
    /// Hierarchical name of the domain source (`top.por_n`, or an
    /// instance-local signal if the reset is generated internally).
    pub source: String,
    /// `true` if the source is an input port of the top module (and can
    /// therefore be pulsed directly by a stimulus program).
    pub top_level: bool,
    /// Assertion polarity of the source.
    pub active_low: bool,
    /// `(instance path, local reset name)` members.
    pub members: Vec<(String, String)>,
    /// Reset-governed events controlled by this domain.
    pub events: Vec<GlobalEventRef>,
}

/// The composed SoC-level AR_CFG.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SocArCfg {
    /// Per-instance AR_CFGs (instances with empty AR_CFGs included, so the
    /// structure mirrors the full hierarchy).
    pub instances: Vec<InstanceArCfg>,
    /// Reset domains, ordered by source name.
    pub reset_domains: Vec<ResetDomain>,
}

impl SocArCfg {
    /// Total number of reset-governed events across all instances.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.instances.iter().map(|i| i.cfg.events.len()).sum()
    }

    /// Finds an instance by hierarchical path.
    #[must_use]
    pub fn instance(&self, path: &str) -> Option<&InstanceArCfg> {
        self.instances.iter().find(|i| i.path == path)
    }

    /// Finds the domain containing `(instance, local reset)`.
    #[must_use]
    pub fn domain_of(&self, instance: &str, reset: &str) -> Option<&ResetDomain> {
        self.reset_domains
            .iter()
            .find(|d| d.members.iter().any(|(i, r)| i == instance && r == reset))
    }
}

/// Composes the SoC-level AR_CFG for `top`.
///
/// # Errors
///
/// Returns a message naming the missing module if `top` (or any
/// instantiated module) is not defined in the unit.
pub fn compose_soc(
    unit: &SourceUnit,
    top: &str,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
) -> Result<SocArCfg, String> {
    compose_soc_jobs(unit, top, naming, analysis, 1).map(|(soc, _)| soc)
}

/// Like [`compose_soc`], running the per-module extraction (the hot half
/// of the stage) on up to `jobs` workers via
/// [`extract_all_jobs`](crate::extract::extract_all_jobs). The
/// compose walk itself stays serial — it is a cheap hierarchy traversal —
/// and sees extraction results in source order, so the output is
/// identical for every `jobs` value. Also returns the extraction pool's
/// utilization counters.
///
/// # Errors
///
/// As [`compose_soc`].
pub fn compose_soc_jobs(
    unit: &SourceUnit,
    top: &str,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
    jobs: usize,
) -> Result<(SocArCfg, soccar_exec::PoolStats), String> {
    compose_soc_traced(
        unit,
        top,
        naming,
        analysis,
        jobs,
        &soccar_obs::Recorder::disabled(),
    )
}

/// Like [`compose_soc_jobs`] under an observability recorder: the
/// extraction fan-out and the serial compose walk each get a span
/// (`cfg.extract`, `cfg.compose`), and the extracted graph's size lands
/// in counters — `cfg.nodes` (all hardware events of the full per-module
/// CFGs), `cfg.edges` (governor→event edges, i.e. reset-governed events),
/// `cfg.ar_events`, `cfg.reset_domains`, `cfg.instances`.
///
/// # Errors
///
/// As [`compose_soc`].
pub fn compose_soc_traced(
    unit: &SourceUnit,
    top: &str,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
    jobs: usize,
    recorder: &soccar_obs::Recorder,
) -> Result<(SocArCfg, soccar_exec::PoolStats), String> {
    compose_soc_resilient(
        unit,
        top,
        naming,
        analysis,
        jobs,
        soccar_exec::FailurePolicy::FailFast,
        &soccar_exec::FaultPlan::default(),
        recorder,
    )
    .map(|(soc, stats, _)| (soc, stats))
}

/// Like [`compose_soc_traced`] under an explicit failure policy and fault
/// plan (see [`extract_all_resilient`]).
///
/// Under [`FailurePolicy::KeepGoing`] a module whose extraction panics is
/// treated as contributing no reset-governed events: composition still
/// succeeds, the returned reasons name every dropped module, and the
/// `resilience.extract_failed` counter records how many there were.
///
/// # Errors
///
/// As [`compose_soc`].
///
/// [`extract_all_resilient`]: crate::extract::extract_all_resilient
/// [`FailurePolicy::KeepGoing`]: soccar_exec::FailurePolicy::KeepGoing
#[allow(clippy::too_many_arguments)]
pub fn compose_soc_resilient(
    unit: &SourceUnit,
    top: &str,
    naming: &ResetNaming,
    analysis: GovernorAnalysis,
    jobs: usize,
    policy: soccar_exec::FailurePolicy,
    plan: &soccar_exec::FaultPlan,
    recorder: &soccar_obs::Recorder,
) -> Result<(SocArCfg, soccar_exec::PoolStats, Vec<String>), String> {
    if unit.module(top).is_none() {
        return Err(format!("top module `{top}` not found"));
    }
    let mut extract_span = soccar_obs::span!(
        recorder,
        "cfg.extract",
        modules = unit.modules.len(),
        jobs = jobs
    );
    let (extracted, stats, degraded) =
        crate::extract::extract_all_resilient(unit, naming, analysis, jobs, policy, plan);
    if !degraded.is_empty() {
        recorder.counter_add("resilience.extract_failed", degraded.len() as u64);
    }
    let nodes: usize = extracted.iter().map(|(cfg, _)| cfg.events.len()).sum();
    let edges: usize = extracted
        .iter()
        .map(|(cfg, _)| cfg.events.iter().filter(|e| e.governor.is_some()).count())
        .sum();
    recorder.counter_add("cfg.nodes", nodes as u64);
    recorder.counter_add("cfg.edges", edges as u64);
    extract_span.record("nodes", nodes);
    extract_span.record("edges", edges);
    drop(extract_span);
    let ar_cfgs: HashMap<String, ArCfg> = extracted
        .into_iter()
        .map(|(_, ar)| (ar.module.clone(), ar))
        .collect();
    let soc = compose_soc_prepared(unit, top, naming, &ar_cfgs, recorder)?;
    Ok((soc, stats, degraded))
}

/// The serial compose walk over already-extracted per-module AR_CFGs.
///
/// This is the second half of [`compose_soc_resilient`]: it instantiates
/// the hierarchy from `top`, traces reset domains, and emits the
/// `cfg.compose` span and `cfg.instances`/`cfg.reset_domains`/
/// `cfg.ar_events` counters. The incremental analysis server calls it
/// directly with a cache-assembled `ar_cfgs` map, skipping re-extraction
/// of unchanged modules; the result is identical to the batch path
/// because the walk only reads the map and the instance tree.
///
/// # Errors
///
/// Returns a message naming the missing module if `top` (or any
/// instantiated module) has no entry in `ar_cfgs`.
pub fn compose_soc_prepared(
    unit: &SourceUnit,
    top: &str,
    naming: &ResetNaming,
    ar_cfgs: &HashMap<String, ArCfg>,
    recorder: &soccar_obs::Recorder,
) -> Result<SocArCfg, String> {
    if unit.module(top).is_none() {
        return Err(format!("top module `{top}` not found"));
    }
    let profiles: HashMap<String, ConnectionProfile> = connection_profiles(unit, naming)
        .into_iter()
        .map(|p| (p.module.clone(), p))
        .collect();
    let mut compose_span = soccar_obs::span!(recorder, "cfg.compose", top = top);

    let mut soc = SocArCfg::default();
    // (instance path, local reset name) → domain source key.
    let mut reset_source: HashMap<(String, String), String> = HashMap::new();
    let mut source_meta: HashMap<String, (bool, bool)> = HashMap::new(); // key → (top_level, active_low)

    // Seed: the top instance's resets are their own sources.
    let top_ar = &ar_cfgs[top];
    for r in &top_ar.resets {
        let key = format!("{top}.{}", r.name);
        reset_source.insert((top.to_owned(), r.name.clone()), key.clone());
        let is_input = unit.module(top).is_some_and(|m| m.port(&r.name).is_some());
        source_meta.insert(key, (is_input, r.active_low));
    }

    // Breadth-first over the instance tree.
    let mut queue: Vec<(String, String)> = vec![(top.to_owned(), top.to_owned())]; // (module, path)
    while let Some((module_name, path)) = queue.pop() {
        let Some(ar) = ar_cfgs.get(&module_name) else {
            return Err(format!("module `{module_name}` not found"));
        };
        soc.instances.push(InstanceArCfg {
            path: path.clone(),
            module: module_name.clone(),
            cfg: ar.clone(),
        });
        let Some(profile) = profiles.get(&module_name) else {
            continue;
        };
        for child in &profile.children {
            let child_path = format!("{path}.{}", child.instance);
            if let Some(child_ar) = ar_cfgs.get(&child.module) {
                for r in &child_ar.resets {
                    let conn = child.reset_conns.iter().find(|c| c.formal == r.name);
                    let source = match conn.and_then(|c| c.actual.as_ref()) {
                        Some(actual) => reset_source
                            .get(&(path.clone(), actual.clone()))
                            .cloned()
                            .unwrap_or_else(|| {
                                // Parent signal is not itself a traced
                                // reset: it becomes a domain source
                                // (internally generated reset).
                                let key = format!("{path}.{actual}");
                                source_meta
                                    .entry(key.clone())
                                    .or_insert((false, r.active_low));
                                key
                            }),
                        None => {
                            // Unconnected or expression-driven: the child
                            // local reset is its own domain source.
                            let key = format!("{child_path}.{}", r.name);
                            source_meta
                                .entry(key.clone())
                                .or_insert((false, r.active_low));
                            key
                        }
                    };
                    reset_source.insert((child_path.clone(), r.name.clone()), source);
                }
            }
            queue.push((child.module.clone(), child_path));
        }
    }

    // Group members and events into domains.
    let mut domains: HashMap<String, ResetDomain> = HashMap::new();
    for ((inst, local), source) in &reset_source {
        let (top_level, active_low) = *source_meta.get(source).expect("every source has metadata");
        let d = domains
            .entry(source.clone())
            .or_insert_with(|| ResetDomain {
                source: source.clone(),
                top_level,
                active_low,
                members: Vec::new(),
                events: Vec::new(),
            });
        d.members.push((inst.clone(), local.clone()));
    }
    for inst in &soc.instances {
        for (ei, ev) in inst.cfg.events.iter().enumerate() {
            let Some(g) = &ev.governor else { continue };
            if let Some(source) = reset_source.get(&(inst.path.clone(), g.reset.clone())) {
                if let Some(d) = domains.get_mut(source) {
                    d.events.push(GlobalEventRef {
                        instance: inst.path.clone(),
                        event_index: ei,
                    });
                }
            }
        }
    }
    let mut domains: Vec<ResetDomain> = domains.into_values().collect();
    for d in &mut domains {
        d.members.sort();
        d.events.sort_by(|a, b| {
            (a.instance.as_str(), a.event_index).cmp(&(b.instance.as_str(), b.event_index))
        });
    }
    domains.sort_by(|a, b| a.source.cmp(&b.source));
    soc.reset_domains = domains;
    soc.instances.sort_by(|a, b| a.path.cmp(&b.path));
    recorder.counter_add("cfg.instances", soc.instances.len() as u64);
    recorder.counter_add("cfg.reset_domains", soc.reset_domains.len() as u64);
    recorder.counter_add("cfg.ar_events", soc.event_count() as u64);
    compose_span.record("instances", soc.instances.len());
    compose_span.record("reset_domains", soc.reset_domains.len());
    compose_span.record("ar_events", soc.event_count());
    drop(compose_span);
    Ok(soc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soccar_rtl::parser::parse;
    use soccar_rtl::span::FileId;

    const TWO_DOMAIN_SOC: &str = "
        module ip(input clk, input rst_n, input [3:0] d, output reg [3:0] q);
          always @(posedge clk or negedge rst_n)
            if (!rst_n) q <= 4'd0; else q <= d;
        endmodule
        module cluster(input clk, input c_rst_n, input [3:0] d, output [3:0] q);
          ip u_a (.clk(clk), .rst_n(c_rst_n), .d(d), .q(q));
          ip u_b (.clk(clk), .rst_n(c_rst_n), .d(d), .q());
        endmodule
        module top(input clk, input sys_rst_n, input io_rst_n, input [3:0] d, output [3:0] q);
          cluster u_cl (.clk(clk), .c_rst_n(sys_rst_n), .d(d), .q(q));
          ip u_io (.clk(clk), .rst_n(io_rst_n), .d(d), .q());
        endmodule";

    fn compose(src: &str) -> SocArCfg {
        let unit = parse(FileId(0), src).expect("parse");
        compose_soc(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit,
        )
        .expect("compose")
    }

    #[test]
    fn hierarchy_instantiated() {
        let soc = compose(TWO_DOMAIN_SOC);
        let paths: Vec<&str> = soc.instances.iter().map(|i| i.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "top",
                "top.u_cl",
                "top.u_cl.u_a",
                "top.u_cl.u_b",
                "top.u_io"
            ]
        );
        assert_eq!(soc.event_count(), 3); // three ip instances
    }

    #[test]
    fn reset_domains_traced_to_top() {
        let soc = compose(TWO_DOMAIN_SOC);
        assert_eq!(soc.reset_domains.len(), 2);
        let sys = soc
            .reset_domains
            .iter()
            .find(|d| d.source == "top.sys_rst_n")
            .expect("sys domain");
        assert!(sys.top_level);
        assert!(sys.active_low);
        // Members: top-local + cluster-local + two leaves.
        assert!(sys
            .members
            .contains(&("top.u_cl.u_a".to_owned(), "rst_n".to_owned())));
        assert!(sys
            .members
            .contains(&("top.u_cl.u_b".to_owned(), "rst_n".to_owned())));
        assert_eq!(sys.events.len(), 2);

        let io = soc
            .reset_domains
            .iter()
            .find(|d| d.source == "top.io_rst_n")
            .expect("io domain");
        assert_eq!(io.events.len(), 1);
        assert_eq!(io.events[0].instance, "top.u_io");
    }

    #[test]
    fn domain_lookup_helpers() {
        let soc = compose(TWO_DOMAIN_SOC);
        let d = soc.domain_of("top.u_io", "rst_n").expect("domain");
        assert_eq!(d.source, "top.io_rst_n");
        assert!(soc.instance("top.u_cl.u_a").is_some());
        assert!(soc.instance("top.nope").is_none());
    }

    #[test]
    fn internally_generated_reset_forms_own_domain() {
        let soc = compose(
            "module ip(input clk, input rst_n, output reg q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 1'b0; else q <= 1'b1;
             endmodule
             module top(input clk, input [3:0] ctl);
               wire gen_rst_n;
               assign gen_rst_n = ctl == 4'hF;
               ip u (.clk(clk), .rst_n(gen_rst_n));
             endmodule",
        );
        // gen_rst_n matches no top reset; it becomes its own source.
        let d = soc.domain_of("top.u", "rst_n").expect("domain");
        assert_eq!(d.source, "top.gen_rst_n");
        assert!(!d.top_level);
    }

    #[test]
    fn keep_going_drops_failed_module_and_reports_it() {
        let unit = parse(FileId(0), TWO_DOMAIN_SOC).expect("parse");
        // Module index 1 is `ip` (the only reset-governed module): inject
        // a panic into its extraction and keep going.
        let plan = soccar_exec::FaultPlan::parse("task_panic@extract:1").expect("plan");
        let (soc, _, degraded) = compose_soc_resilient(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit,
            2,
            soccar_exec::FailurePolicy::KeepGoing,
            &plan,
            &soccar_obs::Recorder::disabled(),
        )
        .expect("compose");
        assert_eq!(degraded.len(), 1, "degraded: {degraded:?}");
        assert!(degraded[0].contains("module `ip`"), "{degraded:?}");
        assert!(degraded[0].contains("task_panic@extract:1"), "{degraded:?}");
        // The hierarchy survives; the failed module just governs nothing.
        assert_eq!(soc.instances.len(), 5);
        assert_eq!(soc.event_count(), 0);
        // Determinism: the same plan at jobs=1 produces the same result.
        let (soc1, _, degraded1) = compose_soc_resilient(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit,
            1,
            soccar_exec::FailurePolicy::KeepGoing,
            &plan,
            &soccar_obs::Recorder::disabled(),
        )
        .expect("compose");
        assert_eq!(degraded, degraded1);
        assert_eq!(soc.instances.len(), soc1.instances.len());
        assert_eq!(soc.event_count(), soc1.event_count());
    }

    #[test]
    fn missing_top_is_error() {
        let unit = parse(FileId(0), "module a(input x); endmodule").expect("parse");
        assert!(compose_soc(
            &unit,
            "top",
            &ResetNaming::new(),
            GovernorAnalysis::Explicit
        )
        .is_err());
    }
}
