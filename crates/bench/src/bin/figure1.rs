//! **Figure 1** — the SoCCAR framework workflow, rendered as a pipeline
//! stage trace of a real run (ClusterSoC Variant #1).

use soccar::evaluation::evaluate_variant;
use soccar_bench::paper_config;

fn main() {
    let spec = soccar_soc::variant(soccar_soc::SocModel::ClusterSoc, 1).expect("variant exists");
    let eval = evaluate_variant(&spec, paper_config()).expect("evaluates");
    println!("Figure 1 — SoCCAR framework workflow ({}):", eval.variant);
    println!();
    println!("  RTL design (Verilog)");
    for stage in &eval.report.stages {
        println!("        │");
        println!("        ▼");
        println!(
            "  ┌─ {} ({:.3}s)\n  │    {}",
            stage.stage,
            stage.elapsed.as_secs_f64(),
            stage.detail
        );
    }
    println!("        │");
    println!("        ▼");
    println!(
        "  invalidation messages: {}",
        eval.report.concolic.violations.len()
    );
    for v in &eval.report.concolic.violations {
        println!("    {v}");
    }
    println!();
    println!(
        "  total: {:.3}s; solver: {} calls ({} SAT)",
        eval.report.total.as_secs_f64(),
        eval.report.concolic.solver_calls,
        eval.report.concolic.solver_sat
    );
}
