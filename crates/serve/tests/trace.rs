//! Trace-sink tests for `soccar analyze --trace-out`: a golden snapshot
//! of the ClusterSoC event stream with timing stripped (the canonical
//! form), a schema-shape check over both bundled SoCs, and the
//! determinism contract — counter and histogram lines are byte-identical
//! whatever the worker count.
//!
//! To update the snapshot after an intentional trace change:
//!
//! ```sh
//! SOCCAR_BLESS=1 cargo test -p soccar-serve --test trace
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// Per-test scratch directory for the CLI to write its trace into.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soccar-trace-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the CLI with `--trace-out` in `dir` and returns the NDJSON
/// trace. `jobs` is the `SOCCAR_JOBS` value (`None` removes it so the
/// `--jobs` flag in `args` governs); `envs` are extra variables for the
/// child. `SOCCAR_INCREMENTAL` and `SOCCAR_FAULTS` are cleared first so
/// ambient settings never leak into a test.
fn run_traced_env(dir: &Path, args: &[&str], jobs: Option<&str>, envs: &[(&str, &str)]) -> String {
    let trace = dir.join("trace.jsonl");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_soccar"));
    cmd.arg("analyze")
        .args(args)
        .arg("--trace-out")
        .arg(&trace)
        .current_dir(dir)
        .env_remove("SOCCAR_INCREMENTAL")
        .env_remove("SOCCAR_PORTFOLIO")
        .env_remove("SOCCAR_FAULTS");
    match jobs {
        Some(n) => cmd.env("SOCCAR_JOBS", n),
        None => cmd.env_remove("SOCCAR_JOBS"),
    };
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("run soccar");
    assert!(
        out.stderr.is_empty(),
        "soccar wrote to stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&trace).expect("read trace file")
}

/// [`run_traced_env`] with no extra environment.
fn run_traced(dir: &Path, args: &[&str], jobs: Option<&str>) -> String {
    run_traced_env(dir, args, jobs, &[])
}

/// Reduces a trace to its canonical form, mirroring the
/// `to_ndjson_canonical` sink: span timing fields (`start_us`,
/// `elapsed_us`) are dropped, and gauge lines — which carry wall-clock
/// values — are dropped entirely. Everything that survives is
/// deterministic for a pinned `--jobs`.
fn canonicalize(trace: &str) -> String {
    let mut out = String::new();
    for line in trace.lines() {
        if line.starts_with("{\"type\":\"gauge\"") {
            continue;
        }
        // Timing fields are serialized last on span lines, so stripping
        // is a truncation at the first timing key.
        if let Some(cut) = line.find(",\"start_us\":") {
            out.push_str(&line[..cut]);
            out.push('}');
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Keeps only the metric lines whose values the determinism contract
/// guarantees across worker counts (span `jobs` fields legitimately
/// differ, and gauges carry wall-clock values).
fn metric_lines(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| {
            l.starts_with("{\"type\":\"counter\"") || l.starts_with("{\"type\":\"histogram\"")
        })
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Compares `actual` against the stored snapshot, or rewrites the
/// snapshot when `SOCCAR_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("SOCCAR_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}; run with SOCCAR_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "`{name}` drifted from its snapshot; if the change is intentional, \
         rerun with SOCCAR_BLESS=1 to update"
    );
}

const SMOKE: &[&str] = &["--cycles", "8", "--rounds", "2"];

#[test]
fn trace_canonical_cluster_soc_matches_snapshot() {
    // `--jobs` is pinned because the span field that records it is part
    // of the snapshot; determinism across job counts is the separate
    // test below.
    let dir = scratch("golden-cluster");
    let mut args = vec!["--soc", "clustersoc", "--jobs", "2"];
    args.extend_from_slice(SMOKE);
    let trace = run_traced(&dir, &args, None);
    check_golden("cluster_trace.jsonl", &canonicalize(&trace));
}

#[test]
fn trace_covers_pipeline_stages_on_both_socs() {
    for soc in ["clustersoc", "autosoc"] {
        let dir = scratch(&format!("shape-{soc}"));
        let mut args = vec!["--soc", soc, "--jobs", "2"];
        args.extend_from_slice(SMOKE);
        let trace = run_traced(&dir, &args, None);

        let lines: Vec<&str> = trace.lines().collect();
        assert!(!lines.is_empty(), "{soc}: empty trace");
        assert!(
            lines[0].starts_with("{\"type\":\"meta\",\"schema\":1,"),
            "{soc}: first line must be the schema-versioned meta line, got: {}",
            lines[0]
        );
        for line in &lines {
            assert!(
                line.starts_with("{\"type\":\"") && line.ends_with('}'),
                "{soc}: malformed NDJSON line: {line}"
            );
        }

        // The acceptance contract: parse, extract, compose, solve and
        // round activity must all be visible in one analyze trace.
        for span in [
            "\"name\":\"pipeline.analyze\"",
            "\"name\":\"rtl.parse\"",
            "\"name\":\"rtl.elaborate\"",
            "\"name\":\"cfg.extract\"",
            "\"name\":\"cfg.compose\"",
            "\"name\":\"cfg.bind\"",
            "\"name\":\"concolic.round\"",
        ] {
            assert!(
                lines
                    .iter()
                    .any(|l| l.starts_with("{\"type\":\"span\"") && l.contains(span)),
                "{soc}: trace is missing span {span}"
            );
        }
        for counter in ["\"name\":\"smt.queries\"", "\"name\":\"concolic.rounds\""] {
            assert!(
                lines
                    .iter()
                    .any(|l| l.starts_with("{\"type\":\"counter\"") && l.contains(counter)),
                "{soc}: trace is missing counter {counter}"
            );
        }
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("{\"type\":\"histogram\"")
                    && l.contains("\"name\":\"smt.sat_vars\"")),
            "{soc}: trace is missing the smt.sat_vars histogram"
        );
    }
}

#[test]
fn trace_metrics_identical_across_job_counts() {
    // No `--jobs` flag: the worker count comes from SOCCAR_JOBS, which
    // is the knob CI varies. Counters and histograms must not notice.
    let args = {
        let mut a = vec!["--soc", "clustersoc"];
        a.extend_from_slice(SMOKE);
        a
    };
    let serial = run_traced(&scratch("determinism-j1"), &args, Some("1"));
    let parallel = run_traced(&scratch("determinism-j4"), &args, Some("4"));
    assert_eq!(
        metric_lines(&serial),
        metric_lines(&parallel),
        "metric lines must be byte-identical at SOCCAR_JOBS=1 vs 4"
    );
}

#[test]
fn trace_metrics_identical_across_job_counts_without_incremental() {
    // Same contract as above with the incremental flip solver disabled:
    // the one-shot escape hatch must be just as scheduling-independent.
    let args = {
        let mut a = vec!["--soc", "clustersoc"];
        a.extend_from_slice(SMOKE);
        a
    };
    let envs = &[("SOCCAR_INCREMENTAL", "0")];
    let serial = run_traced_env(&scratch("determinism-oneshot-j1"), &args, Some("1"), envs);
    let parallel = run_traced_env(&scratch("determinism-oneshot-j4"), &args, Some("4"), envs);
    assert_eq!(
        metric_lines(&serial),
        metric_lines(&parallel),
        "metric lines must be byte-identical at SOCCAR_JOBS=1 vs 4 with SOCCAR_INCREMENTAL=0"
    );
    assert!(
        !metric_lines(&serial).contains("\"name\":\"smt.incremental_calls\""),
        "SOCCAR_INCREMENTAL=0 must keep every flip solve on the one-shot path"
    );
}

#[test]
fn trace_metrics_identical_with_portfolio() {
    // The deterministic portfolio must be invisible on healthy
    // workloads: profile 0 answers inside its generous opening slice, so
    // every counter and histogram line is byte-identical to the
    // single-profile run.
    let args = {
        let mut a = vec!["--soc", "clustersoc"];
        a.extend_from_slice(SMOKE);
        a
    };
    let single = run_traced(&scratch("portfolio-off"), &args, Some("2"));
    let raced = run_traced_env(
        &scratch("portfolio-on"),
        &args,
        Some("2"),
        &[("SOCCAR_PORTFOLIO", "1")],
    );
    assert_eq!(
        metric_lines(&single),
        metric_lines(&raced),
        "metric lines must be byte-identical with SOCCAR_PORTFOLIO=0 vs 1"
    );
}

#[test]
fn trace_metrics_identical_across_job_counts_under_faults() {
    // An injected solver Unknown lands on flip candidate #2 regardless
    // of which worker picks it up, so the degraded metric stream must
    // stay byte-identical across job counts too.
    let args = {
        let mut a = vec!["--soc", "clustersoc", "--keep-going"];
        a.extend_from_slice(SMOKE);
        a
    };
    let envs = &[("SOCCAR_FAULTS", "solver_unknown@2")];
    let serial = run_traced_env(&scratch("determinism-fault-j1"), &args, Some("1"), envs);
    let parallel = run_traced_env(&scratch("determinism-fault-j4"), &args, Some("4"), envs);
    let serial_metrics = metric_lines(&serial);
    assert_eq!(
        serial_metrics,
        metric_lines(&parallel),
        "metric lines must be byte-identical at SOCCAR_JOBS=1 vs 4 under SOCCAR_FAULTS"
    );
    assert!(
        serial_metrics.contains("\"name\":\"resilience.solver_unknown\""),
        "the injected Unknown must surface in the resilience counters"
    );
}
